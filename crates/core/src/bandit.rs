use crate::{best_response, AgentSpec, Contract, CoreError, ModelParams, RoundRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An ε-greedy multi-armed-bandit pricing baseline in the spirit of the
/// dynamic-pricing line of related work the paper cites (§VI, e.g.
/// Tran-Thanh et al.): the requester does not model workers at all; it
/// maintains a set of *linear* contracts `f(q) = a·(q − q₀)` (one slope
/// per arm, shared by every worker) and learns which slope maximizes its
/// realized per-round utility.
///
/// This is a stronger baseline than a fixed payment — a linear
/// performance-contingent contract does induce effort — but it cannot
/// tailor pay per worker or shape the contract beyond a single slope,
/// which is exactly what the §IV-C design adds.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearPricingBandit {
    /// The candidate slopes (arms).
    pub slopes: Vec<f64>,
    /// Exploration probability.
    pub epsilon: f64,
    /// Rounds to play.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LinearPricingBandit {
    fn default() -> Self {
        LinearPricingBandit {
            slopes: vec![0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.4],
            epsilon: 0.15,
            rounds: 60,
            seed: 23,
        }
    }
}

/// Outcome of a bandit pricing run.
#[derive(Debug, Clone, PartialEq)]
pub struct BanditOutcome {
    /// Per-round accounting.
    pub rounds: Vec<RoundRecord>,
    /// Mean per-round requester utility over the whole run.
    pub mean_round_utility: f64,
    /// Mean per-round utility over the last quarter (post-learning).
    pub late_mean_utility: f64,
    /// The arm (slope) with the best empirical mean at the end.
    pub best_slope: f64,
    /// How many times each arm was played.
    pub pulls: Vec<usize>,
}

impl LinearPricingBandit {
    /// Plays the bandit against the agents (their `contract` fields are
    /// ignored — the bandit posts its own linear contract each round; an
    /// agent's `in_system` flag is respected).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for an empty arm set, a zero
    /// horizon, or `epsilon ∉ [0, 1]`; propagates best-response failures.
    pub fn run(
        &self,
        params: &ModelParams,
        agents: &[AgentSpec],
    ) -> Result<BanditOutcome, CoreError> {
        if self.slopes.is_empty() || self.rounds == 0 {
            return Err(CoreError::InvalidParams(
                "bandit needs at least one arm and one round".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.epsilon) {
            return Err(CoreError::InvalidParams(format!(
                "epsilon must be in [0, 1], got {}",
                self.epsilon
            )));
        }
        if self.slopes.iter().any(|a| !a.is_finite() || *a < 0.0) {
            return Err(CoreError::InvalidParams(
                "arm slopes must be nonnegative and finite".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Feedback range across agents, for the shared linear contract.
        let (mut q_lo, mut q_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for a in agents.iter().filter(|a| a.in_system) {
            q_lo = q_lo.min(a.psi.eval(0.0));
            let peak = a.psi.peak().unwrap_or(10.0);
            q_hi = q_hi.max(a.psi.eval(peak));
        }
        if !(q_lo.is_finite() && q_hi.is_finite() && q_lo < q_hi) {
            // No active agents: a degenerate but valid outcome.
            return Ok(BanditOutcome {
                rounds: Vec::new(),
                mean_round_utility: 0.0,
                late_mean_utility: 0.0,
                best_slope: self.slopes[0],
                pulls: vec![0; self.slopes.len()],
            });
        }

        let contracts: Vec<Contract> = self
            .slopes
            .iter()
            .map(|&a| {
                Contract::new(vec![q_lo, q_hi], vec![0.0, a * (q_hi - q_lo)])
            })
            .collect::<Result<_, _>>()?;

        let mut pulls = vec![0usize; self.slopes.len()];
        let mut totals = vec![0.0f64; self.slopes.len()];
        let mut rounds = Vec::with_capacity(self.rounds);
        for t in 0..self.rounds {
            let arm = if rng.gen::<f64>() < self.epsilon || t < self.slopes.len() {
                // Explore (and play every arm once up front).
                if t < self.slopes.len() {
                    t
                } else {
                    rng.gen_range(0..self.slopes.len())
                }
            } else {
                // Exploit the best empirical mean.
                (0..self.slopes.len())
                    .max_by(|&i, &j| {
                        let mi = totals[i] / pulls[i].max(1) as f64;
                        let mj = totals[j] / pulls[j].max(1) as f64;
                        mi.partial_cmp(&mj).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0)
            };

            let mut benefit = 0.0;
            let mut payment = 0.0;
            for agent in agents.iter().filter(|a| a.in_system) {
                let worker_params = ModelParams {
                    omega: agent.omega,
                    ..*params
                };
                let response = best_response(&worker_params, &agent.psi, &contracts[arm])?;
                benefit += agent.weight * response.feedback;
                payment += response.compensation;
            }
            let utility = benefit - params.mu * payment;
            pulls[arm] += 1;
            totals[arm] += utility;
            rounds.push(RoundRecord {
                round: t,
                benefit,
                payment,
                requester_utility: utility,
            });
        }

        let best_arm = (0..self.slopes.len())
            .max_by(|&i, &j| {
                let mi = totals[i] / pulls[i].max(1) as f64;
                let mj = totals[j] / pulls[j].max(1) as f64;
                mi.partial_cmp(&mj).unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        let cumulative: f64 = rounds.iter().map(|r| r.requester_utility).sum();
        let late_start = self.rounds - (self.rounds / 4).max(1);
        let late: Vec<f64> = rounds[late_start..]
            .iter()
            .map(|r| r.requester_utility)
            .collect();
        Ok(BanditOutcome {
            mean_round_utility: cumulative / rounds.len() as f64,
            late_mean_utility: late.iter().sum::<f64>() / late.len() as f64,
            best_slope: self.slopes[best_arm],
            pulls,
            rounds,
        })
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{ContractBuilder, Discretization};
    use dcc_numerics::Quadratic;

    fn agents(n: usize) -> Vec<AgentSpec> {
        let psi = Quadratic::new(-0.15, 2.5, 1.0);
        (0..n)
            .map(|id| AgentSpec {
                id,
                members: 1,
                omega: 0.0,
                weight: 1.0 + 0.1 * (id % 5) as f64,
                psi,
                contract: Contract::zero(psi.eval(0.0), psi.eval(8.0)).unwrap(),
                in_system: true,
            })
            .collect()
    }

    fn params() -> ModelParams {
        ModelParams {
            mu: 1.0,
            ..ModelParams::default()
        }
    }

    #[test]
    fn bandit_learns_a_productive_slope() {
        let outcome = LinearPricingBandit::default()
            .run(&params(), &agents(20))
            .unwrap();
        assert_eq!(outcome.rounds.len(), 60);
        assert_eq!(outcome.pulls.iter().sum::<usize>(), 60);
        // Zero slope induces nothing; the learned slope must be positive.
        assert!(outcome.best_slope > 0.0, "learned slope {}", outcome.best_slope);
        // Learning: the late mean beats the overall mean (exploration cost
        // front-loaded).
        assert!(outcome.late_mean_utility >= outcome.mean_round_utility - 1e-9);
    }

    #[test]
    fn tailored_contracts_beat_the_learned_linear_contract() {
        // The paper's design dominates the single learned linear slope:
        // per-worker tailoring extracts more at the same accounting.
        let pool = agents(20);
        let p = params();
        let bandit = LinearPricingBandit::default().run(&p, &pool).unwrap();

        let disc = Discretization::covering(20, 7.0).unwrap();
        let mut ours_total = 0.0;
        for a in &pool {
            let built = ContractBuilder::new(p, disc, a.psi)
                .honest()
                .weight(a.weight)
                .build()
                .unwrap();
            ours_total += built.requester_utility();
        }
        assert!(
            ours_total > bandit.late_mean_utility,
            "ours {ours_total} vs bandit steady state {}",
            bandit.late_mean_utility
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = LinearPricingBandit::default().run(&params(), &agents(8)).unwrap();
        let b = LinearPricingBandit::default().run(&params(), &agents(8)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_configs_rejected() {
        let p = params();
        let empty_arms = LinearPricingBandit {
            slopes: vec![],
            ..LinearPricingBandit::default()
        };
        assert!(empty_arms.run(&p, &agents(2)).is_err());
        let bad_eps = LinearPricingBandit {
            epsilon: 1.5,
            ..LinearPricingBandit::default()
        };
        assert!(bad_eps.run(&p, &agents(2)).is_err());
        let neg_slope = LinearPricingBandit {
            slopes: vec![-0.1],
            ..LinearPricingBandit::default()
        };
        assert!(neg_slope.run(&p, &agents(2)).is_err());
    }

    #[test]
    fn empty_population_is_degenerate_but_ok() {
        let outcome = LinearPricingBandit::default().run(&params(), &[]).unwrap();
        assert!(outcome.rounds.is_empty());
        assert_eq!(outcome.mean_round_utility, 0.0);
    }
}
