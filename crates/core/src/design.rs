use crate::effort::{fit_effort_function, EffortFit};
use crate::{
    solve_subproblems_columns_with, BipSolution, Contract, CoreError, DegradationReport,
    Discretization, FailurePolicy, ModelParams, Subproblem, SubproblemColumns,
};
use dcc_detect::DetectionResult;
use dcc_numerics::{percentile, Quadratic};
use dcc_trace::{ReviewerId, TraceDataset};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the end-to-end contract design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignConfig {
    /// Model parameters (μ, β, ω, …).
    pub params: ModelParams,
    /// Number of effort intervals `m` per subproblem.
    pub intervals: usize,
    /// Quantile (0–100) of a class's observed efforts used as the end of
    /// its effort region (clamped below the fitted ψ's peak).
    pub effort_quantile: f64,
    /// Solve subproblems in parallel.
    pub parallel: bool,
    /// When set, non-suspected workers with at least this many reviews
    /// get an *individual* effort function fitted from their own
    /// per-review `(effort, feedback)` history instead of the class-level
    /// fit (falling back to the class fit when their data is degenerate).
    pub per_worker_fit_min_reviews: Option<usize>,
    /// What to do when an individual subproblem's contract construction
    /// fails (see [`FailurePolicy`]); defaults to the strict
    /// [`FailurePolicy::Abort`].
    pub failure_policy: FailurePolicy,
}

impl Default for DesignConfig {
    fn default() -> Self {
        DesignConfig {
            params: ModelParams {
                mu: 1.5,
                ..ModelParams::default()
            },
            intervals: 20,
            effort_quantile: 95.0,
            parallel: true,
            per_worker_fit_min_reviews: None,
            failure_policy: FailurePolicy::Abort,
        }
    }
}

impl DesignConfig {
    /// Validates the configuration, naming the offending field (as a
    /// `DesignConfig.<field>` path) and the rejected value in the error
    /// message.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.params.validate().map_err(|e| match e {
            CoreError::InvalidParams(m) => {
                CoreError::InvalidParams(format!("DesignConfig.params.{m}"))
            }
            other => other,
        })?;
        if self.intervals == 0 {
            return Err(CoreError::InvalidParams(format!(
                "DesignConfig.intervals must be >= 1, got {}",
                self.intervals
            )));
        }
        if !(self.effort_quantile > 0.0 && self.effort_quantile <= 100.0) {
            return Err(CoreError::InvalidParams(format!(
                "DesignConfig.effort_quantile must be in (0, 100], got {}",
                self.effort_quantile
            )));
        }
        if let Some(min_reviews) = self.per_worker_fit_min_reviews {
            if min_reviews < 3 {
                return Err(CoreError::InvalidParams(format!(
                    "DesignConfig.per_worker_fit_min_reviews must be >= 3 \
                     (a quadratic fit needs 3 points), got {min_reviews}"
                )));
            }
        }
        Ok(())
    }
}

/// The contract assigned to one worker by [`design_contracts`].
#[derive(Debug, Clone)]
pub struct AgentContract {
    /// The worker.
    pub worker: ReviewerId,
    /// The contract (shared with community partners for collusive
    /// workers, per §III).
    pub contract: Contract,
    /// This worker's share of the induced compensation (meta-worker
    /// payments are split equally among members).
    pub compensation: f64,
    /// The effort the contract induces (the worker's share of the
    /// meta-worker effort for communities).
    pub induced_effort: f64,
    /// The subproblem id that produced this contract.
    pub subproblem: usize,
    /// The selected target interval `k_opt` (Eq. 43), `None` for the zero
    /// contract.
    pub k_opt: Option<usize>,
    /// The effort-interval width δ used by the subproblem (needed to
    /// evaluate the Lemma 4.3 lower bound `β(k−1)δ` per worker).
    pub delta: f64,
    /// Whether the worker was treated as malicious (suspected).
    pub suspected: bool,
    /// Number of collusion partners the design assumed (`A_i`).
    pub partners: usize,
}

/// The full output of the §IV design flow.
#[derive(Debug, Clone)]
pub struct ContractDesign {
    /// Per-worker contract assignments, indexable by worker.
    pub agents: Vec<AgentContract>,
    /// The underlying decomposition solution.
    pub solution: BipSolution,
    /// Fitted class effort functions: (honest, non-collusive-malicious,
    /// community-aggregate).
    pub class_psis: (Quadratic, Quadratic, Quadratic),
    /// The requester's designed per-round utility `Σ (w q − μ c)`.
    pub total_requester_utility: f64,
    /// Subproblems that could not be designed optimally and what the
    /// [`FailurePolicy`] substituted; empty under a fully clean solve.
    pub degradation: DegradationReport,
}

impl ContractDesign {
    /// The assignment for one worker.
    pub fn for_worker(&self, worker: ReviewerId) -> Option<&AgentContract> {
        self.agents.iter().find(|a| a.worker == worker)
    }

    /// Compensations of the given workers, in order (missing workers are
    /// skipped).
    pub fn compensations_of(&self, workers: &[ReviewerId]) -> Vec<f64> {
        let by_id: BTreeMap<ReviewerId, f64> = self
            .agents
            .iter()
            .map(|a| (a.worker, a.compensation))
            .collect();
        workers.iter().filter_map(|w| by_id.get(w).copied()).collect()
    }
}

/// Chooses a per-class effort region: the `quantile` of observed efforts,
/// clamped to stay strictly below the fitted peak (the model needs ψ
/// increasing on the whole region). Public so incremental callers that
/// refit a class through
/// [`fit_effort_function_with_candidate`](crate::fit_effort_function_with_candidate)
/// can derive the matching discretization bit-identically.
pub fn effort_region(
    points: &[(f64, f64)],
    psi: &Quadratic,
    quantile: f64,
) -> Result<f64, CoreError> {
    let efforts: Vec<f64> = points.iter().map(|p| p.0).collect();
    let q = percentile(&efforts, quantile)?;
    let peak = psi.peak().unwrap_or(f64::INFINITY);
    let y_max = q.min(0.9 * peak);
    if y_max <= 0.0 {
        return Err(CoreError::InvalidInput(
            "observed efforts give an empty effort region".into(),
        ));
    }
    Ok(y_max)
}

/// The output of the §IV-B fitting stage: class effort functions fitted,
/// effort regions discretized, and the bilevel program decomposed into
/// per-worker / per-community [`Subproblem`]s — everything the solver
/// needs, reusable across solves (e.g. a μ sweep re-solves the same
/// prepared subproblems without re-fitting).
#[derive(Debug, Clone)]
pub struct DesignPrep {
    /// The decomposed subproblems in deterministic input order
    /// (individual workers first, communities after).
    pub subproblems: Vec<Subproblem>,
    /// Fitted class effort functions: (honest, non-collusive-malicious,
    /// community-aggregate).
    pub class_psis: (Quadratic, Quadratic, Quadratic),
    /// The id of the first community subproblem; ids `>=` this cover
    /// collusive communities.
    pub first_community_subproblem: usize,
}

/// The `(mean effort, mean feedback)` observation point of one worker,
/// or `None` for a worker with no reviews — the per-worker input of the
/// §IV-B class fits, shared by the batch [`collect_class_points`] and by
/// incremental callers that cache points per worker and recompute only
/// workers whose review history changed.
pub fn worker_observation_point(trace: &TraceDataset, worker: ReviewerId) -> Option<(f64, f64)> {
    let reviews = trace.reviews_by(worker);
    if reviews.is_empty() {
        return None;
    }
    let n = reviews.len() as f64;
    let eff = reviews.iter().map(|r| trace.effort_of(r)).sum::<f64>() / n;
    let fb = reviews.iter().map(|r| trace.feedback_of(r)).sum::<f64>() / n;
    Some((eff, fb))
}

/// The grouped observation points the §IV-B fitting stage consumes:
/// per-class point vectors in reviewer-id order, community aggregate
/// points in community order, and the per-worker point map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassPoints {
    /// Points of non-suspected workers, in reviewer-id order.
    pub honest: Vec<(f64, f64)>,
    /// Points of suspected workers outside any community, in id order.
    pub ncm: Vec<(f64, f64)>,
    /// Points of community members, in reviewer-id order.
    pub cm: Vec<(f64, f64)>,
    /// Community aggregate `(Σ effort, Σ feedback)` points, in community
    /// order.
    pub community: Vec<(f64, f64)>,
    /// Every reviewing worker's own point.
    pub worker_points: BTreeMap<ReviewerId, (f64, f64)>,
}

/// Collects the observation points of every reviewing worker and groups
/// them by detection class — step 1 of [`prepare_design`].
pub fn collect_class_points(trace: &TraceDataset, detection: &DetectionResult) -> ClassPoints {
    let suspected: BTreeSet<ReviewerId> = detection.suspected.iter().copied().collect();
    let in_community: BTreeSet<ReviewerId> = detection
        .collusion
        .communities
        .iter()
        .flatten()
        .copied()
        .collect();

    let mut points = ClassPoints::default();
    for reviewer in trace.reviewers() {
        let Some((eff, fb)) = worker_observation_point(trace, reviewer.id) else {
            continue;
        };
        points.worker_points.insert(reviewer.id, (eff, fb));
        if !suspected.contains(&reviewer.id) {
            points.honest.push((eff, fb));
        } else if in_community.contains(&reviewer.id) {
            points.cm.push((eff, fb));
        } else {
            points.ncm.push((eff, fb));
        }
    }
    // Community aggregate points: (sum effort, sum feedback) per community.
    points.community = detection
        .collusion
        .communities
        .iter()
        .map(|members| {
            members
                .iter()
                .filter_map(|m| points.worker_points.get(m))
                .fold((0.0, 0.0), |acc, p| (acc.0 + p.0, acc.1 + p.1))
        })
        .collect();
    points
}

/// One class's fitted effort function and discretized effort region.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassModel {
    /// The fitted quadratic with its diagnostics.
    pub fit: EffortFit,
    /// The discretized effort region the class's subproblems use.
    pub disc: Discretization,
}

/// The three class models of §IV-B (honest, non-collusive malicious,
/// community aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassModels {
    /// Model of the non-suspected workers.
    pub honest: ClassModel,
    /// Model of the suspected singletons (falls back to honest when the
    /// class has fewer than 3 points).
    pub ncm: ClassModel,
    /// Model of the collusive meta-workers (community aggregates when at
    /// least 3 communities exist, else member points, else the ncm
    /// model).
    pub cm: ClassModel,
}

impl ClassModels {
    /// The three fitted ψ's in [`DesignPrep::class_psis`] order.
    pub fn psis(&self) -> (Quadratic, Quadratic, Quadratic) {
        (self.honest.fit.psi, self.ncm.fit.psi, self.cm.fit.psi)
    }
}

/// Fits the honest class model from its observation points.
///
/// # Errors
///
/// Propagates fitting failures, including traces whose honest class has
/// fewer than 3 observation points.
pub fn fit_honest_model(points: &ClassPoints, config: &DesignConfig) -> Result<ClassModel, CoreError> {
    let fit = fit_effort_function(&points.honest)?;
    let disc = Discretization::covering(
        config.intervals,
        effort_region(&points.honest, &fit.psi, config.effort_quantile)?,
    )?;
    Ok(ClassModel { fit, disc })
}

/// Fits the non-collusive-malicious class model, falling back to the
/// honest model when the class has fewer than 3 points.
///
/// # Errors
///
/// Propagates fitting failures.
pub fn fit_ncm_model(
    points: &ClassPoints,
    config: &DesignConfig,
    honest: &ClassModel,
) -> Result<ClassModel, CoreError> {
    if points.ncm.len() >= 3 {
        let fit = fit_effort_function(&points.ncm)?;
        let disc = Discretization::covering(
            config.intervals,
            effort_region(&points.ncm, &fit.psi, config.effort_quantile)?,
        )?;
        Ok(ClassModel { fit, disc })
    } else {
        Ok(honest.clone())
    }
}

/// Fits the collusive meta-worker model: community aggregate points when
/// at least 3 communities exist, else the members' own points (keeping
/// the ncm discretization), else the ncm model entirely.
///
/// # Errors
///
/// Propagates fitting failures.
pub fn fit_cm_model(
    points: &ClassPoints,
    config: &DesignConfig,
    ncm: &ClassModel,
) -> Result<ClassModel, CoreError> {
    if points.community.len() >= 3 {
        let fit = fit_effort_function(&points.community)?;
        let disc = Discretization::covering(
            config.intervals,
            effort_region(&points.community, &fit.psi, config.effort_quantile)?,
        )?;
        Ok(ClassModel { fit, disc })
    } else if points.cm.len() >= 3 {
        Ok(ClassModel {
            fit: fit_effort_function(&points.cm)?,
            disc: ncm.disc,
        })
    } else {
        Ok(ncm.clone())
    }
}

/// Fits all three class models — step 2 of [`prepare_design`]. The
/// per-class functions are public so an incremental caller can refit
/// *only the classes whose points changed*, chaining through the
/// fallback dependencies (honest → ncm → cm) and matching this batch
/// path bit-for-bit.
///
/// # Errors
///
/// Propagates fitting failures; a trace whose honest class has fewer
/// than 3 observation points cannot be fitted.
pub fn fit_class_models(
    points: &ClassPoints,
    config: &DesignConfig,
) -> Result<ClassModels, CoreError> {
    let honest = fit_honest_model(points, config)?;
    let ncm = fit_ncm_model(points, config, &honest)?;
    let cm = fit_cm_model(points, config, &ncm)?;
    Ok(ClassModels { honest, ncm, cm })
}

/// Decomposes the bilevel program into per-worker and per-community
/// [`Subproblem`]s over fitted class models — step 3 of
/// [`prepare_design`].
///
/// # Errors
///
/// Propagates fitting failures from the optional per-worker individual
/// fits.
pub fn decompose_design(
    trace: &TraceDataset,
    detection: &DetectionResult,
    config: &DesignConfig,
    points: &ClassPoints,
    models: &ClassModels,
) -> Result<DesignPrep, CoreError> {
    let suspected: BTreeSet<ReviewerId> = detection.suspected.iter().copied().collect();
    let in_community: BTreeSet<ReviewerId> = detection
        .collusion
        .communities
        .iter()
        .flatten()
        .copied()
        .collect();

    let mut subproblems = Vec::new();
    let mut next_id = 0usize;
    for reviewer in trace.reviewers() {
        if in_community.contains(&reviewer.id) || !points.worker_points.contains_key(&reviewer.id)
        {
            continue;
        }
        let weight = detection.weights.weight(reviewer.id).unwrap_or(0.0);
        let is_suspect = suspected.contains(&reviewer.id);

        // Individual fit for prolific non-suspected workers, when enabled.
        let individual = match (config.per_worker_fit_min_reviews, is_suspect) {
            (Some(min_reviews), false) => {
                let reviews = trace.reviews_by(reviewer.id);
                if reviews.len() >= min_reviews {
                    let points: Vec<(f64, f64)> = reviews
                        .iter()
                        .map(|r| (trace.effort_of(r), trace.feedback_of(r)))
                        .collect();
                    fit_effort_function(&points).ok().and_then(|fit| {
                        let efforts: Vec<f64> = points.iter().map(|p| p.0).collect();
                        let q = percentile(&efforts, config.effort_quantile).ok()?;
                        let peak = fit.psi.peak().unwrap_or(f64::INFINITY);
                        let y_max = q.min(0.9 * peak);
                        if y_max > 0.0 {
                            Discretization::covering(config.intervals, y_max)
                                .ok()
                                .map(|d| (fit.psi, d))
                        } else {
                            None
                        }
                    })
                } else {
                    None
                }
            }
            _ => None,
        };
        let (psi, disc) = individual.unwrap_or(if is_suspect {
            (models.ncm.fit.psi, models.ncm.disc)
        } else {
            (models.honest.fit.psi, models.honest.disc)
        });

        subproblems.push(Subproblem {
            id: next_id,
            members: vec![reviewer.id.index()],
            omega: if is_suspect { config.params.omega } else { 0.0 },
            weight,
            psi,
            disc,
        });
        next_id += 1;
    }
    let first_community_subproblem = next_id;
    for members in &detection.collusion.communities {
        let weights: Vec<f64> = members
            .iter()
            .filter_map(|m| detection.weights.weight(*m))
            .collect();
        let weight = if weights.is_empty() {
            0.0
        } else {
            weights.iter().sum::<f64>() / weights.len() as f64
        };
        subproblems.push(Subproblem {
            id: next_id,
            members: members.iter().map(|m| m.index()).collect(),
            omega: config.params.omega,
            weight,
            psi: models.cm.fit.psi,
            disc: models.cm.disc,
        });
        next_id += 1;
    }

    Ok(DesignPrep {
        subproblems,
        class_psis: models.psis(),
        first_community_subproblem,
    })
}

/// The fitting half of [`design_contracts`] (§IV-B):
///
/// 1. split workers by the detection result (non-suspected ⇒ honest,
///    suspected singletons ⇒ non-collusive malicious, communities ⇒
///    collusive meta-workers) — [`collect_class_points`],
/// 2. fit each group's effort function (communities are fitted on their
///    aggregate `(Σ effort, Σ feedback)` points when at least 3
///    communities exist, else they fall back to the per-worker fit) —
///    [`fit_class_models`],
/// 3. decompose into subproblems with per-worker Eq. 5 weights —
///    [`decompose_design`].
///
/// # Errors
///
/// Propagates fitting failures; rejects invalid configurations and traces
/// whose classes are too small to fit.
pub fn prepare_design(
    trace: &TraceDataset,
    detection: &DetectionResult,
    config: &DesignConfig,
) -> Result<DesignPrep, CoreError> {
    config.validate()?;
    let points = collect_class_points(trace, detection);
    let models = fit_class_models(&points, config)?;
    decompose_design(trace, detection, config, &points, &models)
}

/// The assignment half of [`design_contracts`]: maps a solved
/// decomposition back to per-worker contracts. Community members share
/// the community's contract and split its payment equally.
///
/// `solution` must come from solving `prep.subproblems` (any pool size —
/// the solve is bit-identical across pool sizes).
pub fn assemble_design(
    detection: &DetectionResult,
    prep: &DesignPrep,
    solution: BipSolution,
    degradation: DegradationReport,
) -> ContractDesign {
    let suspected: BTreeSet<ReviewerId> = detection.suspected.iter().copied().collect();
    let partner_counts = detection.collusion.partner_counts();
    let delta_of = |sp_id: usize| {
        prep.subproblems
            .iter()
            .find(|sp| sp.id == sp_id)
            .map(|sp| sp.disc.delta())
            .unwrap_or(0.0)
    };
    let mut agents = Vec::with_capacity(solution.solutions.len());
    for sol in &solution.solutions {
        let share = sol.members.len().max(1) as f64;
        let is_community = sol.id >= prep.first_community_subproblem;
        for &member in &sol.members {
            let worker = ReviewerId(member);
            agents.push(AgentContract {
                worker,
                contract: sol.built.contract().clone(),
                compensation: sol.built.compensation() / share,
                induced_effort: sol.built.induced_effort() / share,
                subproblem: sol.id,
                k_opt: sol.built.k_opt(),
                delta: delta_of(sol.id),
                suspected: is_community || suspected.contains(&worker),
                partners: partner_counts.get(&worker).copied().unwrap_or(0),
            });
        }
    }
    agents.sort_by_key(|a| a.worker);

    let total = solution.total_requester_utility;
    ContractDesign {
        agents,
        solution,
        class_psis: prep.class_psis,
        total_requester_utility: total,
        degradation,
    }
}

/// Runs the complete §IV design flow:
///
/// 1. [`prepare_design`] — split workers by the detection result, fit
///    each group's effort function, and decompose into subproblems with
///    per-worker Eq. 5 weights (§IV-B),
/// 2. solve the subproblems (in parallel) with the §IV-C algorithm,
/// 3. [`assemble_design`] — assign contracts back to workers; community
///    members share the community's contract and split its payment
///    equally.
///
/// # Errors
///
/// Propagates fitting and solver failures; rejects traces whose classes
/// are too small to fit.
pub fn design_contracts(
    trace: &TraceDataset,
    detection: &DetectionResult,
    config: &DesignConfig,
) -> Result<ContractDesign, CoreError> {
    let prep = prepare_design(trace, detection, config)?;
    // The struct-of-arrays kernel is bit-identical to the struct path
    // (tests/differential.rs), so routing the one-shot flow through it
    // keeps every integration test exercising the columnar solve.
    let columns = SubproblemColumns::from_subproblems(&prep.subproblems);
    let (solution, degradation) = solve_subproblems_columns_with(
        columns.view(),
        &config.params,
        config.parallel,
        config.failure_policy,
    )?;
    Ok(assemble_design(detection, &prep, solution, degradation))
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use dcc_detect::{run_pipeline, PipelineConfig};
    use dcc_trace::{SyntheticConfig, WorkerClass};

    fn designed() -> (TraceDataset, ContractDesign) {
        let trace = SyntheticConfig::small(101).generate();
        let detection = run_pipeline(&trace, PipelineConfig::default());
        let design = design_contracts(&trace, &detection, &DesignConfig::default()).unwrap();
        (trace, design)
    }

    #[test]
    fn every_reviewing_worker_gets_a_contract() {
        let (trace, design) = designed();
        let reviewing = trace
            .reviewers()
            .iter()
            .filter(|r| !trace.reviews_by(r.id).is_empty())
            .count();
        assert_eq!(design.agents.len(), reviewing);
        for a in &design.agents {
            assert!(a.contract.is_monotone());
            assert!(a.compensation >= 0.0);
            assert!(a.compensation.is_finite());
        }
    }

    #[test]
    fn community_members_share_one_contract() {
        let (trace, design) = designed();
        for campaign in trace.campaigns() {
            let assignments: Vec<&AgentContract> = campaign
                .members
                .iter()
                .filter_map(|m| design.for_worker(*m))
                .collect();
            assert_eq!(assignments.len(), campaign.members.len());
            let first = assignments[0];
            for a in &assignments {
                assert_eq!(a.subproblem, first.subproblem, "same subproblem");
                assert_eq!(a.contract, first.contract, "same contract (§III)");
                assert!((a.compensation - first.compensation).abs() < 1e-12, "equal split");
                assert!(a.suspected);
                assert_eq!(a.partners, campaign.members.len() - 1);
            }
        }
    }

    #[test]
    fn fig8b_shape_honest_paid_most() {
        let (trace, design) = designed();
        let mean_comp = |class: WorkerClass| {
            let comps = design.compensations_of(&trace.workers_of_class(class));
            comps.iter().sum::<f64>() / comps.len().max(1) as f64
        };
        let honest = mean_comp(WorkerClass::Honest);
        let ncm = mean_comp(WorkerClass::NonCollusiveMalicious);
        let cm = mean_comp(WorkerClass::CollusiveMalicious);
        assert!(honest > ncm, "honest {honest} <= ncm {ncm}");
        assert!(ncm >= cm, "ncm {ncm} < cm {cm}");
    }

    #[test]
    fn generous_requester_pays_weakly_more() {
        // Fig. 8(b)'s mu effect: lower mu (a more generous requester)
        // never lowers total compensation.
        let trace = SyntheticConfig::small(103).generate();
        let detection = run_pipeline(&trace, PipelineConfig::default());
        let mut totals = Vec::new();
        for mu in [2.0, 1.5, 1.0] {
            let config = DesignConfig {
                params: ModelParams {
                    mu,
                    ..ModelParams::default()
                },
                ..DesignConfig::default()
            };
            let design = design_contracts(&trace, &detection, &config).unwrap();
            let total: f64 = design.agents.iter().map(|a| a.compensation).sum();
            totals.push(total);
        }
        assert!(totals[0] <= totals[1] + 1e-9, "mu 2.0 vs 1.5: {totals:?}");
        assert!(totals[1] <= totals[2] + 1e-9, "mu 1.5 vs 1.0: {totals:?}");
    }

    #[test]
    fn per_worker_fits_apply_to_prolific_workers() {
        let mut cfg = SyntheticConfig::small(107);
        cfg.n_honest = 400;
        cfg.prolific_fraction = 0.1;
        cfg.n_products = 1_500;
        let trace = cfg.generate();
        let detection = run_pipeline(&trace, PipelineConfig::default());
        let base = DesignConfig::default();
        let individual = DesignConfig {
            per_worker_fit_min_reviews: Some(20),
            ..base
        };
        let d_class = design_contracts(&trace, &detection, &base).unwrap();
        let d_indiv = design_contracts(&trace, &detection, &individual).unwrap();
        assert_eq!(d_class.agents.len(), d_indiv.agents.len());

        // At least one prolific worker's contract differs from the
        // class-level design (its own curve differs from the pool's).
        let prolific = trace.prolific_workers(WorkerClass::Honest, 20);
        assert!(!prolific.is_empty(), "need prolific workers for this test");
        let changed = prolific
            .iter()
            .filter(|id| {
                let a = d_class.for_worker(**id).unwrap();
                let b = d_indiv.for_worker(**id).unwrap();
                a.contract != b.contract
            })
            .count();
        assert!(changed > 0, "individual fitting changed no contracts");
        // Everything stays structurally valid.
        for a in &d_indiv.agents {
            assert!(a.contract.is_monotone());
            assert!(a.compensation.is_finite() && a.compensation >= 0.0);
        }
    }

    #[test]
    fn fallback_policy_survives_a_corrupted_weight() {
        // Corrupt one worker's Eq. 5 weight to NaN: the strict design
        // aborts, the fallback design completes with exactly that worker
        // degraded onto a fixed-payment baseline.
        let trace = SyntheticConfig::small(109).generate();
        let mut detection = run_pipeline(&trace, PipelineConfig::default());
        let victim = trace
            .reviewers()
            .iter()
            .map(|r| r.id)
            .find(|id| !trace.reviews_by(*id).is_empty())
            .expect("some reviewing worker");
        assert!(detection.weights.set_weight(victim, f64::NAN));

        let strict = DesignConfig::default();
        assert!(design_contracts(&trace, &detection, &strict).is_err());

        let lenient = DesignConfig {
            failure_policy: FailurePolicy::FallbackBaseline { amount: 0.5 },
            ..strict
        };
        let design = design_contracts(&trace, &detection, &lenient).unwrap();
        assert!(!design.degradation.is_empty(), "degradation must be reported");
        let degraded = &design.degradation.degraded;
        assert!(degraded
            .iter()
            .any(|d| d.members.contains(&victim.index())));
        for d in degraded {
            assert!(d.reason.contains("weight must be finite"), "{}", d.reason);
        }
        // The victim still holds a monotone, finite-pay contract.
        let assigned = design.for_worker(victim).expect("victim keeps a contract");
        assert!(assigned.contract.is_monotone());
        assert!(assigned.compensation.is_finite() && assigned.compensation >= 0.0);
        // Workers outside the degraded subproblem(s) are untouched
        // relative to a clean design of the uncorrupted detection.
        let clean_detection = run_pipeline(&trace, PipelineConfig::default());
        let clean = design_contracts(&trace, &clean_detection, &strict).unwrap();
        let degraded_ids: Vec<usize> = degraded.iter().map(|d| d.subproblem).collect();
        for a in &design.agents {
            if !degraded_ids.contains(&a.subproblem) {
                let c = clean.for_worker(a.worker).unwrap();
                assert_eq!(a.contract, c.contract, "worker {:?} changed", a.worker);
            }
        }
    }

    #[test]
    fn skip_policy_excludes_only_the_corrupted_worker() {
        let trace = SyntheticConfig::small(113).generate();
        let mut detection = run_pipeline(&trace, PipelineConfig::default());
        let victim = trace
            .reviewers()
            .iter()
            .map(|r| r.id)
            .find(|id| !trace.reviews_by(*id).is_empty())
            .expect("some reviewing worker");
        assert!(detection.weights.set_weight(victim, f64::INFINITY));
        let config = DesignConfig {
            failure_policy: FailurePolicy::Skip,
            ..DesignConfig::default()
        };
        let design = design_contracts(&trace, &detection, &config).unwrap();
        assert_eq!(design.degradation.len(), 1);
        let assigned = design.for_worker(victim).expect("still listed");
        assert_eq!(assigned.compensation, 0.0);
        assert_eq!(assigned.induced_effort, 0.0);
    }

    #[test]
    fn config_validation() {
        let (trace, _) = designed();
        let detection = run_pipeline(&trace, PipelineConfig::default());
        let bad = DesignConfig {
            intervals: 0,
            ..DesignConfig::default()
        };
        assert!(design_contracts(&trace, &detection, &bad).is_err());
    }

    #[test]
    fn config_validation_names_the_offending_field_and_value() {
        let base = DesignConfig::default();

        let err = DesignConfig { intervals: 0, ..base }.validate().unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid parameters: DesignConfig.intervals must be >= 1, got 0"
        );

        let err = DesignConfig {
            effort_quantile: 120.0,
            ..base
        }
        .validate()
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid parameters: DesignConfig.effort_quantile must be in (0, 100], got 120"
        );

        let err = DesignConfig {
            per_worker_fit_min_reviews: Some(2),
            ..base
        }
        .validate()
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("DesignConfig.per_worker_fit_min_reviews") && msg.contains("got 2"),
            "{msg}"
        );

        let err = DesignConfig {
            params: ModelParams {
                mu: -1.0,
                ..ModelParams::default()
            },
            ..base
        }
        .validate()
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid parameters: DesignConfig.params.mu must be positive, got -1"
        );

        let err = DesignConfig {
            params: ModelParams {
                gamma: f64::NAN,
                ..ModelParams::default()
            },
            ..base
        }
        .validate()
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid parameters: DesignConfig.params.gamma must be finite, got NaN"
        );

        assert!(base.validate().is_ok());
    }

    #[test]
    fn prepare_solve_assemble_matches_design_contracts() {
        // The staged decomposition used by dcc-engine must reproduce the
        // one-shot flow bit-for-bit.
        let trace = SyntheticConfig::small(101).generate();
        let detection = run_pipeline(&trace, PipelineConfig::default());
        let config = DesignConfig::default();
        let one_shot = design_contracts(&trace, &detection, &config).unwrap();

        let prep = prepare_design(&trace, &detection, &config).unwrap();
        let (solution, degradation) = crate::solve_subproblems_pooled(
            &prep.subproblems,
            &config.params,
            4,
            config.failure_policy,
        )
        .unwrap();
        let staged = assemble_design(&detection, &prep, solution, degradation);

        assert_eq!(one_shot.agents.len(), staged.agents.len());
        assert_eq!(one_shot.solution, staged.solution);
        assert_eq!(
            one_shot.total_requester_utility.to_bits(),
            staged.total_requester_utility.to_bits()
        );
        for (a, b) in one_shot.agents.iter().zip(&staged.agents) {
            assert_eq!(a.worker, b.worker);
            assert_eq!(a.contract, b.contract);
            assert_eq!(a.compensation.to_bits(), b.compensation.to_bits());
            assert_eq!(a.k_opt, b.k_opt);
            assert_eq!(a.suspected, b.suspected);
            assert_eq!(a.partners, b.partners);
        }
    }
}
