use crate::{CoreError, Discretization, ModelParams};
use dcc_numerics::Quadratic;

/// Classification of a contract piece by the sign pattern of the worker's
/// utility derivative on its effort interval (§IV-C, Part 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlopeCase {
    /// Utility non-increasing on the interval; the worker sits at the
    /// left endpoint.
    CaseI,
    /// Utility non-decreasing; the worker pushes to the right endpoint.
    CaseII,
    /// Utility has an interior maximum (Eq. 31).
    CaseIII,
}

/// The Case-III window's lower edge for interval `l` (1-based):
/// `β/ψ′((l−1)δ) − ω`. Slopes at or below it are Case I.
///
/// Follows the *proof* of Lemma 4.1 (Eqs. 32–35); the lemma statement as
/// printed swaps the two bounds.
pub fn case_window_lo(params: &ModelParams, disc: &Discretization, psi: &Quadratic, l: usize) -> f64 {
    params.beta / psi.derivative_at(disc.knot(l - 1)) - params.omega
}

/// The Case-III window's upper edge for interval `l` (1-based):
/// `β/ψ′(lδ) − ω`. Slopes at or above it are Case II.
pub fn case_window_hi(params: &ModelParams, disc: &Discretization, psi: &Quadratic, l: usize) -> f64 {
    params.beta / psi.derivative_at(disc.knot(l)) - params.omega
}

/// Classifies the contract slope `alpha` on effort interval `l`
/// (1-based) per Lemma 4.1.
///
/// The worker's utility on the interval is
/// `U(y) = x_{l−1} + α(ψ(y) − d_{l−1}) + ωψ(y) − βy`, whose derivative
/// `(α + ω)ψ′(y) − β` is decreasing in `y` (ψ concave), so the sign
/// pattern is determined by the endpoints:
///
/// - non-positive at the left endpoint ⇒ Case I,
/// - non-negative at the right endpoint ⇒ Case II,
/// - otherwise ⇒ Case III with the interior optimum of Eq. 31.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInterval`] when `l` is outside
/// `1..=disc.intervals()` — in release builds too, so corrupted interval
/// indices from untrusted plans surface as errors, not silent
/// misclassification.
pub fn case_of_slope(
    params: &ModelParams,
    disc: &Discretization,
    psi: &Quadratic,
    alpha: f64,
    l: usize,
) -> Result<SlopeCase, CoreError> {
    if l < 1 || l > disc.intervals() {
        return Err(CoreError::InvalidInterval {
            interval: l,
            intervals: disc.intervals(),
        });
    }
    Ok(if alpha <= case_window_lo(params, disc, psi, l) {
        SlopeCase::CaseI
    } else if alpha >= case_window_hi(params, disc, psi, l) {
        SlopeCase::CaseII
    } else {
        SlopeCase::CaseIII
    })
}

/// The worker's optimal effort within interval `l` (1-based) under
/// contract slope `alpha` (Eq. 30): the left endpoint in Case I, the
/// right endpoint in Case II (the supremum of the half-open interval),
/// and the Eq. 31 closed form `ψ′⁻¹(β/(α+ω))` in Case III.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInterval`] for an out-of-range `l`, and
/// [`CoreError::Numerics`] when ψ's derivative is not invertible (a
/// linear ψ, which the model's concavity validation rejects upstream).
pub fn interval_optimum(
    params: &ModelParams,
    disc: &Discretization,
    psi: &Quadratic,
    alpha: f64,
    l: usize,
) -> Result<f64, CoreError> {
    Ok(match case_of_slope(params, disc, psi, alpha, l)? {
        SlopeCase::CaseI => disc.knot(l - 1),
        SlopeCase::CaseII => disc.knot(l),
        SlopeCase::CaseIII => {
            let target_slope = params.beta / (alpha + params.omega);
            psi.inverse_derivative(target_slope)?
        }
    })
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn setup() -> (ModelParams, Discretization, Quadratic) {
        let params = ModelParams {
            omega: 0.0,
            ..ModelParams::default()
        };
        let disc = Discretization::new(10, 1.0).unwrap();
        // psi'(y) = -0.1y + 2 > 0 up to y = 20 > 10.
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        (params, disc, psi)
    }

    #[test]
    fn windows_are_increasing_in_l() {
        let (params, disc, psi) = setup();
        for l in 1..=disc.intervals() {
            let lo = case_window_lo(&params, &disc, &psi, l);
            let hi = case_window_hi(&params, &disc, &psi, l);
            assert!(lo < hi, "window empty at l={l}");
            if l > 1 {
                let prev_hi = case_window_hi(&params, &disc, &psi, l - 1);
                assert!((prev_hi - lo).abs() < 1e-12, "windows must tile: {prev_hi} vs {lo}");
            }
        }
    }

    #[test]
    fn classification_matches_window() {
        let (params, disc, psi) = setup();
        let l = 3;
        let lo = case_window_lo(&params, &disc, &psi, l);
        let hi = case_window_hi(&params, &disc, &psi, l);
        assert_eq!(case_of_slope(&params, &disc, &psi, lo - 0.01, l).unwrap(), SlopeCase::CaseI);
        assert_eq!(case_of_slope(&params, &disc, &psi, lo, l).unwrap(), SlopeCase::CaseI);
        assert_eq!(
            case_of_slope(&params, &disc, &psi, 0.5 * (lo + hi), l).unwrap(),
            SlopeCase::CaseIII
        );
        assert_eq!(case_of_slope(&params, &disc, &psi, hi, l).unwrap(), SlopeCase::CaseII);
        assert_eq!(case_of_slope(&params, &disc, &psi, hi + 1.0, l).unwrap(), SlopeCase::CaseII);
    }

    #[test]
    fn interval_optimum_endpoints_and_interior() {
        let (params, disc, psi) = setup();
        let l = 4;
        let lo = case_window_lo(&params, &disc, &psi, l);
        let hi = case_window_hi(&params, &disc, &psi, l);
        assert_eq!(interval_optimum(&params, &disc, &psi, lo - 0.1, l).unwrap(), disc.knot(l - 1));
        assert_eq!(interval_optimum(&params, &disc, &psi, hi + 0.1, l).unwrap(), disc.knot(l));
        let mid = 0.5 * (lo + hi);
        let y = interval_optimum(&params, &disc, &psi, mid, l).unwrap();
        assert!(y > disc.knot(l - 1) && y < disc.knot(l), "interior optimum {y}");
        // First-order condition holds at the interior optimum.
        let foc = (mid + params.omega) * psi.derivative_at(y) - params.beta;
        assert!(foc.abs() < 1e-10, "foc residual {foc}");
    }

    #[test]
    fn interior_optimum_matches_grid_search() {
        let (params, disc, psi) = setup();
        let l = 5;
        let lo = case_window_lo(&params, &disc, &psi, l);
        let hi = case_window_hi(&params, &disc, &psi, l);
        let alpha = 0.3 * lo + 0.7 * hi;
        let y_closed = interval_optimum(&params, &disc, &psi, alpha, l).unwrap();
        // Brute-force the same maximization.
        let utility = |y: f64| (alpha + params.omega) * psi.eval(y) - params.beta * y;
        let mut best_y = disc.knot(l - 1);
        let mut best_u = utility(best_y);
        let steps = 20_000;
        for i in 0..=steps {
            let y = disc.knot(l - 1) + (disc.knot(l) - disc.knot(l - 1)) * i as f64 / steps as f64;
            let u = utility(y);
            if u > best_u {
                best_u = u;
                best_y = y;
            }
        }
        assert!((y_closed - best_y).abs() < 1e-3, "closed {y_closed} vs grid {best_y}");
    }

    #[test]
    fn out_of_range_interval_is_a_typed_error() {
        let (params, disc, psi) = setup();
        for l in [0, disc.intervals() + 1] {
            let err = case_of_slope(&params, &disc, &psi, 0.5, l).unwrap_err();
            assert_eq!(
                err,
                crate::CoreError::InvalidInterval {
                    interval: l,
                    intervals: disc.intervals()
                }
            );
            assert!(interval_optimum(&params, &disc, &psi, 0.5, l).is_err());
        }
    }

    #[test]
    fn omega_shifts_windows_down() {
        let (mut params, disc, psi) = setup();
        let lo0 = case_window_lo(&params, &disc, &psi, 2);
        params.omega = 0.5;
        let lo1 = case_window_lo(&params, &disc, &psi, 2);
        assert!((lo0 - lo1 - 0.5).abs() < 1e-12);
    }
}
