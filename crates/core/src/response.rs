use crate::{Contract, CoreError, ModelParams};
use dcc_numerics::Quadratic;

/// A worker's exact best response to a contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestResponse {
    /// The utility-maximizing effort level `y*`.
    pub effort: f64,
    /// Feedback produced at that effort, `q = ψ(y*)`.
    pub feedback: f64,
    /// Compensation earned, `f(q)`.
    pub compensation: f64,
    /// The worker's utility `f(ψ(y*)) + ωψ(y*) − βy*` (Eq. 14; honest is
    /// the ω = 0 special case, Eq. 11).
    pub utility: f64,
}

/// Computes a worker's exact best response to an arbitrary monotone
/// piecewise-linear contract.
///
/// The worker maximizes `U(y) = f(ψ(y)) + ωψ(y) − βy` over `y ≥ 0`. On
/// each feedback segment of `f` the composite is smooth with closed-form
/// interior optimum `ψ′⁻¹(β/(α_l + ω))`; beyond the last knot the
/// contract is flat, leaving `ωψ(y) − βy` with interior optimum
/// `ψ′⁻¹(β/ω)` (or nothing when ω = 0). The function evaluates every
/// segment endpoint and admissible interior optimum and returns the best.
///
/// This is used to *verify* the incentives of constructed candidates
/// rather than assuming the theory holds, and to drive the simulation.
///
/// # Errors
///
/// - [`CoreError::InvalidParams`] on invalid parameters.
/// - [`CoreError::InvalidEffortFunction`] if ψ is not strictly concave or
///   not increasing at `y = 0` (a worker whose feedback falls with any
///   effort has a degenerate response of 0).
pub fn best_response(
    params: &ModelParams,
    psi: &Quadratic,
    contract: &Contract,
) -> Result<BestResponse, CoreError> {
    params.validate()?;
    if psi.r2() >= 0.0 {
        return Err(CoreError::InvalidEffortFunction(format!(
            "psi must be strictly concave, got r2 = {}",
            psi.r2()
        )));
    }
    if psi.derivative_at(0.0) <= 0.0 {
        return Err(CoreError::InvalidEffortFunction(
            "psi must be increasing at 0".into(),
        ));
    }

    // The worker never exerts effort past the feedback peak: beyond it,
    // feedback (and hence pay) falls while effort cost rises.
    let Some(y_peak) = psi.peak() else {
        return Err(CoreError::InvalidEffortFunction(
            "psi must be strictly concave".into(),
        ));
    };

    let utility = |y: f64| {
        let q = psi.eval(y);
        contract.compensation(q) + params.omega * q - params.beta * y
    };

    let mut best = BestResponse {
        effort: 0.0,
        feedback: psi.eval(0.0),
        compensation: contract.compensation(psi.eval(0.0)),
        utility: utility(0.0),
    };
    let mut consider = |y: f64| {
        if !(0.0..=y_peak).contains(&y) {
            return;
        }
        let u = utility(y);
        if u > best.utility + 1e-15 {
            let q = psi.eval(y);
            best = BestResponse {
                effort: y,
                feedback: q,
                compensation: contract.compensation(q),
                utility: u,
            };
        }
    };

    let knots = contract.feedback_knots();
    // Effort levels corresponding to the feedback knots (those below
    // psi(0) map to effort 0; those above the peak feedback are
    // unreachable).
    let q0 = psi.eval(0.0);
    let q_peak = psi.eval(y_peak);
    let mut segment_bounds: Vec<f64> = Vec::with_capacity(knots.len() + 2);
    segment_bounds.push(0.0);
    for &d in knots {
        if d > q0 && d < q_peak {
            let y = psi.inverse_on_increasing(d)?;
            segment_bounds.push(y.max(0.0));
        }
    }
    segment_bounds.push(y_peak);
    segment_bounds.sort_by(f64::total_cmp);
    segment_bounds.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    for window in segment_bounds.windows(2) {
        let (lo, hi) = (window[0], window[1]);
        consider(lo);
        consider(hi);
        // Exact segment slope in feedback space at the midpoint (flat
        // outside the knot range).
        let mid_q = psi.eval(0.5 * (lo + hi));
        let alpha = contract
            .segment_of(mid_q)
            .map(|s| contract.slope(s))
            .unwrap_or(0.0);
        let effective = alpha.max(0.0) + params.omega;
        if effective > 0.0 {
            let target = params.beta / effective;
            if let Ok(y) = psi.inverse_derivative(target) {
                if y > lo && y < hi {
                    consider(y);
                }
            }
        }
    }

    Ok(best)
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{build_candidate, Discretization};

    fn setup(omega: f64) -> (ModelParams, Discretization, Quadratic) {
        let params = ModelParams {
            omega,
            ..ModelParams::default()
        };
        let disc = Discretization::new(10, 1.0).unwrap();
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        (params, disc, psi)
    }

    /// Dense-grid reference maximizer for cross-checking.
    fn grid_best(params: &ModelParams, psi: &Quadratic, contract: &Contract) -> (f64, f64) {
        let y_peak = psi.peak().unwrap();
        let mut best = (0.0, f64::NEG_INFINITY);
        let steps = 200_000;
        for i in 0..=steps {
            let y = y_peak * i as f64 / steps as f64;
            let q = psi.eval(y);
            let u = contract.compensation(q) + params.omega * q - params.beta * y;
            if u > best.1 {
                best = (y, u);
            }
        }
        best
    }

    #[test]
    fn zero_contract_honest_worker_exerts_nothing() {
        let (params, _, psi) = setup(0.0);
        let contract = Contract::zero(psi.eval(0.0), psi.eval(10.0)).unwrap();
        let br = best_response(&params, &psi, &contract).unwrap();
        assert_eq!(br.effort, 0.0);
        assert_eq!(br.compensation, 0.0);
    }

    #[test]
    fn zero_contract_malicious_worker_self_motivates() {
        let (params, _, psi) = setup(1.0);
        let contract = Contract::zero(psi.eval(0.0), psi.eval(10.0)).unwrap();
        let br = best_response(&params, &psi, &contract).unwrap();
        // Autonomous optimum: omega * psi'(y) = beta  =>  psi'(y) = 1.
        let expected = psi.inverse_derivative(params.beta / params.omega).unwrap();
        assert!((br.effort - expected).abs() < 1e-6, "effort {} vs {expected}", br.effort);
        assert_eq!(br.compensation, 0.0);
        assert!(br.utility > 0.0);
    }

    #[test]
    fn fixed_contract_adds_no_incentive() {
        let (params, _, psi) = setup(0.0);
        let flat = Contract::fixed(psi.eval(0.0), psi.eval(10.0), 3.0).unwrap();
        let br = best_response(&params, &psi, &flat).unwrap();
        assert_eq!(br.effort, 0.0, "flat pay cannot induce honest effort");
        assert_eq!(br.compensation, 3.0);
    }

    #[test]
    fn candidate_contract_induces_target_interval() {
        // The central §IV-C property: the best response to xi^(k) falls in
        // [(k-1)delta, k delta] and matches the Eq. 31 closed form.
        for omega in [0.0, 0.3] {
            let (params, disc, psi) = setup(omega);
            for k in 1..=disc.intervals() {
                let cand = build_candidate(&params, &disc, &psi, k).unwrap();
                let br = best_response(&params, &psi, &cand.contract).unwrap();
                assert!(
                    br.effort >= disc.knot(k - 1) - 1e-6 && br.effort <= disc.knot(k) + 1e-6,
                    "omega={omega} k={k}: best response {} outside target interval",
                    br.effort
                );
                assert!(
                    (br.effort - cand.predicted_effort).abs() < 1e-6,
                    "omega={omega} k={k}: response {} vs predicted {}",
                    br.effort,
                    cand.predicted_effort
                );
            }
        }
    }

    #[test]
    fn matches_grid_search_on_candidates() {
        let (params, disc, psi) = setup(0.2);
        for k in [1, 4, 9] {
            let cand = build_candidate(&params, &disc, &psi, k).unwrap();
            let br = best_response(&params, &psi, &cand.contract).unwrap();
            let (gy, gu) = grid_best(&params, &psi, &cand.contract);
            assert!((br.effort - gy).abs() < 1e-3, "k={k}: {} vs grid {gy}", br.effort);
            assert!(br.utility >= gu - 1e-6, "k={k}: utility {} vs grid {gu}", br.utility);
        }
    }

    #[test]
    fn worker_utility_is_individually_rational() {
        // Built candidates always leave the worker at least the utility of
        // zero effort.
        let (params, disc, psi) = setup(0.0);
        for k in 1..=disc.intervals() {
            let cand = build_candidate(&params, &disc, &psi, k).unwrap();
            let br = best_response(&params, &psi, &cand.contract).unwrap();
            assert!(br.utility >= -1e-12, "k={k}: negative utility {}", br.utility);
        }
    }

    #[test]
    fn rejects_invalid_psi() {
        let (params, _, _) = setup(0.0);
        let contract = Contract::zero(0.0, 10.0).unwrap();
        assert!(best_response(&params, &Quadratic::new(0.1, 1.0, 0.0), &contract).is_err());
        assert!(best_response(&params, &Quadratic::new(-0.1, -1.0, 0.0), &contract).is_err());
    }
}
