use crate::{best_response, Contract, CoreError, ModelParams};
use dcc_numerics::Quadratic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One agent in the repeated Stackelberg game: an individual worker or a
/// collusive community acting as a meta-worker.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentSpec {
    /// Caller-chosen identifier.
    pub id: usize,
    /// Number of underlying workers (communities > 1).
    pub members: usize,
    /// Feedback weight ω in the agent's own utility (0 for honest).
    pub omega: f64,
    /// The requester's feedback weight `w` for this agent (Eq. 5).
    pub weight: f64,
    /// The agent's *true* effort→feedback response.
    pub psi: Quadratic,
    /// The contract offered to the agent.
    pub contract: Contract,
    /// Whether the agent participates at all; excluded agents (the
    /// baseline of Fig. 8c) produce no feedback and receive no pay.
    pub in_system: bool,
}

/// Per-round accounting of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round index `t`.
    pub round: usize,
    /// The requester's benefit `p^t = Σ w_i q_i^t` (Eq. 4).
    pub benefit: f64,
    /// Total compensation paid out this round, `Σ c_i^t` (lagged: pay for
    /// round `t` is determined by feedback from round `t−1`, Eq. 1).
    pub payment: f64,
    /// The requester's utility `p^t − μ Σ c_i^t` (Eq. 7).
    pub requester_utility: f64,
}

/// Aggregated outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOutcome {
    /// Per-round records in order.
    pub rounds: Vec<RoundRecord>,
    /// Sum of per-round requester utilities.
    pub cumulative_requester_utility: f64,
    /// Mean per-round requester utility.
    pub mean_round_utility: f64,
    /// Total compensation each agent received across all rounds, indexed
    /// like the input agents.
    pub agent_compensation: Vec<f64>,
    /// Mean per-round effort of each agent.
    pub agent_effort: Vec<f64>,
}

/// Configuration of the repeated game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Number of task rounds `T`.
    pub rounds: usize,
    /// Standard deviation of the additive feedback noise (0 for the
    /// deterministic game).
    pub feedback_noise_sd: f64,
    /// RNG seed for the noise.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            rounds: 20,
            feedback_noise_sd: 0.5,
            seed: 7,
        }
    }
}

/// The repeated Stackelberg game of §II: in each round every in-system
/// agent best-responds to its contract, realizes (noisy) feedback, and is
/// paid next round according to `c^{t+1} = f(q^t)` (Eq. 1).
///
/// Workers are risk-neutral stationary best responders: the contract is
/// fixed for the simulated horizon, so the per-round best response to the
/// *expected* feedback is the worker's optimal stationary strategy.
#[derive(Debug, Clone)]
pub struct Simulation {
    params: ModelParams,
    config: SimulationConfig,
}

impl Simulation {
    /// Creates a simulation under the given requester parameters.
    pub fn new(params: ModelParams, config: SimulationConfig) -> Self {
        Simulation { params, config }
    }

    /// Runs the repeated game over the agents.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for a zero-round horizon and
    /// propagates best-response failures (invalid ψ).
    pub fn run(&self, agents: &[AgentSpec]) -> Result<SimulationOutcome, CoreError> {
        if self.config.rounds == 0 {
            return Err(CoreError::InvalidParams(
                "simulation needs at least one round".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Stationary best responses (the agent's ω, not the requester's).
        let mut efforts = vec![0.0; agents.len()];
        for (i, agent) in agents.iter().enumerate() {
            if !agent.in_system {
                continue;
            }
            let agent_params = ModelParams {
                omega: agent.omega,
                ..self.params
            };
            efforts[i] = best_response(&agent_params, &agent.psi, &agent.contract)?.effort;
        }

        // Lagged payments: round 0 pays the base rate f(ψ(0)).
        let mut pending_payment: Vec<f64> = agents
            .iter()
            .zip(&efforts)
            .map(|(agent, _)| {
                if agent.in_system {
                    agent.contract.compensation(agent.psi.eval(0.0))
                } else {
                    0.0
                }
            })
            .collect();

        let mut rounds = Vec::with_capacity(self.config.rounds);
        let mut agent_compensation = vec![0.0; agents.len()];
        for t in 0..self.config.rounds {
            let mut benefit = 0.0;
            let mut payment = 0.0;
            for (i, agent) in agents.iter().enumerate() {
                if !agent.in_system {
                    continue;
                }
                let noise = if self.config.feedback_noise_sd > 0.0 {
                    gaussian(&mut rng) * self.config.feedback_noise_sd
                } else {
                    0.0
                };
                let feedback = (agent.psi.eval(efforts[i]) + noise).max(0.0);
                benefit += agent.weight * feedback;
                payment += pending_payment[i];
                agent_compensation[i] += pending_payment[i];
                pending_payment[i] = agent.contract.compensation(feedback);
            }
            let requester_utility = benefit - self.params.mu * payment;
            rounds.push(RoundRecord {
                round: t,
                benefit,
                payment,
                requester_utility,
            });
        }

        let cumulative: f64 = rounds.iter().map(|r| r.requester_utility).sum();
        Ok(SimulationOutcome {
            mean_round_utility: cumulative / rounds.len() as f64,
            cumulative_requester_utility: cumulative,
            agent_compensation,
            agent_effort: efforts,
            rounds,
        })
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ContractBuilder, Discretization};

    fn built_agent(id: usize, omega: f64, weight: f64, in_system: bool) -> AgentSpec {
        let params = ModelParams {
            mu: 1.5,
            ..ModelParams::default()
        };
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        let disc = Discretization::new(16, 0.625).unwrap();
        let built = ContractBuilder::new(params, disc, psi)
            .malicious(omega)
            .weight(weight)
            .build()
            .unwrap();
        AgentSpec {
            id,
            members: 1,
            omega,
            weight,
            psi,
            contract: built.contract().clone(),
            in_system,
        }
    }

    fn sim(noise: f64) -> Simulation {
        Simulation::new(
            ModelParams {
                mu: 1.5,
                ..ModelParams::default()
            },
            SimulationConfig {
                rounds: 12,
                feedback_noise_sd: noise,
                seed: 11,
            },
        )
    }

    #[test]
    fn deterministic_game_matches_static_design() {
        let agent = built_agent(0, 0.0, 1.0, true);
        let outcome = sim(0.0).run(std::slice::from_ref(&agent)).unwrap();
        assert_eq!(outcome.rounds.len(), 12);
        // From round 1 on (payment lag settled), each round's utility
        // equals the static design utility w*q - mu*c.
        let q = agent.psi.eval(outcome.agent_effort[0]);
        let c = agent.contract.compensation(q);
        let static_utility = agent.weight * q - 1.5 * c;
        for r in &outcome.rounds[1..] {
            assert!(
                (r.requester_utility - static_utility).abs() < 1e-9,
                "round {} utility {} vs static {static_utility}",
                r.round,
                r.requester_utility
            );
        }
    }

    #[test]
    fn first_round_pays_base_rate() {
        let agent = built_agent(0, 0.0, 1.0, true);
        let base = agent.contract.compensation(agent.psi.eval(0.0));
        let outcome = sim(0.0).run(&[agent]).unwrap();
        assert!((outcome.rounds[0].payment - base).abs() < 1e-12);
    }

    #[test]
    fn excluded_agents_produce_and_cost_nothing() {
        let mut agent = built_agent(0, 0.4, 1.0, false);
        agent.in_system = false;
        let outcome = sim(0.0).run(&[agent]).unwrap();
        assert_eq!(outcome.cumulative_requester_utility, 0.0);
        assert_eq!(outcome.agent_compensation[0], 0.0);
        assert_eq!(outcome.agent_effort[0], 0.0);
    }

    #[test]
    fn noise_is_reproducible_per_seed() {
        let agents = vec![built_agent(0, 0.0, 1.0, true), built_agent(1, 0.5, 0.6, true)];
        let a = sim(0.5).run(&agents).unwrap();
        let b = sim(0.5).run(&agents).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noisy_mean_close_to_deterministic() {
        let agents = vec![built_agent(0, 0.0, 1.0, true); 30];
        let det = sim(0.0).run(&agents).unwrap();
        let noisy = Simulation::new(
            ModelParams {
                mu: 1.5,
                ..ModelParams::default()
            },
            SimulationConfig {
                rounds: 200,
                feedback_noise_sd: 0.5,
                seed: 3,
            },
        )
        .run(&agents)
        .unwrap();
        // Contracts are convex up to the target interval, so by Jensen
        // noisy feedback *raises* expected payments somewhat; allow that
        // systematic gap but require the same order of magnitude.
        let rel = (noisy.mean_round_utility - det.mean_round_utility).abs()
            / det.mean_round_utility.abs().max(1.0);
        assert!(
            rel < 0.25,
            "noisy mean {} vs det {}",
            noisy.mean_round_utility,
            det.mean_round_utility
        );
        assert!(
            noisy.mean_round_utility <= det.mean_round_utility + 1e-9,
            "noise cannot help the requester under a convex contract"
        );
    }

    #[test]
    fn zero_rounds_rejected() {
        let s = Simulation::new(
            ModelParams::default(),
            SimulationConfig {
                rounds: 0,
                feedback_noise_sd: 0.0,
                seed: 0,
            },
        );
        assert!(s.run(&[]).is_err());
    }

    #[test]
    fn empty_population_is_flat_zero() {
        let outcome = sim(0.0).run(&[]).unwrap();
        assert_eq!(outcome.cumulative_requester_utility, 0.0);
        assert!(outcome.rounds.iter().all(|r| r.requester_utility == 0.0));
    }
}
