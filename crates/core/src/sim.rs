use crate::{best_response, Contract, CoreError, ModelParams};
use dcc_numerics::Quadratic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One agent in the repeated Stackelberg game: an individual worker or a
/// collusive community acting as a meta-worker.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentSpec {
    /// Caller-chosen identifier.
    pub id: usize,
    /// Number of underlying workers (communities > 1).
    pub members: usize,
    /// Feedback weight ω in the agent's own utility (0 for honest).
    pub omega: f64,
    /// The requester's feedback weight `w` for this agent (Eq. 5).
    pub weight: f64,
    /// The agent's *true* effort→feedback response.
    pub psi: Quadratic,
    /// The contract offered to the agent.
    pub contract: Contract,
    /// Whether the agent participates at all; excluded agents (the
    /// baseline of Fig. 8c) produce no feedback and receive no pay.
    pub in_system: bool,
}

/// Per-round accounting of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round index `t`.
    pub round: usize,
    /// The requester's benefit `p^t = Σ w_i q_i^t` (Eq. 4).
    pub benefit: f64,
    /// Total compensation paid out this round, `Σ c_i^t` (lagged: pay for
    /// round `t` is determined by feedback from round `t−1`, Eq. 1).
    pub payment: f64,
    /// The requester's utility `p^t − μ Σ c_i^t` (Eq. 7).
    pub requester_utility: f64,
}

/// Aggregated outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOutcome {
    /// Per-round records in order.
    pub rounds: Vec<RoundRecord>,
    /// Sum of per-round requester utilities.
    pub cumulative_requester_utility: f64,
    /// Mean per-round requester utility.
    pub mean_round_utility: f64,
    /// Total compensation each agent received across all rounds, indexed
    /// like the input agents.
    pub agent_compensation: Vec<f64>,
    /// Mean per-round effort of each agent.
    pub agent_effort: Vec<f64>,
}

/// Configuration of the repeated game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Number of task rounds `T`.
    pub rounds: usize,
    /// Standard deviation of the additive feedback noise (0 for the
    /// deterministic game).
    pub feedback_noise_sd: f64,
    /// RNG seed for the noise.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            rounds: 20,
            feedback_noise_sd: 0.5,
            seed: 7,
        }
    }
}

/// Per-round fault hook consulted by [`Simulation::step`].
///
/// Implementations inject operational faults into the repeated game —
/// worker dropout, lost or corrupted feedback, payment delays — without
/// the simulation core knowing any fault schedule. The default
/// implementation of every method is the no-fault behaviour, so a
/// `struct NoFaults; impl RoundFaults for NoFaults {}` reproduces the
/// fault-free game exactly (identical RNG stream and arithmetic).
///
/// The hook takes `&mut self` so implementations can keep a log of what
/// actually fired.
pub trait RoundFaults {
    /// Whether `agent` is dropped out (absent) in `round`. A dropped
    /// agent consumes no RNG, produces no feedback, is paid nothing, and
    /// its pending payment carries to its next present round.
    fn dropped(&mut self, _agent: usize, _round: usize) -> bool {
        false
    }

    /// Transforms the realized feedback of `agent` in `round`.
    /// `Some(feedback)` passes a (possibly corrupted) value on; `None`
    /// models a lost report. Non-finite returned values are treated as
    /// lost (graceful degradation rather than NaN propagation).
    fn perturb_feedback(&mut self, _agent: usize, _round: usize, feedback: f64) -> Option<f64> {
        Some(feedback)
    }

    /// How many rounds the payment owed to `agent` in `round` is delayed;
    /// `0` pays on time. Delayed amounts are credited in the first
    /// present round `>= round + delay` (or never, if the horizon ends
    /// first — the outcome then simply omits them).
    fn payment_delay(&mut self, _agent: usize, _round: usize) -> usize {
        0
    }
}

/// The identity fault model: no dropouts, no perturbation, no delays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl RoundFaults for NoFaults {}

/// The complete mid-run state of a [`Simulation`], exposed so external
/// checkpointing (e.g. the `dcc-faults` crate) can serialize and restore
/// it bit-exactly. Produced by [`Simulation::start`], advanced by
/// [`Simulation::step`], summarized by [`Simulation::outcome_of`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimState {
    /// The next round to simulate (`rounds.len()` so far).
    pub next_round: usize,
    /// The noise RNG, positioned exactly after round `next_round - 1`.
    pub rng: StdRng,
    /// Stationary best-response efforts, indexed like the agents.
    pub efforts: Vec<f64>,
    /// The payment each agent is owed next round (Eq. 1's lag).
    pub pending_payment: Vec<f64>,
    /// Delayed payments per agent: `(due_round, amount)` entries queued
    /// by [`RoundFaults::payment_delay`], credited once due.
    pub delayed_payments: Vec<Vec<(usize, f64)>>,
    /// Total compensation paid to each agent so far.
    pub agent_compensation: Vec<f64>,
    /// Per-round records of the completed rounds.
    pub rounds: Vec<RoundRecord>,
}

impl SimState {
    /// Whether all configured rounds have been simulated.
    pub fn is_complete(&self, config: &SimulationConfig) -> bool {
        self.next_round >= config.rounds
    }
}

/// The repeated Stackelberg game of §II: in each round every in-system
/// agent best-responds to its contract, realizes (noisy) feedback, and is
/// paid next round according to `c^{t+1} = f(q^t)` (Eq. 1).
///
/// Workers are risk-neutral stationary best responders: the contract is
/// fixed for the simulated horizon, so the per-round best response to the
/// *expected* feedback is the worker's optimal stationary strategy.
#[derive(Debug, Clone)]
pub struct Simulation {
    params: ModelParams,
    config: SimulationConfig,
}

impl Simulation {
    /// Creates a simulation under the given requester parameters.
    pub fn new(params: ModelParams, config: SimulationConfig) -> Self {
        Simulation { params, config }
    }

    /// Runs the repeated game over the agents.
    ///
    /// Equivalent to [`Simulation::run_with_faults`] under [`NoFaults`]:
    /// same RNG stream, same arithmetic, bit-identical outcome.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for a zero-round horizon and
    /// propagates best-response failures (invalid ψ).
    pub fn run(&self, agents: &[AgentSpec]) -> Result<SimulationOutcome, CoreError> {
        self.run_with_faults(agents, &mut NoFaults)
    }

    /// Runs the repeated game with a fault model injected each round.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run`].
    pub fn run_with_faults(
        &self,
        agents: &[AgentSpec],
        faults: &mut dyn RoundFaults,
    ) -> Result<SimulationOutcome, CoreError> {
        let mut state = self.start(agents)?;
        while self.step(agents, &mut state, faults) {}
        self.outcome_of(&state)
    }

    /// Prepares the initial [`SimState`]: seeds the RNG, computes each
    /// agent's stationary best response, and sets up the lagged payments
    /// (round 0 pays the base rate `f(ψ(0))`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for a zero-round horizon and
    /// propagates best-response failures (invalid ψ).
    pub fn start(&self, agents: &[AgentSpec]) -> Result<SimState, CoreError> {
        if self.config.rounds == 0 {
            return Err(CoreError::InvalidParams(
                "simulation needs at least one round".into(),
            ));
        }
        let rng = StdRng::seed_from_u64(self.config.seed);

        // Stationary best responses (the agent's ω, not the requester's).
        let mut efforts = vec![0.0; agents.len()];
        for (i, agent) in agents.iter().enumerate() {
            if !agent.in_system {
                continue;
            }
            let agent_params = ModelParams {
                omega: agent.omega,
                ..self.params
            };
            efforts[i] = best_response(&agent_params, &agent.psi, &agent.contract)?.effort;
        }

        // Lagged payments: round 0 pays the base rate f(ψ(0)).
        let pending_payment: Vec<f64> = agents
            .iter()
            .map(|agent| {
                if agent.in_system {
                    agent.contract.compensation(agent.psi.eval(0.0))
                } else {
                    0.0
                }
            })
            .collect();

        Ok(SimState {
            next_round: 0,
            rng,
            efforts,
            pending_payment,
            delayed_payments: vec![Vec::new(); agents.len()],
            agent_compensation: vec![0.0; agents.len()],
            rounds: Vec::with_capacity(self.config.rounds),
        })
    }

    /// Advances the simulation by one round, consulting `faults` for
    /// dropouts, feedback perturbation, and payment delays. Returns
    /// `false` (without touching the state) once all configured rounds
    /// are done.
    ///
    /// `agents` and the configuration must be the ones the state was
    /// started (or checkpoint-restored) under; the caller owns that
    /// pairing.
    pub fn step(
        &self,
        agents: &[AgentSpec],
        state: &mut SimState,
        faults: &mut dyn RoundFaults,
    ) -> bool {
        if state.next_round >= self.config.rounds {
            return false;
        }
        let t = state.next_round;
        let mut benefit = 0.0;
        let mut payment = 0.0;
        for (i, agent) in agents.iter().enumerate() {
            if !agent.in_system {
                continue;
            }
            if faults.dropped(i, t) {
                // Absent: no RNG consumed, nothing produced, nothing paid;
                // pending and delayed payments wait for the next present
                // round.
                continue;
            }
            let noise = if self.config.feedback_noise_sd > 0.0 {
                gaussian(&mut state.rng) * self.config.feedback_noise_sd
            } else {
                0.0
            };
            let realized = (agent.psi.eval(state.efforts[i]) + noise).max(0.0);
            // Lost reports and non-finite corruption both become "missing".
            let feedback = faults
                .perturb_feedback(i, t, realized)
                .filter(|f| f.is_finite());
            if let Some(fb) = feedback {
                benefit += agent.weight * fb;
            }
            let delay = faults.payment_delay(i, t);
            if delay == 0 {
                payment += state.pending_payment[i];
                state.agent_compensation[i] += state.pending_payment[i];
            } else {
                state.delayed_payments[i].push((t + delay, state.pending_payment[i]));
            }
            // Credit delayed payments that have come due.
            let mut idx = 0;
            while idx < state.delayed_payments[i].len() {
                if state.delayed_payments[i][idx].0 <= t {
                    let (_, amount) = state.delayed_payments[i].swap_remove(idx);
                    payment += amount;
                    state.agent_compensation[i] += amount;
                } else {
                    idx += 1;
                }
            }
            // Reprice next round's pay on observed feedback; a missing
            // report carries the current rate forward (the requester has
            // nothing new to price on).
            if let Some(fb) = feedback {
                state.pending_payment[i] = agent.contract.compensation(fb);
            }
        }
        let requester_utility = benefit - self.params.mu * payment;
        state.rounds.push(RoundRecord {
            round: t,
            benefit,
            payment,
            requester_utility,
        });
        state.next_round = t + 1;
        true
    }

    /// Summarizes a (fully or partially) simulated state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if no round has completed yet.
    pub fn outcome_of(&self, state: &SimState) -> Result<SimulationOutcome, CoreError> {
        if state.rounds.is_empty() {
            return Err(CoreError::InvalidInput(
                "no completed rounds to summarize".into(),
            ));
        }
        let cumulative: f64 = state.rounds.iter().map(|r| r.requester_utility).sum();
        Ok(SimulationOutcome {
            mean_round_utility: cumulative / state.rounds.len() as f64,
            cumulative_requester_utility: cumulative,
            agent_compensation: state.agent_compensation.clone(),
            agent_effort: state.efforts.clone(),
            rounds: state.rounds.clone(),
        })
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{ContractBuilder, Discretization};

    fn built_agent(id: usize, omega: f64, weight: f64, in_system: bool) -> AgentSpec {
        let params = ModelParams {
            mu: 1.5,
            ..ModelParams::default()
        };
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        let disc = Discretization::new(16, 0.625).unwrap();
        let built = ContractBuilder::new(params, disc, psi)
            .malicious(omega)
            .weight(weight)
            .build()
            .unwrap();
        AgentSpec {
            id,
            members: 1,
            omega,
            weight,
            psi,
            contract: built.contract().clone(),
            in_system,
        }
    }

    fn sim(noise: f64) -> Simulation {
        Simulation::new(
            ModelParams {
                mu: 1.5,
                ..ModelParams::default()
            },
            SimulationConfig {
                rounds: 12,
                feedback_noise_sd: noise,
                seed: 11,
            },
        )
    }

    #[test]
    fn deterministic_game_matches_static_design() {
        let agent = built_agent(0, 0.0, 1.0, true);
        let outcome = sim(0.0).run(std::slice::from_ref(&agent)).unwrap();
        assert_eq!(outcome.rounds.len(), 12);
        // From round 1 on (payment lag settled), each round's utility
        // equals the static design utility w*q - mu*c.
        let q = agent.psi.eval(outcome.agent_effort[0]);
        let c = agent.contract.compensation(q);
        let static_utility = agent.weight * q - 1.5 * c;
        for r in &outcome.rounds[1..] {
            assert!(
                (r.requester_utility - static_utility).abs() < 1e-9,
                "round {} utility {} vs static {static_utility}",
                r.round,
                r.requester_utility
            );
        }
    }

    #[test]
    fn first_round_pays_base_rate() {
        let agent = built_agent(0, 0.0, 1.0, true);
        let base = agent.contract.compensation(agent.psi.eval(0.0));
        let outcome = sim(0.0).run(&[agent]).unwrap();
        assert!((outcome.rounds[0].payment - base).abs() < 1e-12);
    }

    #[test]
    fn excluded_agents_produce_and_cost_nothing() {
        let mut agent = built_agent(0, 0.4, 1.0, false);
        agent.in_system = false;
        let outcome = sim(0.0).run(&[agent]).unwrap();
        assert_eq!(outcome.cumulative_requester_utility, 0.0);
        assert_eq!(outcome.agent_compensation[0], 0.0);
        assert_eq!(outcome.agent_effort[0], 0.0);
    }

    #[test]
    fn noise_is_reproducible_per_seed() {
        let agents = vec![built_agent(0, 0.0, 1.0, true), built_agent(1, 0.5, 0.6, true)];
        let a = sim(0.5).run(&agents).unwrap();
        let b = sim(0.5).run(&agents).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noisy_mean_close_to_deterministic() {
        let agents = vec![built_agent(0, 0.0, 1.0, true); 30];
        let det = sim(0.0).run(&agents).unwrap();
        let noisy = Simulation::new(
            ModelParams {
                mu: 1.5,
                ..ModelParams::default()
            },
            SimulationConfig {
                rounds: 200,
                feedback_noise_sd: 0.5,
                seed: 3,
            },
        )
        .run(&agents)
        .unwrap();
        // Contracts are convex up to the target interval, so by Jensen
        // noisy feedback *raises* expected payments somewhat; allow that
        // systematic gap but require the same order of magnitude.
        let rel = (noisy.mean_round_utility - det.mean_round_utility).abs()
            / det.mean_round_utility.abs().max(1.0);
        assert!(
            rel < 0.25,
            "noisy mean {} vs det {}",
            noisy.mean_round_utility,
            det.mean_round_utility
        );
        assert!(
            noisy.mean_round_utility <= det.mean_round_utility + 1e-9,
            "noise cannot help the requester under a convex contract"
        );
    }

    #[test]
    fn zero_rounds_rejected() {
        let s = Simulation::new(
            ModelParams::default(),
            SimulationConfig {
                rounds: 0,
                feedback_noise_sd: 0.0,
                seed: 0,
            },
        );
        assert!(s.run(&[]).is_err());
    }

    #[test]
    fn empty_population_is_flat_zero() {
        let outcome = sim(0.0).run(&[]).unwrap();
        assert_eq!(outcome.cumulative_requester_utility, 0.0);
        assert!(outcome.rounds.iter().all(|r| r.requester_utility == 0.0));
    }

    #[test]
    fn stepwise_no_faults_is_bit_identical_to_run() {
        let agents = vec![built_agent(0, 0.0, 1.0, true), built_agent(1, 0.5, 0.6, true)];
        let s = sim(0.5);
        let direct = s.run(&agents).unwrap();
        let mut state = s.start(&agents).unwrap();
        let mut faults = NoFaults;
        while s.step(&agents, &mut state, &mut faults) {}
        let stepped = s.outcome_of(&state).unwrap();
        assert_eq!(direct, stepped);
    }

    #[test]
    fn state_restart_mid_run_is_bit_identical() {
        // Clone the state after a few rounds and finish twice: both
        // continuations must agree exactly (the basis of checkpointing).
        let agents = vec![built_agent(0, 0.0, 1.0, true), built_agent(1, 0.4, 0.8, true)];
        let s = sim(0.5);
        let mut state = s.start(&agents).unwrap();
        let mut faults = NoFaults;
        for _ in 0..5 {
            assert!(s.step(&agents, &mut state, &mut faults));
        }
        let snapshot = state.clone();
        while s.step(&agents, &mut state, &mut faults) {}
        let mut resumed = snapshot;
        while s.step(&agents, &mut resumed, &mut faults) {}
        assert_eq!(state, resumed);
        assert_eq!(
            s.outcome_of(&state).unwrap(),
            s.outcome_of(&resumed).unwrap()
        );
    }

    struct DropAgentAlways(usize);
    impl RoundFaults for DropAgentAlways {
        fn dropped(&mut self, agent: usize, _round: usize) -> bool {
            agent == self.0
        }
    }

    #[test]
    fn dropped_agent_earns_and_produces_nothing() {
        let agents = vec![built_agent(0, 0.0, 1.0, true), built_agent(1, 0.0, 1.0, true)];
        let s = sim(0.0);
        let outcome = s
            .run_with_faults(&agents, &mut DropAgentAlways(1))
            .unwrap();
        assert_eq!(outcome.agent_compensation[1], 0.0);
        // Agent 0 alone: same per-round utility as a solo run.
        let solo = s.run(&agents[..1]).unwrap();
        assert_eq!(
            outcome.cumulative_requester_utility,
            solo.cumulative_requester_utility
        );
    }

    struct LoseAllFeedback;
    impl RoundFaults for LoseAllFeedback {
        fn perturb_feedback(&mut self, _: usize, _: usize, _: f64) -> Option<f64> {
            None
        }
    }

    #[test]
    fn missing_feedback_gives_no_benefit_and_carries_the_rate() {
        let agent = built_agent(0, 0.0, 1.0, true);
        let base = agent.contract.compensation(agent.psi.eval(0.0));
        let outcome = sim(0.0)
            .run_with_faults(&[agent], &mut LoseAllFeedback)
            .unwrap();
        for r in &outcome.rounds {
            assert_eq!(r.benefit, 0.0);
            // Every round keeps paying the carried base rate.
            assert!((r.payment - base).abs() < 1e-12);
        }
    }

    struct NanCorruption;
    impl RoundFaults for NanCorruption {
        fn perturb_feedback(&mut self, _: usize, _: usize, _: f64) -> Option<f64> {
            Some(f64::NAN)
        }
    }

    #[test]
    fn non_finite_feedback_degrades_to_missing() {
        let agent = built_agent(0, 0.0, 1.0, true);
        let lost = sim(0.0)
            .run_with_faults(std::slice::from_ref(&agent), &mut LoseAllFeedback)
            .unwrap();
        let nan = sim(0.0)
            .run_with_faults(&[agent], &mut NanCorruption)
            .unwrap();
        assert_eq!(lost, nan);
        assert!(nan.cumulative_requester_utility.is_finite());
    }

    struct DelayEverythingBy(usize);
    impl RoundFaults for DelayEverythingBy {
        fn payment_delay(&mut self, _: usize, _: usize) -> usize {
            self.0
        }
    }

    #[test]
    fn payment_delays_conserve_money_within_the_horizon() {
        // With a 1-round delay in a deterministic game, every payment but
        // the last lands one round late; totals differ only by the final
        // round's deferred amount.
        let agent = built_agent(0, 0.0, 1.0, true);
        let s = sim(0.0);
        let on_time = s.run(std::slice::from_ref(&agent)).unwrap();
        let delayed = s
            .run_with_faults(&[agent], &mut DelayEverythingBy(1))
            .unwrap();
        let paid_on_time: f64 = on_time.rounds.iter().map(|r| r.payment).sum();
        let paid_delayed: f64 = delayed.rounds.iter().map(|r| r.payment).sum();
        let last_pending = on_time.rounds.last().unwrap().payment;
        assert!(delayed.rounds[0].payment == 0.0, "first payment deferred");
        assert!(
            (paid_on_time - paid_delayed - last_pending).abs() < 1e-9,
            "delayed total {paid_delayed} vs on-time {paid_on_time}"
        );
    }

    #[test]
    fn outcome_of_unstarted_state_is_rejected() {
        let s = sim(0.0);
        let state = s.start(&[]).unwrap();
        assert!(s.outcome_of(&state).is_err());
    }
}
