//! Struct-of-arrays view of the §IV-B decomposition.
//!
//! [`Subproblem`] rows carry a heap-allocated member list each, so a
//! million-worker decomposition materialized as `Vec<Subproblem>` is one
//! allocation per worker and scatters the scalar solve inputs (ω, weight,
//! ψ, discretization) across the heap. [`SubproblemColumns`] stores each
//! field contiguously — with membership as one CSR (offsets + indices)
//! pair — so the hot solve loop walks flat arrays, and a columnar trace's
//! sections can be adapted into a solve without per-row structs.
//!
//! The solve kernels here ([`solve_subproblems_columns`] and friends)
//! perform the **same arithmetic in the same order** as the struct-path
//! kernels in `bip.rs`: one [`crate::ContractBuilder`] chain per
//! subproblem, the same chunked fan-out, the same in-order merge, and the
//! same fixed-order total-utility sum. The workspace differential suite
//! (`tests/differential.rs`) holds the two paths byte-identical (via
//! `to_bits`) at pools 1–16.
//!
//! This module is on dcc-lint's `hot-loop-alloc` sanctioned list: any
//! `Vec::new` / `to_vec` / `clone()` here must carry an inline
//! justification.

use crate::bip::{attempts_of, clamp_pool, fallback_solution, skip_solution, utility_delta};
use crate::{
    BipSolution, ContractBuilder, CoreError, DegradationAction, DegradationReport,
    DegradedSubproblem, Discretization, FailurePolicy, ModelParams, Subproblem,
    SubproblemSolution,
};
use dcc_numerics::Quadratic;
use dcc_obs::{names, Metrics};
// dcc-lint: allow(wall-clock, reason = "subproblem timings are measured here and routed into dcc-obs via span_at")
use std::time::Instant;

/// The §IV-B decomposition stored column-wise: one contiguous array per
/// solve input, with membership as a CSR (offsets + flat indices) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SubproblemColumns {
    ids: Vec<usize>,
    omegas: Vec<f64>,
    weights: Vec<f64>,
    psis: Vec<Quadratic>,
    discs: Vec<Discretization>,
    member_offsets: Vec<usize>,
    members: Vec<usize>,
}

impl Default for SubproblemColumns {
    fn default() -> Self {
        Self::with_capacity(0, 0)
    }
}

impl SubproblemColumns {
    /// An empty decomposition with room for `n` subproblems and `m`
    /// total member entries.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut member_offsets = Vec::with_capacity(n + 1);
        member_offsets.push(0);
        SubproblemColumns {
            ids: Vec::with_capacity(n),
            omegas: Vec::with_capacity(n),
            weights: Vec::with_capacity(n),
            psis: Vec::with_capacity(n),
            discs: Vec::with_capacity(n),
            member_offsets,
            members: Vec::with_capacity(m),
        }
    }

    /// Appends one subproblem.
    pub fn push(
        &mut self,
        id: usize,
        members: impl IntoIterator<Item = usize>,
        omega: f64,
        weight: f64,
        psi: Quadratic,
        disc: Discretization,
    ) {
        self.ids.push(id);
        self.omegas.push(omega);
        self.weights.push(weight);
        self.psis.push(psi);
        self.discs.push(disc);
        self.members.extend(members);
        self.member_offsets.push(self.members.len());
    }

    /// Transposes a struct-path decomposition into columns.
    pub fn from_subproblems(subproblems: &[Subproblem]) -> Self {
        let total_members = subproblems.iter().map(|sp| sp.members.len()).sum();
        let mut columns = Self::with_capacity(subproblems.len(), total_members);
        for sp in subproblems {
            columns.push(
                sp.id,
                sp.members.iter().copied(),
                sp.omega,
                sp.weight,
                sp.psi,
                sp.disc,
            );
        }
        columns
    }

    /// Number of subproblems.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the decomposition is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The borrowed slice view the solve kernels consume.
    pub fn view(&self) -> SubproblemsView<'_> {
        SubproblemsView {
            ids: &self.ids,
            omegas: &self.omegas,
            weights: &self.weights,
            psis: &self.psis,
            discs: &self.discs,
            member_offsets: &self.member_offsets,
            members: &self.members,
        }
    }
}

/// Borrowed column slices over a [`SubproblemColumns`] (or any other
/// contiguous storage laid out the same way).
#[derive(Debug, Clone, Copy)]
pub struct SubproblemsView<'a> {
    /// Caller-chosen subproblem identifiers.
    pub ids: &'a [usize],
    /// Follower feedback weights ω (0 for honest subproblems).
    pub omegas: &'a [f64],
    /// Requester feedback weights `w` (Eq. 5).
    pub weights: &'a [f64],
    /// Fitted effort functions.
    pub psis: &'a [Quadratic],
    /// Effort-region discretizations.
    pub discs: &'a [Discretization],
    /// CSR offsets into `members` (length `len() + 1`).
    pub member_offsets: &'a [usize],
    /// Flat worker-index storage for all subproblems.
    pub members: &'a [usize],
}

impl<'a> SubproblemsView<'a> {
    /// Number of subproblems.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Worker indices of subproblem `i`.
    pub fn members_of(&self, i: usize) -> &'a [usize] {
        &self.members[self.member_offsets[i]..self.member_offsets[i + 1]]
    }

    /// Materializes subproblem `i` as a row struct (used only off the
    /// hot path, e.g. to hand a degraded subproblem to the shared
    /// fallback constructors).
    pub fn subproblem(&self, i: usize) -> Subproblem {
        Subproblem {
            id: self.ids[i],
            // dcc-lint: allow(hot-loop-alloc, reason = "cold degraded/diagnostic path; the solve kernel itself never materializes rows")
            members: self.members_of(i).to_vec(),
            omega: self.omegas[i],
            weight: self.weights[i],
            psi: self.psis[i],
            disc: self.discs[i],
        }
    }
}

/// Solves subproblem `i` via the §IV-C candidate algorithm — the same
/// builder chain (and therefore bit-identical arithmetic) as the
/// struct path's `solve_one`.
fn solve_index(
    view: SubproblemsView<'_>,
    i: usize,
    params: &ModelParams,
) -> Result<SubproblemSolution, CoreError> {
    let built = ContractBuilder::new(*params, view.discs[i], view.psis[i])
        .malicious(view.omegas[i])
        .weight(view.weights[i])
        .build()
        .map_err(|e| CoreError::InvalidInput(format!("subproblem {} failed: {e}", view.ids[i])))?;
    Ok(SubproblemSolution {
        id: view.ids[i],
        // dcc-lint: allow(hot-loop-alloc, reason = "the solution owns its member list; singleton for individual workers")
        members: view.members_of(i).to_vec(),
        built,
    })
}

/// Deterministic chunked fan-out over index ranges: `workers` scoped
/// threads each take one contiguous `0..n` chunk and the per-chunk
/// outputs are concatenated back in input order (the same schedule as
/// the struct path's `fan_out`).
fn fan_out_indices<T, F>(n: usize, workers: usize, per_index: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers > 1 && n > 1 {
        let chunk_size = n.div_ceil(workers);
        let per_ref = &per_index;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut start = 0usize;
            while start < n {
                let end = (start + chunk_size).min(n);
                handles.push(scope.spawn(move || (start..end).map(per_ref).collect::<Vec<_>>()));
                start = end;
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .collect()
        })
    } else {
        (0..n).map(per_index).collect()
    }
}

/// Applies the failure policy to per-index results (in input order, so
/// Abort reports the first failure) and sums the requester's objective —
/// the same fixed-order reduction as the struct path.
fn assemble_from_view(
    view: SubproblemsView<'_>,
    results: Vec<Result<SubproblemSolution, CoreError>>,
    params: &ModelParams,
    policy: FailurePolicy,
) -> Result<(BipSolution, DegradationReport), CoreError> {
    let mut solutions = Vec::with_capacity(view.len());
    let mut report = DegradationReport::default();
    for (i, result) in results.into_iter().enumerate() {
        match result {
            Ok(solution) => solutions.push(solution),
            Err(err) => match policy {
                FailurePolicy::Abort => return Err(err),
                FailurePolicy::FallbackBaseline { amount } => {
                    let sp = view.subproblem(i);
                    let (solution, paid) = fallback_solution(&sp, params, amount);
                    report.degraded.push(DegradedSubproblem {
                        subproblem: sp.id,
                        // dcc-lint: allow(hot-loop-alloc, reason = "cold degraded path; the report owns its member list")
                        members: sp.members.clone(),
                        reason: err.to_string(),
                        attempts: attempts_of(&err),
                        action: DegradationAction::Fallback { amount: paid },
                        utility_delta: utility_delta(
                            &sp,
                            params,
                            solution.built.requester_utility(),
                        ),
                    });
                    solutions.push(solution);
                }
                FailurePolicy::Skip => {
                    let sp = view.subproblem(i);
                    let solution = skip_solution(&sp);
                    report.degraded.push(DegradedSubproblem {
                        subproblem: sp.id,
                        // dcc-lint: allow(hot-loop-alloc, reason = "cold degraded path; the report owns its member list")
                        members: sp.members.clone(),
                        reason: err.to_string(),
                        attempts: attempts_of(&err),
                        action: DegradationAction::Skipped,
                        utility_delta: utility_delta(&sp, params, 0.0),
                    });
                    solutions.push(solution);
                }
            },
        }
    }

    let total = solutions.iter().map(|s| s.built.requester_utility()).sum();
    Ok((
        BipSolution {
            solutions,
            total_requester_utility: total,
        },
        report,
    ))
}

/// [`crate::solve_subproblems_pooled`] over a columnar view: the solve
/// kernel reads ω / weight / ψ / discretization straight from column
/// slices instead of walking row structs.
///
/// Output is **bit-identical** to the struct path for the same
/// decomposition, at every pool size (see the module docs).
///
/// # Errors
///
/// Same as [`crate::solve_subproblems_pooled`].
pub fn solve_subproblems_columns(
    view: SubproblemsView<'_>,
    params: &ModelParams,
    pool: usize,
    policy: FailurePolicy,
) -> Result<(BipSolution, DegradationReport), CoreError> {
    let workers = clamp_pool(pool, view.len());
    let results = fan_out_indices(view.len(), workers, |i| solve_index(view, i, params));
    assemble_from_view(view, results, params, policy)
}

/// [`solve_subproblems_columns`] with the pool resolved the same way as
/// [`crate::solve_subproblems_with`]: `parallel = true` uses
/// [`std::thread::available_parallelism`], `false` solves serially.
///
/// # Errors
///
/// Same as [`solve_subproblems_columns`].
pub fn solve_subproblems_columns_with(
    view: SubproblemsView<'_>,
    params: &ModelParams,
    parallel: bool,
    policy: FailurePolicy,
) -> Result<(BipSolution, DegradationReport), CoreError> {
    let pool = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        1
    };
    solve_subproblems_columns(view, params, pool, policy)
}

/// [`solve_subproblems_columns`] with the same per-subproblem
/// observability as [`crate::solve_subproblems_recorded`]: worker
/// threads only measure; all recording happens post-merge on the calling
/// thread in input order, so the metric stream is pool-invariant. When
/// `metrics` is disabled this delegates to the uninstrumented kernel.
///
/// # Errors
///
/// Same as [`solve_subproblems_columns`].
pub fn solve_subproblems_columns_recorded(
    view: SubproblemsView<'_>,
    params: &ModelParams,
    pool: usize,
    policy: FailurePolicy,
    metrics: &Metrics,
) -> Result<(BipSolution, DegradationReport), CoreError> {
    if !metrics.enabled() {
        return solve_subproblems_columns(view, params, pool, policy);
    }
    let workers = clamp_pool(pool, view.len());
    let timed = fan_out_indices(view.len(), workers, |i| {
        // dcc-lint: allow(wall-clock, reason = "per-subproblem timing fed to metrics.span_at below")
        let start = Instant::now();
        let result = solve_index(view, i, params);
        (result, start.elapsed())
    });
    let (results, times): (Vec<_>, Vec<_>) = timed.into_iter().unzip();
    let (solution, report) = assemble_from_view(view, results, params, policy)?;

    metrics.gauge(names::GAUGE_SOLVE_POOL, workers as f64);
    metrics.add(names::COUNTER_SOLVE_SUBPROBLEMS, view.len() as u64);
    for ((id, sol), elapsed) in view.ids.iter().zip(&solution.solutions).zip(&times) {
        let degraded = report.for_subproblem(*id).is_some();
        metrics.span_at(
            names::SPAN_SUBPROBLEM,
            &[
                ("id", (*id).into()),
                ("iterations", sol.built.diagnostics().len().into()),
                ("degraded", degraded.into()),
            ],
            *elapsed,
        );
        metrics.observe(names::HIST_SUBPROBLEM_US, elapsed.as_secs_f64() * 1e6);
    }
    for d in &report.degraded {
        metrics.add(names::COUNTER_SOLVE_DEGRADED, 1);
        let by_action = match d.action {
            DegradationAction::Fallback { .. } => names::COUNTER_SOLVE_DEGRADED_FALLBACK,
            DegradationAction::Skipped => names::COUNTER_SOLVE_DEGRADED_SKIPPED,
        };
        metrics.add(by_action, 1);
    }
    Ok((solution, report))
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{solve_subproblems_pooled, solve_subproblems_recorded};

    fn sample_subproblems(n: usize) -> Vec<Subproblem> {
        let disc = Discretization::new(12, 0.75).unwrap();
        (0..n)
            .map(|i| Subproblem {
                id: i,
                members: vec![i],
                omega: if i % 3 == 0 { 0.0 } else { 0.4 },
                weight: 0.5 + (i % 5) as f64 * 0.4,
                psi: Quadratic::new(-0.05, 2.0, 0.5),
                disc,
            })
            .collect()
    }

    fn params() -> ModelParams {
        ModelParams {
            mu: 1.5,
            ..ModelParams::default()
        }
    }

    #[test]
    fn transpose_roundtrips_every_column() {
        let mut sps = sample_subproblems(9);
        sps[4].members = vec![4, 21, 30];
        let columns = SubproblemColumns::from_subproblems(&sps);
        assert_eq!(columns.len(), 9);
        let view = columns.view();
        for (i, sp) in sps.iter().enumerate() {
            assert_eq!(view.subproblem(i), *sp);
            assert_eq!(view.members_of(i), sp.members.as_slice());
        }
    }

    #[test]
    fn columnar_solve_is_bit_identical_to_struct_solve() {
        let mut sps = sample_subproblems(37);
        sps[11].members = vec![11, 40, 41];
        let p = params();
        let columns = SubproblemColumns::from_subproblems(&sps);
        let (reference, _) = solve_subproblems_pooled(&sps, &p, 1, FailurePolicy::Abort).unwrap();
        for pool in [1, 2, 3, 4, 16, 64] {
            let (columnar, _) =
                solve_subproblems_columns(columns.view(), &p, pool, FailurePolicy::Abort).unwrap();
            assert_eq!(reference, columnar, "pool {pool} diverged");
            assert_eq!(
                reference.total_requester_utility.to_bits(),
                columnar.total_requester_utility.to_bits(),
                "pool {pool} total differs in bits"
            );
        }
    }

    #[test]
    fn degraded_columnar_solve_matches_struct_solve() {
        let mut sps = sample_subproblems(23);
        sps[7].weight = f64::NAN; // rejected by ContractBuilder::build
        let p = params();
        let columns = SubproblemColumns::from_subproblems(&sps);
        for policy in [
            FailurePolicy::FallbackBaseline { amount: 0.25 },
            FailurePolicy::Skip,
        ] {
            let (want, want_report) = solve_subproblems_pooled(&sps, &p, 3, policy).unwrap();
            let (got, got_report) =
                solve_subproblems_columns(columns.view(), &p, 3, policy).unwrap();
            assert_eq!(want, got);
            assert_eq!(want_report, got_report);
        }
        // Abort propagates the same first error.
        let want = solve_subproblems_pooled(&sps, &p, 1, FailurePolicy::Abort).unwrap_err();
        let got =
            solve_subproblems_columns(columns.view(), &p, 1, FailurePolicy::Abort).unwrap_err();
        assert_eq!(want.to_string(), got.to_string());
    }

    #[test]
    fn empty_view_solves_to_empty_solution() {
        let columns = SubproblemColumns::default();
        let (sol, report) =
            solve_subproblems_columns(columns.view(), &params(), 4, FailurePolicy::Abort).unwrap();
        assert!(sol.solutions.is_empty());
        assert_eq!(sol.total_requester_utility, 0.0);
        assert!(report.is_empty());
    }

    #[test]
    fn recorded_columnar_matches_recorded_struct_stream() {
        use dcc_obs::JsonRecorder;
        use std::sync::Arc;
        let mut sps = sample_subproblems(13);
        sps[5].weight = f64::NAN;
        let p = params();
        let policy = FailurePolicy::FallbackBaseline { amount: 0.4 };
        let columns = SubproblemColumns::from_subproblems(&sps);

        let struct_rec = Arc::new(JsonRecorder::new());
        let (want, want_report) = solve_subproblems_recorded(
            &sps,
            &p,
            3,
            policy,
            &Metrics::new(struct_rec.clone()),
        )
        .unwrap();
        let col_rec = Arc::new(JsonRecorder::new());
        let (got, got_report) = solve_subproblems_columns_recorded(
            columns.view(),
            &p,
            3,
            policy,
            &Metrics::new(col_rec.clone()),
        )
        .unwrap();
        assert_eq!(want, got);
        assert_eq!(want_report, got_report);
        // Redacted (timing-free) metric streams are identical too.
        assert_eq!(struct_rec.to_json_redacted(), col_rec.to_json_redacted());
    }

    #[test]
    fn with_variant_matches_pinned_pool() {
        let sps = sample_subproblems(11);
        let p = params();
        let columns = SubproblemColumns::from_subproblems(&sps);
        let (serial, _) =
            solve_subproblems_columns_with(columns.view(), &p, false, FailurePolicy::Abort)
                .unwrap();
        let (parallel, _) =
            solve_subproblems_columns_with(columns.view(), &p, true, FailurePolicy::Abort)
                .unwrap();
        assert_eq!(serial, parallel);
    }
}
