//! A misreport/collusion-proof payment baseline and the utility model
//! behind the metamorphic proofness harness.
//!
//! The paper's BiP contract pays `c(q(f))` on *reported* feedback, so a
//! coalition that inflates its feedback (intra-community upvoting,
//! Fig. 7) raises its own pay whenever the detector misses it. Following
//! the misreport-proof crowdsourcing mechanism of Li–Wang–Cheng–Hu
//! (arXiv:2003.11814), [`CollusionProofParams`] instead pays on a
//! worker's **star bias against the expert consensus** — a signal no
//! non-expert coalition can move in its favour:
//!
//! ```text
//! pay(b) = base + slope · (tolerance − clamp(b, 0, tolerance))
//! ```
//!
//! The rule is maximal at zero measured bias and monotone non-increasing
//! in the bias, and it ignores upvotes entirely. Three consequences,
//! exercised exactly by `tests/proofness.rs`:
//!
//! 1. **Upvote boosting buys nothing** — payment does not read feedback.
//! 2. **Star inflation never helps** — any upward shift of reported
//!    stars weakly increases measured bias and thus weakly decreases
//!    pay; downward shifts below the truth are clamped at the compliant
//!    maximum.
//! 3. **Effort deviations never help** — the productive part of a
//!    worker's utility, `ω·ψ(e) − cost(e)`, is maximized by the
//!    compliant best response [`best_effort`] independent of reporting.
//!
//! Together: no joint deviation of a coalition can exceed its compliant
//! utility — the coalition-proofness property, stated per member and
//! summed by [`coalition_utility`].

use crate::CoreError;
use dcc_numerics::Quadratic;
use dcc_trace::{ReviewerId, TraceDataset};

/// Parameters of the collusion-proof payment rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollusionProofParams {
    /// Pay floor reached at (or beyond) `tolerance` bias.
    pub base: f64,
    /// Marginal pay per unit of bias headroom.
    pub slope: f64,
    /// Bias level at which pay bottoms out (must be positive).
    pub tolerance: f64,
}

impl Default for CollusionProofParams {
    fn default() -> Self {
        CollusionProofParams {
            base: 0.5,
            slope: 1.0,
            tolerance: 1.0,
        }
    }
}

impl CollusionProofParams {
    /// Validates the parameter domain.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for non-finite values,
    /// negative `base` or `slope`, or non-positive `tolerance`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.base.is_finite() && self.slope.is_finite() && self.tolerance.is_finite()) {
            return Err(CoreError::InvalidParams(
                "collusion-proof parameters must be finite".into(),
            ));
        }
        if self.base < 0.0 || self.slope < 0.0 {
            return Err(CoreError::InvalidParams(
                "collusion-proof base and slope must be nonnegative".into(),
            ));
        }
        if self.tolerance <= 0.0 {
            return Err(CoreError::InvalidParams(
                "collusion-proof tolerance must be positive".into(),
            ));
        }
        Ok(())
    }

    /// The payment for a measured star bias `b` (any real; negative and
    /// over-tolerance biases are clamped into `[0, tolerance]`).
    pub fn pay(&self, bias: f64) -> f64 {
        self.base + self.slope * (self.tolerance - bias.clamp(0.0, self.tolerance))
    }

    /// The compliant (zero-bias) payment — the rule's maximum.
    pub fn max_pay(&self) -> f64 {
        self.pay(0.0)
    }
}

/// A worker's measured star bias: the mean signed residual of its star
/// ratings against the expert consensus, over the reviews where a
/// consensus exists. Workers with no expert-covered review measure as
/// unbiased (`0.0`).
pub fn worker_bias(trace: &TraceDataset, worker: ReviewerId) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for review in trace.reviews_by(worker) {
        if let Some(consensus) = trace.expert_consensus(review.product) {
            sum += review.stars - consensus;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Total per-round payment of a worker set under the collusion-proof
/// rule: the sum of each member's bias-clamped payment.
pub fn coalition_payment(
    trace: &TraceDataset,
    params: &CollusionProofParams,
    members: &[ReviewerId],
) -> f64 {
    members
        .iter()
        .map(|&m| params.pay(worker_bias(trace, m)))
        .sum()
}

/// One coalition member in the expectation-level utility model: a
/// malicious-benefit coefficient ω, a true effort→feedback response ψ,
/// and a linear effort cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalitionMember {
    /// Per-unit-feedback external benefit (ω in Eq. 3).
    pub omega: f64,
    /// True concave effort→feedback response.
    pub psi: Quadratic,
    /// Marginal cost of effort (nonnegative).
    pub marginal_cost: f64,
}

impl CoalitionMember {
    /// Validates the model's assumptions: finite fields, `ω ≥ 0`,
    /// concave ψ, nonnegative marginal cost.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] when any assumption fails.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.omega.is_finite()
            && self.marginal_cost.is_finite()
            && self.psi.eval(0.0).is_finite()
            && self.psi.eval(1.0).is_finite())
        {
            return Err(CoreError::InvalidParams(
                "coalition member fields must be finite".into(),
            ));
        }
        if self.omega < 0.0 {
            return Err(CoreError::InvalidParams("omega must be nonnegative".into()));
        }
        if !self.psi.is_concave() {
            return Err(CoreError::InvalidParams(
                "psi must be concave (r2 < 0)".into(),
            ));
        }
        if self.marginal_cost < 0.0 {
            return Err(CoreError::InvalidParams(
                "marginal cost must be nonnegative".into(),
            ));
        }
        Ok(())
    }

    /// The productive part of the member's per-round utility at effort
    /// `e`: external benefit minus effort cost, `ω·ψ(e) − c·e`.
    pub fn productive_utility(&self, effort: f64) -> f64 {
        self.omega * self.psi.eval(effort) - self.marginal_cost * effort
    }
}

/// The compliant best response: `argmax over e ≥ 0` of
/// [`CoalitionMember::productive_utility`]. Closed form from the
/// concave quadratic: the stationary point `(c − ω·r₁) / (2·ω·r₂)`,
/// clamped to zero (workers with `ω = 0` or a cost above the marginal
/// benefit at zero effort sit out).
pub fn best_effort(member: &CoalitionMember) -> f64 {
    let denom = 2.0 * member.omega * member.psi.r2();
    if denom >= 0.0 {
        // ω = 0 (ψ concave ⇒ denom < 0 otherwise): no benefit, no effort.
        return 0.0;
    }
    ((member.marginal_cost - member.omega * member.psi.r1()) / denom).max(0.0)
}

/// A joint deviation of one member: shift the reported stars, boost the
/// reported upvotes, and play an arbitrary nonnegative effort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deviation {
    /// Signed shift applied to the member's star reports (measured
    /// bias; the payment clamps it to `[0, tolerance]`).
    pub star_shift: f64,
    /// Upvote inflation bought from the coalition. The collusion-proof
    /// payment never reads feedback, so this channel is inert — the
    /// field exists so the harness can prove exactly that.
    pub upvote_boost: f64,
    /// The effort actually exerted (must be nonnegative).
    pub effort: f64,
}

impl Deviation {
    /// The compliant play: truthful reports and the best-response effort.
    pub fn compliant(member: &CoalitionMember) -> Deviation {
        Deviation {
            star_shift: 0.0,
            upvote_boost: 0.0,
            effort: best_effort(member),
        }
    }
}

/// One member's expected per-round utility under the collusion-proof
/// rule when playing `deviation`:
/// `pay(star_shift) + ω·ψ(e) − c·e`. The upvote boost does not appear —
/// that absence is the mechanism.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] when the parameters or member
/// violate the model assumptions, and [`CoreError::InvalidInput`] for a
/// negative or non-finite effort or non-finite report deviations.
pub fn member_utility(
    params: &CollusionProofParams,
    member: &CoalitionMember,
    deviation: &Deviation,
) -> Result<f64, CoreError> {
    params.validate()?;
    member.validate()?;
    if !(deviation.effort.is_finite() && deviation.effort >= 0.0) {
        return Err(CoreError::InvalidInput(
            "deviation effort must be finite and nonnegative".into(),
        ));
    }
    if !(deviation.star_shift.is_finite() && deviation.upvote_boost.is_finite()) {
        return Err(CoreError::InvalidInput(
            "deviation reports must be finite".into(),
        ));
    }
    Ok(params.pay(deviation.star_shift) + member.productive_utility(deviation.effort))
}

/// A coalition's joint expected utility when member `i` plays
/// `deviations[i]`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] on a length mismatch and
/// propagates [`member_utility`] failures.
pub fn coalition_utility(
    params: &CollusionProofParams,
    members: &[CoalitionMember],
    deviations: &[Deviation],
) -> Result<f64, CoreError> {
    if members.len() != deviations.len() {
        return Err(CoreError::InvalidInput(format!(
            "{} members but {} deviations",
            members.len(),
            deviations.len()
        )));
    }
    members
        .iter()
        .zip(deviations)
        .try_fold(0.0, |acc, (m, d)| Ok(acc + member_utility(params, m, d)?))
}

/// The coalition's utility when every member plays compliantly — the
/// supremum the proofness property compares deviations against.
///
/// # Errors
///
/// Propagates [`member_utility`] failures.
pub fn compliant_utility(
    params: &CollusionProofParams,
    members: &[CoalitionMember],
) -> Result<f64, CoreError> {
    members.iter().try_fold(0.0, |acc, m| {
        Ok(acc + member_utility(params, m, &Deviation::compliant(m))?)
    })
}

#[cfg(test)]
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use dcc_trace::SyntheticConfig;

    fn member() -> CoalitionMember {
        CoalitionMember {
            omega: 0.8,
            psi: Quadratic::new(-0.13, 2.0, 0.5),
            marginal_cost: 0.4,
        }
    }

    #[test]
    fn pay_is_maximal_at_zero_bias_and_monotone() {
        let p = CollusionProofParams::default();
        assert_eq!(p.pay(0.0), p.max_pay());
        assert_eq!(p.pay(-3.0), p.max_pay(), "negative bias clamps to compliant");
        let mut last = p.max_pay();
        for i in 1..=20 {
            let pay = p.pay(i as f64 * 0.1);
            assert!(pay <= last, "pay must be non-increasing in bias");
            last = pay;
        }
        assert_eq!(p.pay(5.0), p.base, "beyond tolerance the floor is paid");
    }

    #[test]
    fn invalid_params_and_members_are_rejected() {
        assert!(CollusionProofParams { tolerance: 0.0, ..Default::default() }
            .validate()
            .is_err());
        assert!(CollusionProofParams { base: -1.0, ..Default::default() }
            .validate()
            .is_err());
        assert!(CollusionProofParams { slope: f64::NAN, ..Default::default() }
            .validate()
            .is_err());
        let convex = CoalitionMember {
            psi: Quadratic::new(0.1, 1.0, 0.0),
            ..member()
        };
        assert!(convex.validate().is_err());
        assert!(CoalitionMember { omega: -1.0, ..member() }.validate().is_err());
    }

    #[test]
    fn best_effort_is_the_stationary_point() {
        let m = member();
        let e = best_effort(&m);
        assert!(e > 0.0);
        // Marginal benefit equals marginal cost at the optimum.
        let marginal = m.omega * m.psi.derivative_at(e);
        assert!((marginal - m.marginal_cost).abs() < 1e-12);
        for trial in [0.0, 0.5 * e, 0.9 * e, 1.1 * e, 2.0 * e] {
            assert!(m.productive_utility(trial) <= m.productive_utility(e) + 1e-12);
        }
        // A worker with no malicious benefit sits out.
        assert_eq!(best_effort(&CoalitionMember { omega: 0.0, ..m }), 0.0);
    }

    #[test]
    fn deviations_never_beat_compliance() {
        let p = CollusionProofParams::default();
        let members = vec![member(), CoalitionMember { omega: 0.3, ..member() }];
        let compliant = compliant_utility(&p, &members).unwrap();
        let deviations = vec![
            Deviation { star_shift: 0.7, upvote_boost: 3.0, effort: 1.0 },
            Deviation { star_shift: -0.2, upvote_boost: 10.0, effort: 0.0 },
        ];
        let deviated = coalition_utility(&p, &members, &deviations).unwrap();
        assert!(deviated <= compliant + 1e-12);
    }

    #[test]
    fn mismatched_deviations_are_rejected() {
        let p = CollusionProofParams::default();
        assert!(coalition_utility(&p, &[member()], &[]).is_err());
        let bad = Deviation { star_shift: 0.0, upvote_boost: 0.0, effort: -1.0 };
        assert!(member_utility(&p, &member(), &bad).is_err());
    }

    #[test]
    fn trace_bias_is_zero_without_expert_coverage_and_positive_for_cm() {
        let trace = SyntheticConfig::small(301).generate();
        // Collusive workers systematically over-rate (star_bias 2.2), so
        // the population-mean measured bias of CM workers must exceed the
        // honest one.
        let mean_bias = |ids: &[ReviewerId]| {
            let biases: Vec<f64> = ids.iter().map(|&w| worker_bias(&trace, w)).collect();
            biases.iter().sum::<f64>() / biases.len() as f64
        };
        let cm = trace.workers_of_class(dcc_trace::WorkerClass::CollusiveMalicious);
        let honest = trace.workers_of_class(dcc_trace::WorkerClass::Honest);
        assert!(mean_bias(&cm) > mean_bias(&honest));
    }

    #[test]
    fn coalition_payment_sums_member_payments() {
        let trace = SyntheticConfig::small(302).generate();
        let p = CollusionProofParams::default();
        let members = trace.campaigns()[0].members.clone();
        let total = coalition_payment(&trace, &p, &members);
        let by_hand: f64 = members.iter().map(|&m| p.pay(worker_bias(&trace, m))).sum();
        assert_eq!(total, by_hand);
        assert!(total <= members.len() as f64 * p.max_pay() + 1e-12);
    }
}
