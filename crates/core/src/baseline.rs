use crate::proofness::{coalition_payment, CollusionProofParams};
use crate::{AgentSpec, Contract, ContractDesign, CoreError};
use dcc_numerics::Quadratic;
use dcc_trace::{ReviewerId, TraceDataset};
use std::collections::BTreeSet;

/// The pricing strategies compared in Fig. 8(c), plus the
/// collusion-proof baseline from the adversarial head-to-head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// The paper's dynamic contract (§IV): every worker gets its designed
    /// contract, malicious ones with penalized weights.
    DynamicContract,
    /// The intuitive baseline: exclude all suspected malicious workers
    /// from the system; honest workers keep their designed contracts.
    ExcludeMalicious,
    /// The fixed-payment pricing most platforms use (§I): every in-system
    /// worker is paid a constant `amount` per round regardless of
    /// feedback.
    FixedPayment {
        /// The constant per-round payment.
        amount: f64,
    },
    /// The misreport/collusion-proof baseline (Li–Wang–Cheng–Hu): each
    /// worker is paid on its star bias against the expert consensus and
    /// never on its (gameable) feedback — see [`crate::proofness`].
    CollusionProof {
        /// Payment-rule parameters.
        params: CollusionProofParams,
    },
}

/// Assembles the simulation population for a strategy from a completed
/// [`ContractDesign`].
///
/// All strategies share the same underlying worker behaviour (ω, true ψ,
/// Eq. 5 weights); only participation and contracts differ:
///
/// - [`StrategyKind::DynamicContract`] uses the designed contracts as-is,
/// - [`StrategyKind::ExcludeMalicious`] keeps only non-suspected agents,
/// - [`StrategyKind::FixedPayment`] replaces every contract with a flat
///   payment.
///
/// One [`AgentSpec`] per subproblem is produced (communities stay
/// aggregated, matching the meta-worker semantics of Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineStrategy {
    /// Which pricing strategy to assemble.
    pub kind: StrategyKind,
}

impl BaselineStrategy {
    /// Creates a strategy wrapper.
    pub fn new(kind: StrategyKind) -> Self {
        BaselineStrategy { kind }
    }

    /// Builds the agent population for this strategy.
    ///
    /// `true_psis` supplies each agent's *actual* behavioural response
    /// (the designed ψ may differ from reality when detection erred):
    /// `(honest, ncm, community)`. `suspected` lists the workers the
    /// strategy considers malicious, and `trace` is the review history
    /// the bias-based [`StrategyKind::CollusionProof`] payments are
    /// measured on.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidContract`] for a negative fixed
    /// payment, [`CoreError::InvalidParams`] for invalid
    /// collusion-proof parameters, and propagates contract-construction
    /// failures.
    pub fn assemble(
        &self,
        design: &ContractDesign,
        omega: f64,
        suspected: &BTreeSet<ReviewerId>,
        trace: &TraceDataset,
    ) -> Result<Vec<AgentSpec>, CoreError> {
        let mut agents = Vec::with_capacity(design.solution.solutions.len());
        for sol in &design.solution.solutions {
            let members: Vec<ReviewerId> = sol.members.iter().map(|&m| ReviewerId(m)).collect();
            let is_suspected = members.iter().any(|m| suspected.contains(m));
            let is_community = members.len() > 1;
            let (honest_psi, ncm_psi, cm_psi) = design.class_psis;
            let psi: Quadratic = if is_community {
                cm_psi
            } else if is_suspected {
                ncm_psi
            } else {
                honest_psi
            };
            let weight = sol.built.weight();

            let (contract, in_system) = match self.kind {
                StrategyKind::DynamicContract => (sol.built.contract().clone(), true),
                StrategyKind::ExcludeMalicious => {
                    (sol.built.contract().clone(), !is_suspected)
                }
                StrategyKind::FixedPayment { amount } => {
                    let knots = sol.built.contract().feedback_knots();
                    let (lo, hi) = (knots[0], knots[knots.len() - 1]);
                    (Contract::fixed(lo, hi, amount)?, true)
                }
                StrategyKind::CollusionProof { params } => {
                    params.validate()?;
                    let knots = sol.built.contract().feedback_knots();
                    let (lo, hi) = (knots[0], knots[knots.len() - 1]);
                    // Bias-based, feedback-independent pay: within a
                    // round the contract is flat, so no amount of
                    // coalition upvoting moves it.
                    let amount = coalition_payment(trace, &params, &members);
                    (Contract::fixed(lo, hi, amount)?, true)
                }
            };

            agents.push(AgentSpec {
                id: sol.id,
                members: members.len(),
                omega: if is_suspected || is_community { omega } else { 0.0 },
                weight,
                psi,
                contract,
                in_system,
            });
        }
        Ok(agents)
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{design_contracts, DesignConfig, ModelParams, Simulation, SimulationConfig};
    use dcc_detect::{run_pipeline, PipelineConfig};
    use dcc_trace::SyntheticConfig;

    fn setup() -> (
        ContractDesign,
        BTreeSet<ReviewerId>,
        ModelParams,
        dcc_trace::TraceDataset,
    ) {
        let trace = SyntheticConfig::small(201).generate();
        let detection = run_pipeline(&trace, PipelineConfig::default());
        let config = DesignConfig::default();
        let design = design_contracts(&trace, &detection, &config).unwrap();
        let suspected: BTreeSet<ReviewerId> = detection.suspected.iter().copied().collect();
        (design, suspected, config.params, trace)
    }

    #[test]
    fn exclusion_drops_exactly_the_suspects() {
        let (design, suspected, params, trace) = setup();
        let ours = BaselineStrategy::new(StrategyKind::DynamicContract)
            .assemble(&design, params.omega, &suspected, &trace)
            .unwrap();
        let excl = BaselineStrategy::new(StrategyKind::ExcludeMalicious)
            .assemble(&design, params.omega, &suspected, &trace)
            .unwrap();
        assert_eq!(ours.len(), excl.len());
        let ours_in = ours.iter().filter(|a| a.in_system).count();
        let excl_in = excl.iter().filter(|a| a.in_system).count();
        assert!(excl_in < ours_in, "exclusion must drop someone");
        for (a, b) in ours.iter().zip(&excl) {
            if a.omega == 0.0 {
                assert!(b.in_system, "honest agents stay");
            } else {
                assert!(!b.in_system, "suspected agents leave");
            }
        }
    }

    #[test]
    fn dynamic_contract_beats_exclusion_in_simulation() {
        // The headline Fig. 8(c) claim.
        let (design, suspected, params, trace) = setup();
        let sim = Simulation::new(params, SimulationConfig::default());
        let ours = sim
            .run(
                &BaselineStrategy::new(StrategyKind::DynamicContract)
                    .assemble(&design, params.omega, &suspected, &trace)
                    .unwrap(),
            )
            .unwrap();
        let excl = sim
            .run(
                &BaselineStrategy::new(StrategyKind::ExcludeMalicious)
                    .assemble(&design, params.omega, &suspected, &trace)
                    .unwrap(),
            )
            .unwrap();
        assert!(
            ours.mean_round_utility >= excl.mean_round_utility,
            "ours {} must beat exclusion {}",
            ours.mean_round_utility,
            excl.mean_round_utility
        );
    }

    #[test]
    fn fixed_payment_buys_no_honest_effort() {
        let (design, suspected, params, trace) = setup();
        let fixed = BaselineStrategy::new(StrategyKind::FixedPayment { amount: 1.0 })
            .assemble(&design, params.omega, &suspected, &trace)
            .unwrap();
        let sim = Simulation::new(params, SimulationConfig::default());
        let outcome = sim.run(&fixed).unwrap();
        for (agent, effort) in fixed.iter().zip(&outcome.agent_effort) {
            if agent.omega == 0.0 {
                assert_eq!(*effort, 0.0, "flat pay induces no honest effort");
            }
        }
    }

    #[test]
    fn negative_fixed_payment_rejected() {
        let (design, suspected, params, trace) = setup();
        assert!(BaselineStrategy::new(StrategyKind::FixedPayment { amount: -1.0 })
            .assemble(&design, params.omega, &suspected, &trace)
            .is_err());
    }

    #[test]
    fn collusion_proof_contracts_are_flat_and_bias_priced() {
        let (design, suspected, params, trace) = setup();
        let cp_params = CollusionProofParams::default();
        let agents = BaselineStrategy::new(StrategyKind::CollusionProof { params: cp_params })
            .assemble(&design, params.omega, &suspected, &trace)
            .unwrap();
        assert!(agents.iter().all(|a| a.in_system));
        for (agent, sol) in agents.iter().zip(&design.solution.solutions) {
            let knots = agent.contract.feedback_knots();
            let low = agent.contract.compensation(knots[0]);
            let high = agent.contract.compensation(knots[knots.len() - 1]);
            assert_eq!(low, high, "payment must not read feedback");
            let members: Vec<ReviewerId> =
                sol.members.iter().map(|&m| ReviewerId(m)).collect();
            assert_eq!(
                low,
                crate::proofness::coalition_payment(&trace, &cp_params, &members)
            );
            assert!(low <= members.len() as f64 * cp_params.max_pay());
        }
        // Invalid parameters are rejected.
        let bad = CollusionProofParams { tolerance: -1.0, ..cp_params };
        assert!(BaselineStrategy::new(StrategyKind::CollusionProof { params: bad })
            .assemble(&design, params.omega, &suspected, &trace)
            .is_err());
    }
}
