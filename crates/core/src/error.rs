use dcc_numerics::NumericsError;
use std::fmt;

/// Errors produced by the contract-design core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model or discretization parameter was outside its valid domain.
    InvalidParams(String),
    /// The effort function violates the model's assumptions (§II requires
    /// a concave, twice-differentiable ψ, increasing on the discretized
    /// effort region).
    InvalidEffortFunction(String),
    /// A constructed contract violated an invariant (monotonicity, knot
    /// ordering).
    InvalidContract(String),
    /// Error from the numeric substrate.
    Numerics(NumericsError),
    /// Input collections disagreed in length or were empty where content
    /// was required.
    InvalidInput(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            CoreError::InvalidEffortFunction(m) => write!(f, "invalid effort function: {m}"),
            CoreError::InvalidContract(m) => write!(f, "invalid contract: {m}"),
            CoreError::Numerics(e) => write!(f, "numerics error: {e}"),
            CoreError::InvalidInput(m) => write!(f, "invalid input: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for CoreError {
    fn from(e: NumericsError) -> Self {
        CoreError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::InvalidParams("mu must be positive".into());
        assert_eq!(e.to_string(), "invalid parameters: mu must be positive");
        let n = CoreError::from(NumericsError::SingularSystem);
        assert!(n.source().is_some());
        assert_eq!(n.to_string(), "numerics error: linear system is singular");
    }
}
