use dcc_numerics::NumericsError;
use std::fmt;
use std::sync::Arc;

/// A cloneable, comparable wrapper around [`std::io::Error`] (which is
/// neither `Clone` nor `PartialEq`) so [`CoreError`] can keep both
/// derives. Equality compares only the [`std::io::ErrorKind`].
#[derive(Debug, Clone)]
pub struct IoSource(pub Arc<std::io::Error>);

impl PartialEq for IoSource {
    fn eq(&self, other: &Self) -> bool {
        self.0.kind() == other.0.kind()
    }
}

impl fmt::Display for IoSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<std::io::Error> for IoSource {
    fn from(e: std::io::Error) -> Self {
        IoSource(Arc::new(e))
    }
}

/// Errors produced by the contract-design core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model or discretization parameter was outside its valid domain.
    InvalidParams(String),
    /// The effort function violates the model's assumptions (§II requires
    /// a concave, twice-differentiable ψ, increasing on the discretized
    /// effort region).
    InvalidEffortFunction(String),
    /// A constructed contract violated an invariant (monotonicity, knot
    /// ordering).
    InvalidContract(String),
    /// Error from the numeric substrate.
    Numerics(NumericsError),
    /// Input collections disagreed in length or were empty where content
    /// was required.
    InvalidInput(String),
    /// A 1-based effort-interval index fell outside the discretization
    /// (`1..=intervals`).
    InvalidInterval {
        /// The offending index.
        interval: usize,
        /// Number of intervals in the discretization.
        intervals: usize,
    },
    /// An I/O operation (checkpoint write, fault-plan read, …) failed.
    Io {
        /// What the operation was trying to do (path, phase).
        context: String,
        /// The underlying I/O error.
        source: IoSource,
    },
    /// An operation gave up after exhausting its degraded-mode budget
    /// (e.g. retry-with-backoff ran out of attempts); carries the last
    /// underlying failure.
    Degraded {
        /// What was being attempted.
        context: String,
        /// How many attempts were made before giving up.
        attempts: usize,
        /// The final underlying error.
        source: Box<CoreError>,
    },
}

impl CoreError {
    /// Wraps an I/O error with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CoreError::Io {
            context: context.into(),
            source: source.into(),
        }
    }

    /// Marks an error as the terminal failure of an exhausted
    /// degraded-mode recovery (`attempts` tries).
    pub fn degraded(context: impl Into<String>, attempts: usize, source: CoreError) -> Self {
        CoreError::Degraded {
            context: context.into(),
            attempts,
            source: Box::new(source),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            CoreError::InvalidEffortFunction(m) => write!(f, "invalid effort function: {m}"),
            CoreError::InvalidContract(m) => write!(f, "invalid contract: {m}"),
            CoreError::Numerics(e) => write!(f, "numerics error: {e}"),
            CoreError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            CoreError::InvalidInterval { interval, intervals } => write!(
                f,
                "interval index {interval} outside the discretization (1..={intervals})"
            ),
            CoreError::Io { context, source } => write!(f, "io error: {context}: {source}"),
            CoreError::Degraded {
                context,
                attempts,
                source,
            } => write!(f, "degraded: {context} failed after {attempts} attempts: {source}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numerics(e) => Some(e),
            CoreError::Io { source, .. } => Some(source.0.as_ref()),
            CoreError::Degraded { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<NumericsError> for CoreError {
    fn from(e: NumericsError) -> Self {
        CoreError::Numerics(e)
    }
}

impl From<dcc_numerics::JsonError> for CoreError {
    fn from(e: dcc_numerics::JsonError) -> Self {
        // Matches the message the parser produced when it still returned
        // `CoreError` directly, so error-text comparisons (the serve
        // differential's err/err branch) see identical strings.
        CoreError::InvalidInput(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::InvalidParams("mu must be positive".into());
        assert_eq!(e.to_string(), "invalid parameters: mu must be positive");
        let n = CoreError::from(NumericsError::SingularSystem);
        assert!(n.source().is_some());
        assert_eq!(n.to_string(), "numerics error: linear system is singular");
    }

    #[test]
    fn io_display_and_source() {
        use std::error::Error;
        let e = CoreError::io(
            "write checkpoint chk.json",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert_eq!(
            e.to_string(),
            "io error: write checkpoint chk.json: denied"
        );
        let src = e.source().expect("io error carries a source");
        assert_eq!(src.to_string(), "denied");
    }

    #[test]
    fn io_equality_is_by_kind() {
        let a = CoreError::io(
            "x",
            std::io::Error::new(std::io::ErrorKind::NotFound, "first"),
        );
        let b = CoreError::io(
            "x",
            std::io::Error::new(std::io::ErrorKind::NotFound, "second"),
        );
        let c = CoreError::io(
            "x",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "third"),
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degraded_display_and_source() {
        use std::error::Error;
        let inner = CoreError::from(NumericsError::SingularSystem);
        let e = CoreError::degraded("solve subproblem 3", 4, inner.clone());
        assert_eq!(
            e.to_string(),
            "degraded: solve subproblem 3 failed after 4 attempts: \
             numerics error: linear system is singular"
        );
        let src = e.source().expect("degraded error carries a source");
        assert_eq!(src.to_string(), inner.to_string());
        // The chain continues into the numeric substrate.
        assert!(src.source().is_some());
    }
}
