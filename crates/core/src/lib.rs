//! # dcc-core
//!
//! The paper's contribution: dynamic contract design for heterogeneous
//! crowdsourcing workers (ICDCS 2017).
//!
//! A task requester repeatedly posts tasks to a pool of honest,
//! non-collusive malicious, and collusive malicious workers. Each round it
//! offers every worker a *contract* — a monotone piecewise-linear map from
//! the worker's previous-round feedback to this round's compensation
//! (Eq. 1, 6) — and each worker best-responds with an effort level
//! maximizing its own utility (Eq. 11 honest, Eq. 14 malicious). The
//! requester wants contracts maximizing
//! `U_req = Σ w_i·q_i − μ·Σ c_i` (Eq. 7), a bilevel program that this
//! crate solves per §IV:
//!
//! - [`ContractBuilder`] — the candidate-contract algorithm of §IV-C:
//!   for every target effort interval `[(k−1)δ, kδ)` construct a
//!   candidate `ξ^(k)` whose slopes follow the Eq. (39)–(40) recurrence
//!   inside the Case-III window of Lemma 4.1, then keep the candidate
//!   with the highest requester utility.
//! - [`bounds`] — Lemma 4.2 / 4.3 compensation bounds and the
//!   Theorem 4.1 requester-utility bracket.
//! - [`best_response`] — a worker's exact best response to an arbitrary
//!   contract (used to *verify* incentives rather than assume them).
//! - [`solve_subproblems`] / [`design_contracts`] — the §IV-B
//!   decomposition into per-worker / per-community subproblems, solved in
//!   parallel.
//! - [`Simulation`] — the repeated Stackelberg game over `T` rounds with
//!   lagged payments and stochastic feedback, plus the exclusion and
//!   fixed-payment baselines of §V.
//!
//! ## Example
//!
//! ```
//! use dcc_core::{ContractBuilder, Discretization, ModelParams};
//! use dcc_numerics::Quadratic;
//!
//! # fn main() -> Result<(), dcc_core::CoreError> {
//! let psi = Quadratic::new(-0.05, 2.0, 0.5);
//! let built = ContractBuilder::new(ModelParams::default(), Discretization::new(20, 0.5)?, psi)
//!     .honest()
//!     .weight(1.0)
//!     .build()?;
//! assert!(built.contract().is_monotone());
//! assert!(built.requester_utility().is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod bandit;
mod baseline;
mod budget;
mod behavior;
mod bip;
pub mod bounds;
mod builder;
mod candidate;
mod cases;
mod contract;
mod design;
mod effort;
mod error;
mod optimal;
mod params;
pub mod proofness;
mod replay;
mod response;
mod risk;
mod sim;
mod soa;
pub mod utilities;

pub use adaptive::{AdaptiveAgent, AdaptiveConfig, AdaptiveOutcome, AdaptiveSimulation, AdaptiveState};
pub use bandit::{BanditOutcome, LinearPricingBandit};
pub use budget::{select_within_budget, BudgetedSelection};
pub use baseline::{BaselineStrategy, StrategyKind};
pub use behavior::ConductModel;
pub use bip::{
    solve_subproblems, solve_subproblems_pooled, solve_subproblems_recorded,
    solve_subproblems_with, BipSolution, DegradationAction, DegradationReport,
    DegradedSubproblem, FailurePolicy, Subproblem, SubproblemSolution,
};
pub use builder::{BuiltContract, CandidateDiagnostics, ContractBuilder};
pub use candidate::{build_candidate, build_candidate_with_margin, Candidate};
pub use cases::{case_of_slope, interval_optimum, SlopeCase};
pub use contract::Contract;
pub use design::{
    assemble_design, collect_class_points, decompose_design, design_contracts, effort_region,
    fit_class_models,
    fit_cm_model, fit_honest_model, fit_ncm_model, prepare_design, worker_observation_point,
    AgentContract, ClassModel, ClassModels, ClassPoints, ContractDesign, DesignConfig, DesignPrep,
};
pub use effort::{
    fit_class_effort, fit_effort_function, fit_effort_function_with_candidate, nor_table,
    validate_effort_function, EffortFit,
};
pub use error::{CoreError, IoSource};
pub use optimal::{exhaustive_best_utility, first_best_utility, incentive_cost};
pub use params::{Discretization, ModelParams};
pub use proofness::{
    best_effort, coalition_payment, coalition_utility, compliant_utility, member_utility,
    worker_bias, CoalitionMember, CollusionProofParams, Deviation,
};
pub use replay::{replay_trace, ReplayOutcome};
pub use response::{best_response, BestResponse};
pub use risk::{best_response_risk_averse, risk_effort_drop, RiskProfile};
pub use sim::{
    AgentSpec, NoFaults, RoundFaults, RoundRecord, SimState, Simulation, SimulationConfig,
    SimulationOutcome,
};
pub use soa::{
    solve_subproblems_columns, solve_subproblems_columns_recorded, solve_subproblems_columns_with,
    SubproblemColumns, SubproblemsView,
};
