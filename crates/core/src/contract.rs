use crate::CoreError;
use dcc_numerics::PiecewiseLinear;
use std::fmt;

/// A contract: the monotone piecewise-linear map `f` from a worker's
/// previous-round feedback `q` to this round's compensation (Eq. 1, 6).
///
/// Internally a [`PiecewiseLinear`] over the feedback knots
/// `d_l = ψ(lδ)`; the payment is clamped flat outside the knot range
/// (below `d_0` the worker earns the base payment `x_0`, above `d_m`
/// the top payment `x_m` — §IV-C's flat tail).
///
/// # Example
///
/// ```
/// use dcc_core::Contract;
///
/// # fn main() -> Result<(), dcc_core::CoreError> {
/// let c = Contract::new(vec![0.0, 2.0, 5.0], vec![0.0, 1.0, 1.5])?;
/// assert_eq!(c.compensation(1.0), 0.5);
/// assert_eq!(c.compensation(100.0), 1.5);
/// assert!(c.is_monotone());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Contract {
    pwl: PiecewiseLinear,
}

impl Contract {
    /// Creates a contract from feedback knots `d_0 < … < d_m` and
    /// payments `x_0 ≤ … ≤ x_m`.
    ///
    /// # Errors
    ///
    /// - [`CoreError::InvalidContract`] if the payments decrease anywhere
    ///   (the model requires a monotonically increasing contract, §II-A)
    ///   or any payment is negative.
    /// - [`CoreError::Numerics`] if the knots are malformed (non-finite,
    ///   not strictly increasing, fewer than two).
    pub fn new(feedback_knots: Vec<f64>, payments: Vec<f64>) -> Result<Self, CoreError> {
        if payments.iter().any(|&x| x < 0.0) {
            return Err(CoreError::InvalidContract(
                "payments must be nonnegative".into(),
            ));
        }
        if payments.windows(2).any(|w| w[1] < w[0] - 1e-12) {
            return Err(CoreError::InvalidContract(
                "payments must be nondecreasing in feedback".into(),
            ));
        }
        let pwl = PiecewiseLinear::new(feedback_knots, payments)?;
        Ok(Contract { pwl })
    }

    /// The zero contract over `[d_lo, d_hi]`: pays nothing regardless of
    /// feedback. Used for workers the requester declines to incentivize
    /// (negative feedback weight).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Numerics`] if `d_lo >= d_hi`.
    pub fn zero(d_lo: f64, d_hi: f64) -> Result<Self, CoreError> {
        let pwl = PiecewiseLinear::constant(d_lo, d_hi, 0.0)?;
        Ok(Contract { pwl })
    }

    /// A constant contract paying `amount` regardless of feedback — the
    /// fixed-payment pricing most platforms use (§I).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidContract`] on a negative amount and
    /// [`CoreError::Numerics`] if `d_lo >= d_hi`.
    pub fn fixed(d_lo: f64, d_hi: f64, amount: f64) -> Result<Self, CoreError> {
        if amount < 0.0 {
            return Err(CoreError::InvalidContract(
                "payments must be nonnegative".into(),
            ));
        }
        let pwl = PiecewiseLinear::constant(d_lo, d_hi, amount)?;
        Ok(Contract { pwl })
    }

    /// The compensation `ζ(x, q)` for feedback `q` (Eq. 6), clamped flat
    /// outside the knot range.
    pub fn compensation(&self, feedback: f64) -> f64 {
        self.pwl.eval(feedback)
    }

    /// Feedback knots `d_0, …, d_m`.
    pub fn feedback_knots(&self) -> &[f64] {
        self.pwl.knots()
    }

    /// Payments `x_0, …, x_m` at the knots.
    pub fn payments(&self) -> &[f64] {
        self.pwl.values()
    }

    /// Contract slope `α_l` on the `l`-th feedback segment (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `l` is not a valid segment index.
    pub fn slope(&self, l: usize) -> f64 {
        self.pwl.slope(l)
    }

    /// Number of linear pieces.
    pub fn pieces(&self) -> usize {
        self.pwl.segments()
    }

    /// The segment index whose half-open feedback range
    /// `[d_l, d_{l+1})` contains `feedback`, or `None` outside the knot
    /// range (where the contract is flat).
    pub fn segment_of(&self, feedback: f64) -> Option<usize> {
        self.pwl.segment_of(feedback)
    }

    /// `true` iff payments never decrease with feedback (always holds for
    /// contracts built through [`Contract::new`]).
    pub fn is_monotone(&self) -> bool {
        self.pwl.is_monotone_nondecreasing()
    }

    /// The largest payment the contract can ever make (`x_m`).
    pub fn max_payment(&self) -> f64 {
        self.pwl.max_value()
    }
}

impl fmt::Display for Contract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contract{}", self.pwl)
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_monotonicity() {
        assert!(Contract::new(vec![0.0, 1.0], vec![1.0, 0.5]).is_err());
        assert!(Contract::new(vec![0.0, 1.0], vec![-0.1, 0.5]).is_err());
        assert!(Contract::new(vec![1.0, 0.0], vec![0.0, 0.5]).is_err());
        assert!(Contract::new(vec![0.0, 1.0], vec![0.0, 0.5]).is_ok());
    }

    #[test]
    fn compensation_interpolates_and_clamps() {
        let c = Contract::new(vec![1.0, 2.0, 4.0], vec![0.0, 2.0, 3.0]).unwrap();
        assert_eq!(c.compensation(1.5), 1.0);
        assert_eq!(c.compensation(3.0), 2.5);
        assert_eq!(c.compensation(0.0), 0.0); // below d_0 -> x_0
        assert_eq!(c.compensation(9.0), 3.0); // above d_m -> x_m
    }

    #[test]
    fn zero_and_fixed_contracts() {
        let z = Contract::zero(0.0, 10.0).unwrap();
        assert_eq!(z.compensation(5.0), 0.0);
        assert_eq!(z.max_payment(), 0.0);
        let f = Contract::fixed(0.0, 10.0, 2.5).unwrap();
        assert_eq!(f.compensation(0.0), 2.5);
        assert_eq!(f.compensation(99.0), 2.5);
        assert!(Contract::fixed(0.0, 10.0, -1.0).is_err());
        assert!(Contract::zero(10.0, 0.0).is_err());
    }

    #[test]
    fn accessors() {
        let c = Contract::new(vec![0.0, 2.0, 3.0], vec![0.0, 1.0, 1.0]).unwrap();
        assert_eq!(c.pieces(), 2);
        assert_eq!(c.slope(0), 0.5);
        assert_eq!(c.slope(1), 0.0);
        assert_eq!(c.feedback_knots(), &[0.0, 2.0, 3.0]);
        assert_eq!(c.payments(), &[0.0, 1.0, 1.0]);
        assert!(c.is_monotone());
        assert_eq!(c.max_payment(), 1.0);
        assert!(c.to_string().starts_with("contract"));
    }
}
