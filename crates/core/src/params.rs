use crate::CoreError;
use std::fmt;

/// Scalar parameters of the requester/worker utility model.
///
/// Defaults are the paper's §V setting: `μ = 10`, `β = 1`, `ω = 1`
/// ("β = α = 1"), `κ = γ = 0.1`, `ρ = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Weight of total compensation in the requester's utility (Eq. 7).
    pub mu: f64,
    /// Weight of effort cost in worker utilities (Eq. 11, 14).
    pub beta: f64,
    /// Weight of feedback in *malicious* worker utilities (Eq. 14);
    /// honest workers use `ω = 0` (§IV-C treats them as the special case).
    pub omega: f64,
    /// Malicious-probability penalty κ in the feedback weight (Eq. 5).
    pub kappa: f64,
    /// Partner-count penalty γ in the feedback weight (Eq. 5).
    pub gamma: f64,
    /// Accuracy coefficient ρ in the feedback weight (Eq. 5).
    pub rho: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            mu: 10.0,
            beta: 1.0,
            omega: 1.0,
            kappa: 0.1,
            gamma: 0.1,
            rho: 1.0,
        }
    }
}

impl ModelParams {
    /// Validates positivity constraints (`μ, β > 0`; `ω, κ, γ, ρ ≥ 0`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), CoreError> {
        let named = [
            ("mu", self.mu),
            ("beta", self.beta),
            ("omega", self.omega),
            ("kappa", self.kappa),
            ("gamma", self.gamma),
            ("rho", self.rho),
        ];
        for (name, value) in named {
            if !value.is_finite() {
                return Err(CoreError::InvalidParams(format!(
                    "{name} must be finite, got {value}"
                )));
            }
        }
        if self.mu <= 0.0 {
            return Err(CoreError::InvalidParams(format!(
                "mu must be positive, got {}",
                self.mu
            )));
        }
        if self.beta <= 0.0 {
            return Err(CoreError::InvalidParams(format!(
                "beta must be positive, got {}",
                self.beta
            )));
        }
        for (name, value) in [
            ("omega", self.omega),
            ("kappa", self.kappa),
            ("gamma", self.gamma),
            ("rho", self.rho),
        ] {
            if value < 0.0 {
                return Err(CoreError::InvalidParams(format!(
                    "{name} must be nonnegative, got {value}"
                )));
            }
        }
        Ok(())
    }

    /// A copy with `omega = 0` — the honest-worker special case of §IV-C.
    pub fn for_honest(&self) -> ModelParams {
        ModelParams {
            omega: 0.0,
            ..*self
        }
    }
}

/// The effort-region discretization of §III-A: `m` intervals of width `δ`,
/// covering `[0, mδ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discretization {
    m: usize,
    delta: f64,
}

impl Discretization {
    /// Creates a discretization with `m ≥ 1` intervals of width
    /// `delta > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] on a violated constraint.
    pub fn new(m: usize, delta: f64) -> Result<Self, CoreError> {
        if m == 0 {
            return Err(CoreError::InvalidParams(
                "discretization needs at least one interval".into(),
            ));
        }
        if !(delta.is_finite() && delta > 0.0) {
            return Err(CoreError::InvalidParams(format!(
                "interval width must be positive, got {delta}"
            )));
        }
        Ok(Discretization { m, delta })
    }

    /// Creates a discretization of `m` intervals covering `[0, y_max)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] if `m == 0` or
    /// `y_max <= 0`.
    pub fn covering(m: usize, y_max: f64) -> Result<Self, CoreError> {
        if !(y_max.is_finite() && y_max > 0.0) {
            return Err(CoreError::InvalidParams(format!(
                "effort region end must be positive, got {y_max}"
            )));
        }
        Discretization::new(m, y_max / m.max(1) as f64)
    }

    /// Number of intervals `m`.
    pub fn intervals(&self) -> usize {
        self.m
    }

    /// Interval width `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The effort knot `lδ` for `l = 0..=m`.
    ///
    /// # Panics
    ///
    /// Panics if `l > m`.
    pub fn knot(&self, l: usize) -> f64 {
        assert!(l <= self.m, "knot {l} out of range (m = {})", self.m);
        l as f64 * self.delta
    }

    /// The end of the effort region, `mδ`.
    pub fn y_max(&self) -> f64 {
        self.m as f64 * self.delta
    }

    /// All effort knots `0, δ, …, mδ`.
    pub fn knots(&self) -> Vec<f64> {
        (0..=self.m).map(|l| self.knot(l)).collect()
    }

    /// The 1-based interval index whose half-open range
    /// `[(l−1)δ, lδ)` contains `y`, or `None` outside `[0, mδ)`.
    pub fn interval_of(&self, y: f64) -> Option<usize> {
        if y < 0.0 || y >= self.y_max() {
            return None;
        }
        Some((y / self.delta) as usize + 1)
    }
}

impl fmt::Display for Discretization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} intervals of width {} over [0, {})", self.m, self.delta, self.y_max())
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_papers() {
        let p = ModelParams::default();
        assert_eq!(p.mu, 10.0);
        assert_eq!(p.beta, 1.0);
        assert_eq!(p.omega, 1.0);
        assert_eq!(p.kappa, 0.1);
        assert_eq!(p.gamma, 0.1);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn invalid_params_rejected() {
        let cases = [
            ModelParams { mu: 0.0, ..ModelParams::default() },
            ModelParams { beta: -1.0, ..ModelParams::default() },
            ModelParams { omega: -0.1, ..ModelParams::default() },
            ModelParams { mu: f64::NAN, ..ModelParams::default() },
        ];
        for p in cases {
            assert!(p.validate().is_err(), "{p:?} should be invalid");
        }
    }

    #[test]
    fn honest_variant_zeroes_omega() {
        let p = ModelParams::default().for_honest();
        assert_eq!(p.omega, 0.0);
        assert_eq!(p.mu, 10.0);
    }

    #[test]
    fn discretization_knots() {
        let d = Discretization::new(4, 0.5).unwrap();
        assert_eq!(d.intervals(), 4);
        assert_eq!(d.delta(), 0.5);
        assert_eq!(d.y_max(), 2.0);
        assert_eq!(d.knots(), vec![0.0, 0.5, 1.0, 1.5, 2.0]);
        assert_eq!(d.knot(0), 0.0);
        assert_eq!(d.knot(4), 2.0);
    }

    #[test]
    fn covering_splits_range() {
        let d = Discretization::covering(10, 5.0).unwrap();
        assert_eq!(d.delta(), 0.5);
        assert_eq!(d.y_max(), 5.0);
    }

    #[test]
    fn interval_of_is_half_open() {
        let d = Discretization::new(3, 1.0).unwrap();
        assert_eq!(d.interval_of(0.0), Some(1));
        assert_eq!(d.interval_of(0.99), Some(1));
        assert_eq!(d.interval_of(1.0), Some(2));
        assert_eq!(d.interval_of(2.99), Some(3));
        assert_eq!(d.interval_of(3.0), None);
        assert_eq!(d.interval_of(-0.1), None);
    }

    #[test]
    fn degenerate_discretizations_rejected() {
        assert!(Discretization::new(0, 1.0).is_err());
        assert!(Discretization::new(3, 0.0).is_err());
        assert!(Discretization::new(3, -1.0).is_err());
        assert!(Discretization::new(3, f64::INFINITY).is_err());
        assert!(Discretization::covering(5, 0.0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn knot_out_of_range_panics() {
        Discretization::new(2, 1.0).unwrap().knot(3);
    }
}
