use crate::{best_response, Contract, CoreError, Discretization, ModelParams};
use dcc_numerics::Quadratic;

/// The minimal compensation any contract must pay a `(β, ω)` worker to
/// make effort level `y` incentive-compatible.
///
/// The worker's outside option is its *autonomous utility*
/// `u_auto = max_{y'} (ωψ(y') − βy')` (work it would do for free); a
/// contract inducing `y ≥ y_auto` must leave the worker at least that
/// much, so
///
/// `c_min(y) = max(0, βy − ωψ(y) + u_auto)`.
///
/// Efforts *below* the autonomous level cannot be induced at all by a
/// monotone contract (the worker would deviate up to `y_auto`, earning at
/// least as much pay at higher own-utility); for such `y` the function
/// returns `0` — the worker delivers `y_auto ≥ y` for free.
///
/// For honest workers (`ω = 0`, `y_auto = 0`) this reduces to
/// `c_min(y) = βy` — the quantity behind the Lemma 4.3 bound.
///
/// # Errors
///
/// Returns [`CoreError::InvalidEffortFunction`] if ψ is not strictly
/// concave.
pub fn incentive_cost(params: &ModelParams, psi: &Quadratic, y: f64) -> Result<f64, CoreError> {
    if psi.r2() >= 0.0 {
        return Err(CoreError::InvalidEffortFunction(
            "psi must be strictly concave".into(),
        ));
    }
    if y <= autonomous_effort(params, psi) {
        return Ok(0.0);
    }
    let u_auto = autonomous_utility(params, psi);
    Ok((params.beta * y - params.omega * psi.eval(y) + u_auto).max(0.0))
}

/// The effort a worker exerts with no contract at all:
/// `argmax_{y ≥ 0} (ωψ(y) − βy)`, i.e. `ψ′⁻¹(β/ω)` clamped to 0.
fn autonomous_effort(params: &ModelParams, psi: &Quadratic) -> f64 {
    if dcc_numerics::exact_eq(params.omega, 0.0) {
        return 0.0;
    }
    // Callers validate r2 < 0; a degenerate (linear) psi degrades to
    // zero autonomous effort instead of panicking.
    psi.inverse_derivative(params.beta / params.omega)
        .map_or(0.0, |y| y.max(0.0))
}

/// The worker's best utility with no contract at all:
/// `max_{y ≥ 0} (ωψ(y) − βy)`.
fn autonomous_utility(params: &ModelParams, psi: &Quadratic) -> f64 {
    if dcc_numerics::exact_eq(params.omega, 0.0) {
        // -beta * y maximized at y = 0; the baseline utility is the
        // intrinsic value of zero-effort feedback.
        return 0.0;
    }
    let at = |y: f64| params.omega * psi.eval(y) - params.beta * y;
    at(autonomous_effort(params, psi)).max(at(0.0))
}

/// The *first-best* requester utility: the continuum optimum
/// `max_y (w·ψ(y) − μ·c_min(y))` over `y ∈ [0, y_max]`, evaluated on an
/// `n_grid`-point grid plus the interior stationary point.
///
/// This is the reference the discretized §IV-C contract approaches as
/// `m → ∞` (Fig. 6's "optimal is inside the bracket" argument): no
/// contract — piecewise linear or otherwise — can beat it, because
/// `c_min` is the information-theoretic minimum payment.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for a non-positive `y_max` or
/// zero grid, and propagates effort-function errors.
pub fn first_best_utility(
    weight: f64,
    params: &ModelParams,
    psi: &Quadratic,
    y_max: f64,
    n_grid: usize,
) -> Result<f64, CoreError> {
    if !(y_max.is_finite() && y_max > 0.0) || n_grid == 0 {
        return Err(CoreError::InvalidParams(format!(
            "need positive y_max and grid, got y_max = {y_max}, n_grid = {n_grid}"
        )));
    }
    let y_auto = autonomous_effort(params, psi);
    let mut best = f64::NEG_INFINITY;
    let mut eval = |y: f64| -> Result<(), CoreError> {
        // Efforts below the autonomous level are not attainable: the
        // worker delivers y_auto instead (for free).
        let y = y.max(y_auto);
        let u = weight * psi.eval(y) - params.mu * incentive_cost(params, psi, y)?;
        if u > best {
            best = u;
        }
        Ok(())
    };
    for i in 0..=n_grid {
        eval(y_max * i as f64 / n_grid as f64)?;
    }
    // Interior stationary point of w*psi(y) - mu*(beta*y - omega*psi(y)):
    // (w + mu*omega) * psi'(y) = mu * beta.
    let effective = weight + params.mu * params.omega;
    if effective > 0.0 {
        let y = psi.inverse_derivative(params.mu * params.beta / effective)?;
        if (0.0..=y_max).contains(&y) {
            eval(y)?;
        }
    }
    Ok(best)
}

/// Exhaustively searches all monotone piecewise-linear contracts on the
/// discretization's feedback knots, with payments drawn from a uniform
/// grid of `grid_levels` levels over `[0, pay_max]` (and `x₀ = 0`), and
/// returns the best requester utility any of them achieves against the
/// worker's exact best response.
///
/// This is the brute-force comparator for the §IV-C algorithm's
/// "near-optimal" claim at sizes where enumeration is feasible: the
/// number of monotone payment vectors is `C(grid_levels + m − 1, m)`
/// (multichoose), so keep `m ≤ 4` and `grid_levels ≤ 40`-ish.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for an empty grid or
/// non-positive `pay_max`, and propagates model errors.
pub fn exhaustive_best_utility(
    weight: f64,
    params: &ModelParams,
    disc: &Discretization,
    psi: &Quadratic,
    grid_levels: usize,
    pay_max: f64,
) -> Result<f64, CoreError> {
    if grid_levels == 0 || !(pay_max.is_finite() && pay_max > 0.0) {
        return Err(CoreError::InvalidParams(format!(
            "need a nonempty payment grid and positive pay_max, got {grid_levels} / {pay_max}"
        )));
    }
    crate::effort::validate_effort_function(psi, disc)?;
    let m = disc.intervals();
    let knots: Vec<f64> = (0..=m).map(|l| psi.eval(disc.knot(l))).collect();
    let grid: Vec<f64> = (0..=grid_levels)
        .map(|g| pay_max * g as f64 / grid_levels as f64)
        .collect();

    // Recursive enumeration of monotone payment vectors.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        weight: f64,
        params: &ModelParams,
        psi: &Quadratic,
        knots: &[f64],
        grid: &[f64],
        payments: &mut Vec<f64>,
        min_level: usize,
        best: &mut f64,
    ) -> Result<(), CoreError> {
        if payments.len() == knots.len() {
            let contract = Contract::new(knots.to_vec(), payments.clone())?;
            let response = best_response(params, psi, &contract)?;
            let utility = weight * response.feedback - params.mu * response.compensation;
            if utility > *best {
                *best = utility;
            }
            return Ok(());
        }
        for (level, &pay) in grid.iter().enumerate().skip(min_level) {
            payments.push(pay);
            recurse(weight, params, psi, knots, grid, payments, level, best)?;
            payments.pop();
        }
        Ok(())
    }

    let mut best = f64::NEG_INFINITY;
    let mut payments = vec![0.0]; // x0 = 0
    recurse(
        weight,
        params,
        psi,
        &knots,
        &grid,
        &mut payments,
        0,
        &mut best,
    )?;
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ContractBuilder, Discretization};

    fn setup() -> (ModelParams, Quadratic) {
        (
            ModelParams {
                mu: 1.5,
                omega: 0.0,
                ..ModelParams::default()
            },
            Quadratic::new(-0.05, 2.0, 0.5),
        )
    }

    #[test]
    fn honest_incentive_cost_is_linear() {
        let (params, psi) = setup();
        for y in [0.0, 1.0, 3.5, 8.0] {
            assert!((incentive_cost(&params, &psi, y).unwrap() - params.beta * y).abs() < 1e-12);
        }
    }

    #[test]
    fn omega_lowers_incentive_cost() {
        let (mut params, psi) = setup();
        let honest = incentive_cost(&params, &psi, 6.0).unwrap();
        params.omega = 0.5;
        let malicious = incentive_cost(&params, &psi, 6.0).unwrap();
        assert!(malicious < honest, "self-motivation must cut the cost");
        assert!(malicious >= 0.0);
    }

    #[test]
    fn cost_is_zero_below_autonomous_effort() {
        let (mut params, psi) = setup();
        params.omega = 2.0;
        // Autonomous effort: psi'(y) = beta/omega = 0.5 -> y = 15.
        let y_auto = psi.inverse_derivative(0.5).unwrap();
        assert!(incentive_cost(&params, &psi, 0.5 * y_auto).unwrap() == 0.0);
        assert!(incentive_cost(&params, &psi, 1.2 * y_auto).unwrap() > 0.0);
    }

    #[test]
    fn first_best_dominates_discretized_contract() {
        let (params, psi) = setup();
        let fb = first_best_utility(1.0, &params, &psi, 10.0, 5_000).unwrap();
        for m in [4, 16, 64] {
            let disc = Discretization::covering(m, 10.0).unwrap();
            let built = ContractBuilder::new(params, disc, psi)
                .honest()
                .weight(1.0)
                .build()
                .unwrap();
            assert!(
                built.requester_utility() <= fb + 1e-6,
                "m={m}: discretized {} beats first best {fb}",
                built.requester_utility()
            );
        }
    }

    #[test]
    fn discretized_contract_converges_to_first_best() {
        let (params, psi) = setup();
        let fb = first_best_utility(1.0, &params, &psi, 10.0, 5_000).unwrap();
        let disc = Discretization::covering(128, 10.0).unwrap();
        let built = ContractBuilder::new(params, disc, psi)
            .honest()
            .weight(1.0)
            .build()
            .unwrap();
        let gap = fb - built.requester_utility();
        assert!(
            gap < 0.05 * fb.abs().max(1.0),
            "m=128 gap {gap} too large (first best {fb})"
        );
    }

    #[test]
    fn malicious_first_best_at_least_honest() {
        let (params, psi) = setup();
        let honest = first_best_utility(1.0, &params, &psi, 10.0, 2_000).unwrap();
        let mal_params = ModelParams {
            omega: 0.5,
            ..params
        };
        let malicious = first_best_utility(1.0, &mal_params, &psi, 10.0, 2_000).unwrap();
        assert!(malicious >= honest - 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (params, psi) = setup();
        assert!(first_best_utility(1.0, &params, &psi, 0.0, 100).is_err());
        assert!(first_best_utility(1.0, &params, &psi, 10.0, 0).is_err());
        assert!(incentive_cost(&params, &Quadratic::new(0.1, 1.0, 0.0), 1.0).is_err());
        let disc = Discretization::covering(3, 10.0).unwrap();
        assert!(exhaustive_best_utility(1.0, &params, &disc, &psi, 0, 5.0).is_err());
        assert!(exhaustive_best_utility(1.0, &params, &disc, &psi, 10, 0.0).is_err());
    }

    /// The headline "near optimal" validation: at a size where every
    /// monotone grid contract can be enumerated, the §IV-C algorithm
    /// matches or beats the best of them (it optimizes over continuous
    /// slopes), and stays below the continuum first best.
    #[test]
    fn algorithm_matches_exhaustive_search() {
        let (params, psi) = setup();
        let disc = Discretization::covering(3, 9.0).unwrap();
        let weight = 1.0;
        let exhaustive =
            exhaustive_best_utility(weight, &params, &disc, &psi, 36, 12.0).unwrap();
        let ours = ContractBuilder::new(params, disc, psi)
            .honest()
            .weight(weight)
            .build()
            .unwrap()
            .requester_utility();
        let first_best = first_best_utility(weight, &params, &psi, 9.0, 5_000).unwrap();
        assert!(
            ours >= exhaustive - 0.05,
            "ours {ours} clearly below exhaustive {exhaustive}"
        );
        assert!(exhaustive <= first_best + 1e-6);
        assert!(ours <= first_best + 1e-6);
    }

    /// For a self-motivated (malicious) worker at coarse m, the
    /// unrestricted optimum is a "cliff" contract (one large step at the
    /// last knot) that the paper's candidate family does not contain —
    /// the exhaustive search finds it and beats the algorithm by a
    /// bounded margin that vanishes as the partition refines. This test
    /// documents both halves of that claim.
    #[test]
    fn algorithm_near_exhaustive_and_gap_closes_with_m() {
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        let params = ModelParams {
            mu: 1.5,
            omega: 0.4,
            ..ModelParams::default()
        };
        let disc = Discretization::covering(3, 9.0).unwrap();
        let exhaustive = exhaustive_best_utility(1.0, &params, &disc, &psi, 30, 12.0).unwrap();
        let ours_coarse = ContractBuilder::new(params, disc, psi)
            .malicious(0.4)
            .weight(1.0)
            .build()
            .unwrap()
            .requester_utility();
        // Coarse m: within 15% of the unrestricted grid optimum.
        assert!(
            ours_coarse >= 0.85 * exhaustive,
            "ours {ours_coarse} too far below exhaustive {exhaustive}"
        );

        // Fine m: the candidate family closes the gap (and exhaustive
        // enumeration is infeasible, so compare against what it found at
        // m = 3 — a lower bound on the true optimum).
        let fine = Discretization::covering(48, 9.0).unwrap();
        let ours_fine = ContractBuilder::new(params, fine, psi)
            .malicious(0.4)
            .weight(1.0)
            .build()
            .unwrap()
            .requester_utility();
        assert!(
            ours_fine >= exhaustive - 0.05,
            "fine-m algorithm {ours_fine} must reach the coarse exhaustive bound {exhaustive}"
        );
    }
}
