use crate::{BipSolution, CoreError, SubproblemSolution};

/// A budget-feasible selection over solved subproblems.
///
/// The budget-feasibility line of related work the paper cites (§VI —
/// Singer's framework and its descendants) maximizes the requester's
/// utility under a hard payment budget. This module adds that constraint
/// on top of the §IV-B/IV-C machinery: given the solved per-worker
/// subproblems, select which workers actually receive their designed
/// contract so total compensation stays within budget; everyone else
/// gets the zero contract.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedSelection {
    /// Ids of the subproblems whose contracts are funded, in funding
    /// order (best ratio first).
    pub funded: Vec<usize>,
    /// Total compensation committed.
    pub spend: f64,
    /// Requester utility of the funded set (unfunded subproblems
    /// contribute nothing — their zero-contract utility is not counted
    /// here, so this is the *incremental* value of the budget).
    pub utility: f64,
    /// The budget that was available.
    pub budget: f64,
}

/// Selects the budget-feasible subset of a solved decomposition by
/// greedy utility-per-cost ratio — the classic knapsack relaxation:
/// fund subproblems in decreasing `utility / compensation` order while
/// the budget lasts (zero-cost positive-utility subproblems are always
/// funded first).
///
/// Greedy is within one item of the LP-relaxation optimum for knapsack;
/// the tests cross-check it against exact enumeration at small sizes.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for a negative or non-finite
/// budget.
pub fn select_within_budget(
    solution: &BipSolution,
    budget: f64,
) -> Result<BudgetedSelection, CoreError> {
    if !(budget.is_finite() && budget >= 0.0) {
        return Err(CoreError::InvalidParams(format!(
            "budget must be a nonnegative finite number, got {budget}"
        )));
    }

    // Candidates worth funding at all.
    let mut candidates: Vec<&SubproblemSolution> = solution
        .solutions
        .iter()
        .filter(|s| s.built.requester_utility() > 0.0)
        .collect();
    candidates.sort_by(|a, b| {
        let ratio = |s: &SubproblemSolution| {
            let cost = s.built.compensation();
            if cost <= 1e-12 {
                f64::INFINITY
            } else {
                s.built.requester_utility() / cost
            }
        };
        ratio(b).partial_cmp(&ratio(a)).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut funded = Vec::new();
    let mut spend = 0.0;
    let mut utility = 0.0;
    for s in candidates {
        let cost = s.built.compensation();
        if spend + cost <= budget + 1e-12 {
            funded.push(s.id);
            spend += cost;
            utility += s.built.requester_utility();
        }
    }
    Ok(BudgetedSelection {
        funded,
        spend,
        utility,
        budget,
    })
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{solve_subproblems, Discretization, ModelParams, Subproblem};
    use dcc_numerics::Quadratic;

    fn solved(n: usize) -> BipSolution {
        let disc = Discretization::covering(16, 7.0).unwrap();
        let subproblems: Vec<Subproblem> = (0..n)
            .map(|i| Subproblem {
                id: i,
                members: vec![i],
                omega: 0.0,
                weight: 0.8 + 0.25 * (i % 6) as f64,
                psi: Quadratic::new(-0.15, 2.5, 1.0),
                disc,
            })
            .collect();
        let params = ModelParams {
            mu: 1.0,
            ..ModelParams::default()
        };
        solve_subproblems(&subproblems, &params, false).unwrap()
    }

    /// Exact knapsack by enumeration (small n).
    fn exact_best(solution: &BipSolution, budget: f64) -> f64 {
        let items: Vec<(f64, f64)> = solution
            .solutions
            .iter()
            .map(|s| (s.built.compensation(), s.built.requester_utility()))
            .collect();
        let n = items.len();
        let mut best = 0.0f64;
        for mask in 0..(1u32 << n) {
            let (mut cost, mut value) = (0.0, 0.0);
            for (i, &(c, v)) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    cost += c;
                    value += v;
                }
            }
            if cost <= budget + 1e-12 {
                best = best.max(value);
            }
        }
        best
    }

    #[test]
    fn unlimited_budget_funds_everything_positive() {
        let solution = solved(10);
        let selection = select_within_budget(&solution, f64::MAX / 2.0).unwrap();
        let positive = solution
            .solutions
            .iter()
            .filter(|s| s.built.requester_utility() > 0.0)
            .count();
        assert_eq!(selection.funded.len(), positive);
        assert!((selection.utility - solution.total_requester_utility).abs() < 1e-6);
    }

    #[test]
    fn zero_budget_funds_only_free_contracts() {
        let solution = solved(10);
        let selection = select_within_budget(&solution, 0.0).unwrap();
        assert_eq!(selection.spend, 0.0);
        for id in &selection.funded {
            let s = solution.solutions.iter().find(|s| s.id == *id).unwrap();
            assert!(s.built.compensation() <= 1e-12);
        }
    }

    #[test]
    fn spend_never_exceeds_budget_and_utility_monotone() {
        let solution = solved(12);
        let mut prev = 0.0;
        for budget in [0.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
            let sel = select_within_budget(&solution, budget).unwrap();
            assert!(sel.spend <= budget + 1e-9, "spend {} over budget {budget}", sel.spend);
            assert!(sel.utility >= prev - 1e-9, "utility must grow with budget");
            prev = sel.utility;
        }
    }

    #[test]
    fn greedy_is_near_exact_knapsack() {
        let solution = solved(10);
        for budget in [10.0, 20.0, 35.0] {
            let greedy = select_within_budget(&solution, budget).unwrap();
            let exact = exact_best(&solution, budget);
            // Greedy loses at most one item's utility.
            let max_item = solution
                .solutions
                .iter()
                .map(|s| s.built.requester_utility())
                .fold(0.0f64, f64::max);
            assert!(
                greedy.utility >= exact - max_item - 1e-9,
                "budget {budget}: greedy {} vs exact {exact}",
                greedy.utility
            );
            assert!(greedy.utility <= exact + 1e-9);
        }
    }

    #[test]
    fn invalid_budget_rejected() {
        let solution = solved(3);
        assert!(select_within_budget(&solution, -1.0).is_err());
        assert!(select_within_budget(&solution, f64::NAN).is_err());
    }
}
