use crate::{CoreError, Discretization};
use dcc_numerics::{norm_of_residuals, polyfit, Quadratic};
use dcc_trace::{TraceDataset, WorkerClass};

/// Checks that `psi` is a valid effort function for the model over the
/// discretized region `[0, mδ]` (§II): strictly concave (`r₂ < 0`) and
/// strictly increasing on the whole region (`ψ′(mδ) > 0`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidEffortFunction`] describing the violated
/// assumption.
pub fn validate_effort_function(psi: &Quadratic, disc: &Discretization) -> Result<(), CoreError> {
    if !psi.r2().is_finite() || !psi.r1().is_finite() || !psi.r0().is_finite() {
        return Err(CoreError::InvalidEffortFunction(
            "coefficients must be finite".into(),
        ));
    }
    if psi.r2() >= 0.0 {
        return Err(CoreError::InvalidEffortFunction(format!(
            "psi must be strictly concave (r2 < 0), got r2 = {}",
            psi.r2()
        )));
    }
    if psi.derivative_at(disc.y_max()) <= 0.0 {
        return Err(CoreError::InvalidEffortFunction(format!(
            "psi must be increasing on [0, {}]: psi'({}) = {} <= 0; \
             shrink the effort region below the peak at {}",
            disc.y_max(),
            disc.y_max(),
            psi.derivative_at(disc.y_max()),
            psi.peak().unwrap_or(f64::NAN)
        )));
    }
    if psi.eval(0.0) < 0.0 {
        return Err(CoreError::InvalidEffortFunction(format!(
            "psi(0) = {} must be nonnegative (feedback cannot be negative)",
            psi.eval(0.0)
        )));
    }
    Ok(())
}

/// A fitted effort function with its fit diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct EffortFit {
    /// The fitted quadratic `ψ(y) = r₂y² + r₁y + r₀` (Eq. 19).
    pub psi: Quadratic,
    /// Norm of residuals of the quadratic fit.
    pub nor: f64,
    /// Number of `(effort, feedback)` observation points used.
    pub points: usize,
}

/// Least-squares fit of the quadratic effort function (Eq. 19) to
/// `(effort, feedback)` observations — §IV-B's "effort function fitting".
///
/// If the unconstrained quadratic fit is not concave-increasing (possible
/// on noisy or tiny samples), the fit degrades gracefully: a linear fit's
/// slope and intercept are kept and a small negative curvature is imposed
/// so the result is always a valid model effort function on the data's
/// effort range.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] on fewer than 3 points and
/// propagates numeric failures.
pub fn fit_effort_function(points: &[(f64, f64)]) -> Result<EffortFit, CoreError> {
    if points.len() < 3 {
        return Err(CoreError::InvalidInput(format!(
            "need at least 3 observation points, got {}",
            points.len()
        )));
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let poly = polyfit(&xs, &ys, 2)?;
    let candidate = Quadratic::new(poly.coefficient(2), poly.coefficient(1), poly.coefficient(0));
    fit_effort_function_with_candidate(points, candidate)
}

/// [`fit_effort_function`] with the unconstrained quadratic candidate
/// supplied by the caller — the entry point for incremental refitting,
/// where the candidate comes from streaming normal-equation sums
/// ([`dcc_numerics::IncrementalQuadraticFit`], bit-identical to
/// `polyfit(xs, ys, 2)` under append-only updates) instead of a fresh
/// least-squares solve. The acceptance test, linear fallback, and NoR
/// diagnostics are shared, so both paths produce bit-identical
/// [`EffortFit`]s for the same points.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] on fewer than 3 points and
/// propagates numeric failures.
pub fn fit_effort_function_with_candidate(
    points: &[(f64, f64)],
    candidate: Quadratic,
) -> Result<EffortFit, CoreError> {
    if points.len() < 3 {
        return Err(CoreError::InvalidInput(format!(
            "need at least 3 observation points, got {}",
            points.len()
        )));
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let x_max = xs.iter().copied().fold(0.0f64, f64::max);

    let psi = if candidate.r2() < 0.0
        && candidate.derivative_at(x_max) > 0.0
        && candidate.eval(0.0) >= 0.0
    {
        candidate
    } else {
        // Fallback: linear trend with a gentle curvature so the model
        // assumptions (concave increasing, nonnegative intercept) hold on
        // the observed range.
        let line = polyfit(&xs, &ys, 1)?;
        let slope = line.coefficient(1).max(1e-3);
        let intercept = line.coefficient(0).max(0.0);
        // Curvature that loses at most 20% of the slope at x_max.
        let r2 = -(0.2 * slope) / (2.0 * x_max.max(1e-9));
        Quadratic::new(r2, slope, intercept)
    };
    let nor = norm_of_residuals(
        &dcc_numerics::Polynomial::new(vec![psi.r0(), psi.r1(), psi.r2()]),
        &xs,
        &ys,
    )?;
    Ok(EffortFit {
        psi,
        nor,
        points: points.len(),
    })
}

/// Fits a class's effort function straight from a trace (one observation
/// point per worker of that class, as in §IV-B).
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] when the class has fewer than 3
/// workers with reviews.
pub fn fit_class_effort(trace: &TraceDataset, class: WorkerClass) -> Result<EffortFit, CoreError> {
    fit_effort_function(&trace.effort_feedback_points(class))
}

/// Norm of residuals of polynomial fits of orders `1..=max_degree` to the
/// observation points — the Table III comparison that justifies choosing
/// the quadratic.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] on fewer than `max_degree + 1`
/// points and propagates numeric failures.
pub fn nor_table(points: &[(f64, f64)], max_degree: usize) -> Result<Vec<(usize, f64)>, CoreError> {
    if points.len() < max_degree + 1 {
        return Err(CoreError::InvalidInput(format!(
            "need at least {} points for degree {max_degree}, got {}",
            max_degree + 1,
            points.len()
        )));
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let mut table = Vec::with_capacity(max_degree);
    for degree in 1..=max_degree {
        let poly = polyfit(&xs, &ys, degree)?;
        table.push((degree, norm_of_residuals(&poly, &xs, &ys)?));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcc_trace::SyntheticConfig;

    #[test]
    fn validation_accepts_model_psi() {
        let disc = Discretization::new(10, 1.0).unwrap();
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        assert!(validate_effort_function(&psi, &disc).is_ok());
    }

    #[test]
    fn validation_rejects_convex_or_decreasing() {
        let disc = Discretization::new(10, 1.0).unwrap();
        assert!(validate_effort_function(&Quadratic::new(0.01, 2.0, 0.5), &disc).is_err());
        assert!(validate_effort_function(&Quadratic::new(0.0, 2.0, 0.5), &disc).is_err());
        // Peaks at y = 5, region goes to 10 -> decreasing at the end.
        assert!(validate_effort_function(&Quadratic::new(-0.2, 2.0, 0.5), &disc).is_err());
        // Negative intercept.
        assert!(validate_effort_function(&Quadratic::new(-0.05, 2.0, -0.5), &disc).is_err());
        assert!(
            validate_effort_function(&Quadratic::new(f64::NAN, 2.0, 0.5), &disc).is_err()
        );
    }

    #[test]
    fn fit_recovers_exact_quadratic() {
        let truth = Quadratic::new(-0.04, 1.8, 0.7);
        let points: Vec<(f64, f64)> = (1..40)
            .map(|i| {
                let y = i as f64 * 0.25;
                (y, truth.eval(y))
            })
            .collect();
        let fit = fit_effort_function(&points).unwrap();
        assert!((fit.psi.r2() - truth.r2()).abs() < 1e-8);
        assert!((fit.psi.r1() - truth.r1()).abs() < 1e-7);
        assert!(fit.nor < 1e-6);
        assert_eq!(fit.points, points.len());
    }

    #[test]
    fn fit_falls_back_when_data_is_convex() {
        // Convex data: unconstrained fit would violate the model.
        let points: Vec<(f64, f64)> = (1..30).map(|i| {
            let y = i as f64 * 0.3;
            (y, 0.1 * y * y)
        }).collect();
        let fit = fit_effort_function(&points).unwrap();
        assert!(fit.psi.r2() < 0.0, "fallback must be concave");
        let x_max = points.last().unwrap().0;
        assert!(fit.psi.derivative_at(x_max) > 0.0, "fallback must be increasing");
    }

    #[test]
    fn fit_requires_three_points() {
        assert!(fit_effort_function(&[(1.0, 1.0), (2.0, 2.0)]).is_err());
        assert!(fit_effort_function_with_candidate(
            &[(1.0, 1.0), (2.0, 2.0)],
            Quadratic::new(-0.1, 1.0, 0.0)
        )
        .is_err());
    }

    #[test]
    fn incremental_candidate_path_is_bit_identical() {
        // A candidate built from streaming normal-equation sums must give
        // the exact same EffortFit as the batch polyfit path — the serve
        // correctness contract at the fitting layer.
        let trace = SyntheticConfig::small(3).generate();
        let points = trace.effort_feedback_points(dcc_trace::WorkerClass::Honest);
        let batch = fit_effort_function(&points).unwrap();
        let inc = dcc_numerics::IncrementalQuadraticFit::from_points(&points);
        let candidate = inc.fit().unwrap();
        let streamed = fit_effort_function_with_candidate(&points, candidate).unwrap();
        assert_eq!(batch.psi.r2().to_bits(), streamed.psi.r2().to_bits());
        assert_eq!(batch.psi.r1().to_bits(), streamed.psi.r1().to_bits());
        assert_eq!(batch.psi.r0().to_bits(), streamed.psi.r0().to_bits());
        assert_eq!(batch.nor.to_bits(), streamed.nor.to_bits());
        assert_eq!(batch.points, streamed.points);
    }

    #[test]
    fn class_fit_from_trace_is_valid() {
        let trace = SyntheticConfig::small(3).generate();
        for class in WorkerClass::ALL {
            let fit = fit_class_effort(&trace, class).unwrap();
            let points = trace.effort_feedback_points(class);
            let x_max = points.iter().map(|p| p.0).fold(0.0f64, f64::max);
            assert!(fit.psi.r2() < 0.0, "{class}: r2 = {}", fit.psi.r2());
            assert!(fit.psi.derivative_at(x_max) > 0.0, "{class} not increasing");
        }
    }

    #[test]
    fn nor_table_is_nonincreasing() {
        let trace = SyntheticConfig::small(3).generate();
        let points = trace.effort_feedback_points(WorkerClass::Honest);
        let table = nor_table(&points, 6).unwrap();
        assert_eq!(table.len(), 6);
        for w in table.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "NoR must not increase with degree");
        }
        // Table III shape: quadratic is within a hair of the 6th order.
        let quad = table[1].1;
        let sixth = table[5].1;
        assert!(quad <= sixth * 1.05, "quadratic {quad} vs sixth {sixth}");
    }

    #[test]
    fn nor_table_validates_input_size() {
        assert!(nor_table(&[(1.0, 1.0); 3], 6).is_err());
    }
}
