//! Property-based tests of the §IV-C theory over randomized parameters.
//!
//! Strategy domains are chosen so the model assumptions hold by
//! construction: ψ strictly concave and increasing over the whole
//! discretized effort region, ω below the level at which the slope
//! recurrence would clamp.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
#![allow(clippy::float_cmp)]

use dcc_core::{
    best_response, bounds, build_candidate, first_best_utility, ContractBuilder, Discretization,
    ModelParams,
};
use dcc_numerics::Quadratic;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct World {
    params: ModelParams,
    disc: Discretization,
    psi: Quadratic,
}

/// Random model worlds satisfying the §II assumptions.
fn world(omega_max: f64) -> impl Strategy<Value = World> {
    (
        0.5f64..3.0,    // r1
        0.01f64..0.2,   // curvature scale: r2 = -c * r1 / (2 * y_max)
        0.0f64..2.0,    // r0
        4usize..24,     // m
        2.0f64..12.0,   // y_max
        0.5f64..3.0,    // mu
        0.5f64..2.0,    // beta
        0.0f64..1.0,    // omega fraction
    )
        .prop_map(
            move |(r1, curve, r0, m, y_max, mu, beta, omega_frac)| {
                // psi'(y_max) = r1 + 2*r2*y_max = r1 * (1 - curve) > 0.
                let r2 = -curve * r1 / (2.0 * y_max);
                let psi = Quadratic::new(r2, r1, r0);
                let disc = Discretization::covering(m, y_max).expect("valid discretization");
                // Slopes never clamp when omega < beta / psi'(0) (the
                // smallest Case-III lower edge is at l = 1).
                let omega = omega_frac * omega_max * beta / r1;
                let params = ModelParams {
                    mu,
                    beta,
                    omega,
                    ..ModelParams::default()
                };
                World { params, disc, psi }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The §IV-C incentive property: the best response to candidate
    /// ξ^(k) lands inside the target interval, for every k.
    #[test]
    fn candidate_induces_target_interval(w in world(0.9), k_frac in 0.0f64..1.0) {
        let m = w.disc.intervals();
        let k = 1 + ((k_frac * m as f64) as usize).min(m - 1);
        let cand = build_candidate(&w.params, &w.disc, &w.psi, k).unwrap();
        prop_assume!(!cand.clamped);
        let br = best_response(&w.params, &w.psi, &cand.contract).unwrap();
        prop_assert!(
            br.effort >= w.disc.knot(k - 1) - 1e-6 && br.effort <= w.disc.knot(k) + 1e-6,
            "k={k}: response {} outside [{}, {}]",
            br.effort,
            w.disc.knot(k - 1),
            w.disc.knot(k)
        );
    }

    /// Candidate contracts are always monotone with zero base payment.
    #[test]
    fn candidates_are_monotone(w in world(0.9), k_frac in 0.0f64..1.0) {
        let m = w.disc.intervals();
        let k = 1 + ((k_frac * m as f64) as usize).min(m - 1);
        let cand = build_candidate(&w.params, &w.disc, &w.psi, k).unwrap();
        prop_assert!(cand.contract.is_monotone());
        prop_assert_eq!(cand.contract.payments()[0], 0.0);
        prop_assert!(cand.slopes.iter().all(|a| a.is_finite() && *a >= 0.0));
    }

    /// Lemma 4.2 / 4.3: realized compensation sits inside the bracket
    /// (honest workers).
    #[test]
    fn compensation_bracket(w in world(0.0), k_frac in 0.0f64..1.0) {
        let params = w.params.for_honest();
        let m = w.disc.intervals();
        let k = 1 + ((k_frac * m as f64) as usize).min(m - 1);
        let cand = build_candidate(&params, &w.disc, &w.psi, k).unwrap();
        let br = best_response(&params, &w.psi, &cand.contract).unwrap();
        let lb = bounds::compensation_lower_bound(&params, &w.disc, k);
        let ub = bounds::compensation_upper_bound(&params, &w.disc, &w.psi, k);
        prop_assert!(br.compensation >= lb - 1e-7, "{} < {lb}", br.compensation);
        prop_assert!(br.compensation <= ub + 1e-7, "{} > {ub}", br.compensation);
    }

    /// Theorem 4.1: the selected contract's requester utility lies in
    /// [lower, upper] for honest workers.
    #[test]
    fn theorem_4_1_bracket(w in world(0.0), weight in 0.1f64..4.0) {
        let params = w.params.for_honest();
        let built = ContractBuilder::new(params, w.disc, w.psi)
            .honest()
            .weight(weight)
            .build()
            .unwrap();
        if let Some((lo, hi)) = built.utility_bounds() {
            prop_assert!(built.requester_utility() >= lo - 1e-7);
            prop_assert!(built.requester_utility() <= hi + 1e-7);
        }
    }

    /// The discretized contract never beats the continuum first best, and
    /// the worker's utility is individually rational.
    #[test]
    fn first_best_dominates(w in world(0.9), weight in 0.1f64..4.0) {
        let built = ContractBuilder::new(w.params, w.disc, w.psi)
            .weight(weight)
            .build()
            .unwrap();
        let fb = first_best_utility(weight, &w.params, &w.psi, w.disc.y_max(), 2000).unwrap();
        prop_assert!(
            built.requester_utility() <= fb + 1e-6,
            "designed {} beats first best {fb}",
            built.requester_utility()
        );
        prop_assert!(built.worker_utility() >= -1e-9, "worker IR violated");
    }

    /// Refining the partition (doubling m) never hurts the requester by
    /// more than numerical slack — the Fig. 6 convergence direction.
    #[test]
    fn refinement_weakly_helps(w in world(0.0), weight in 0.2f64..3.0) {
        let params = w.params.for_honest();
        let coarse = ContractBuilder::new(
            params,
            Discretization::covering(6, w.disc.y_max()).unwrap(),
            w.psi,
        )
        .honest()
        .weight(weight)
        .build()
        .unwrap();
        let fine = ContractBuilder::new(
            params,
            Discretization::covering(48, w.disc.y_max()).unwrap(),
            w.psi,
        )
        .honest()
        .weight(weight)
        .build()
        .unwrap();
        // Allow a tiny slack: the epsilon margins are not perfectly
        // nested across partitions.
        let tolerance = 0.02 * coarse.requester_utility().abs().max(0.5);
        prop_assert!(
            fine.requester_utility() >= coarse.requester_utility() - tolerance,
            "fine {} vs coarse {}",
            fine.requester_utility(),
            coarse.requester_utility()
        );
    }

    /// Margin-robust candidates tolerate productivity drift up to
    /// roughly the margin: with margin 0.3 and a 10% drop in r1, the
    /// worker still delivers most of the target effort instead of
    /// collapsing to zero (which the margin-0 construction does).
    #[test]
    fn margin_buys_drift_tolerance(w in world(0.0), k_frac in 0.3f64..1.0) {
        let params = w.params.for_honest();
        let m = w.disc.intervals();
        let k = 1 + ((k_frac * m as f64) as usize).min(m - 1);
        let slack = dcc_core::build_candidate_with_margin(&params, &w.disc, &w.psi, k, 0.3)
            .unwrap();
        let drifted = Quadratic::new(w.psi.r2(), 0.9 * w.psi.r1(), w.psi.r0());
        // The drifted response must still be valid for the model.
        prop_assume!(drifted.derivative_at(w.disc.y_max()) > 0.0);
        let response = best_response(&params, &drifted, &slack.contract).unwrap();
        prop_assert!(
            response.effort >= 0.5 * w.disc.knot(k - 1) - 1e-9,
            "k={k}: drifted response {} collapsed (target lower edge {})",
            response.effort,
            w.disc.knot(k - 1)
        );
    }

    /// The best response to any built contract matches a dense grid
    /// search.
    #[test]
    fn response_matches_grid(w in world(0.9), weight in 0.1f64..4.0) {
        let built = ContractBuilder::new(w.params, w.disc, w.psi)
            .weight(weight)
            .build()
            .unwrap();
        let br = best_response(&w.params, &w.psi, built.contract()).unwrap();
        let y_peak = w.psi.peak().unwrap();
        let mut best_u = f64::NEG_INFINITY;
        for i in 0..=4000 {
            let y = y_peak * i as f64 / 4000.0;
            let q = w.psi.eval(y);
            let u = built.contract().compensation(q) + w.params.omega * q - w.params.beta * y;
            best_u = best_u.max(u);
        }
        prop_assert!(
            br.utility >= best_u - 1e-4,
            "closed-form utility {} below grid {best_u}",
            br.utility
        );
    }
}
