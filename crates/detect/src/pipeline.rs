use crate::{
    cluster_collusive, CollusionReport, ConsensusMap, FeedbackWeights, MaliciousDetector,
    MaliciousEstimates, WeightParams,
};
use dcc_trace::{ReviewerId, TraceDataset};
use std::collections::BTreeSet;

/// Where the suspected-malicious worker set comes from.
///
/// The paper's evaluation trace carries **ground-truth labels** (1,524
/// malicious reviewers identified by crawling underground recruitment
/// sites), and its clustering and weighting consume those labels directly;
/// estimators \[14\]\[15\] are cited as how a deployment *would* obtain
/// them. Both modes are supported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SuspectSource {
    /// Use the trace's ground-truth class labels (paper §V).
    GroundTruth,
    /// Threshold the heuristic [`MaliciousDetector`] estimates.
    Estimated {
        /// Suspicion threshold on `e_mal`.
        threshold: f64,
    },
}

/// Configuration of the end-to-end detection pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Estimator of `e_mal` (always run — Eq. 5 needs the probability even
    /// when the suspect *set* comes from ground truth).
    pub detector: MaliciousDetector,
    /// Source of the suspected-malicious set fed to clustering and the
    /// robust consensus refinement.
    pub suspects: SuspectSource,
    /// Coefficients of the feedback-weight formula (Eq. 5).
    pub weights: WeightParams,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            detector: MaliciousDetector::default(),
            suspects: SuspectSource::GroundTruth,
            weights: WeightParams::default(),
        }
    }
}

/// All detection artifacts the contract designer needs, produced by
/// [`run_pipeline`].
#[derive(Debug, Clone)]
pub struct DetectionResult {
    /// The refined (suspect-excluded) consensus used for the weights.
    pub consensus: ConsensusMap,
    /// Malicious-probability estimates (from the first-pass consensus).
    pub estimates: MaliciousEstimates,
    /// The suspected-malicious set that was clustered.
    pub suspected: Vec<ReviewerId>,
    /// Collusive community clustering of the suspected workers (§IV-A).
    pub collusion: CollusionReport,
    /// Feedback weights `w_i` of Eq. 5.
    pub weights: FeedbackWeights,
}

/// Runs the full §IV detection flow in two passes:
///
/// 1. build the raw consensus, estimate `e_mal`, and determine the
///    suspected-malicious set (ground-truth labels by default, matching
///    the paper's evaluation);
/// 2. cluster the suspects into communities (§IV-A), rebuild the
///    consensus excluding them (robust refinement), and compute the
///    Eq. 5 weights against the refined consensus.
///
/// The two-pass refinement is what prevents large collusive communities
/// from dragging the crowd consensus toward their own biased reviews and
/// thereby laundering their accuracy term.
pub fn run_pipeline(trace: &TraceDataset, config: PipelineConfig) -> DetectionResult {
    let raw_consensus = ConsensusMap::build(trace);
    let estimates = config.detector.estimate(trace, &raw_consensus);
    let suspected: Vec<ReviewerId> = match config.suspects {
        SuspectSource::GroundTruth => trace
            .reviewers()
            .iter()
            .filter(|r| r.class.is_malicious())
            .map(|r| r.id)
            .collect(),
        SuspectSource::Estimated { threshold } => estimates.suspected(threshold),
    };
    let collusion = cluster_collusive(trace, &suspected);

    let excluded: BTreeSet<_> = suspected.iter().copied().collect();
    let consensus = ConsensusMap::build_excluding(trace, &excluded);
    let weights =
        FeedbackWeights::compute(trace, &consensus, &estimates, &collusion, config.weights);

    DetectionResult {
        consensus,
        estimates,
        suspected,
        collusion,
        weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcc_trace::{SyntheticConfig, WorkerClass};

    #[test]
    fn pipeline_produces_ordered_class_weights() {
        let trace = SyntheticConfig::small(61).generate();
        let result = run_pipeline(&trace, PipelineConfig::default());
        let mean = |class| {
            result
                .weights
                .mean_over(&trace.workers_of_class(class))
                .expect("class nonempty")
        };
        let honest = mean(WorkerClass::Honest);
        let ncm = mean(WorkerClass::NonCollusiveMalicious);
        let cm = mean(WorkerClass::CollusiveMalicious);
        assert!(honest > ncm, "honest {honest} <= ncm {ncm}");
        assert!(ncm > cm, "ncm {ncm} <= cm {cm}");
    }

    #[test]
    fn ground_truth_mode_recovers_campaigns_exactly() {
        let trace = SyntheticConfig::small(73).generate();
        let result = run_pipeline(&trace, PipelineConfig::default());
        assert_eq!(result.collusion.communities.len(), trace.campaigns().len());
        assert_eq!(
            result.collusion.collusive_worker_count(),
            trace.workers_of_class(WorkerClass::CollusiveMalicious).len()
        );
        assert_eq!(
            result.collusion.singletons.len(),
            trace
                .workers_of_class(WorkerClass::NonCollusiveMalicious)
                .len()
        );
    }

    #[test]
    fn refined_consensus_reduces_collusive_accuracy() {
        let trace = SyntheticConfig::small(67).generate();
        let raw = ConsensusMap::build(&trace);
        let result = run_pipeline(&trace, PipelineConfig::default());
        let ids = trace.workers_of_class(WorkerClass::CollusiveMalicious);
        let mean_dev = |cm: &ConsensusMap| {
            let devs: Vec<f64> = ids
                .iter()
                .filter_map(|&id| cm.accuracy_deviation(&trace, id))
                .collect();
            devs.iter().sum::<f64>() / devs.len() as f64
        };
        let before = mean_dev(&raw);
        let after = mean_dev(&result.consensus);
        assert!(
            after >= before,
            "refinement should expose collusive bias: {after} < {before}"
        );
    }

    #[test]
    fn estimated_mode_catches_most_non_collusive_malicious() {
        // The heuristic estimator (LOO deviation + extremity) should flag
        // most NCM workers, whose bias is exposed once their own review is
        // left out of the consensus.
        let trace = SyntheticConfig::small(73).generate();
        let result = run_pipeline(
            &trace,
            PipelineConfig {
                suspects: SuspectSource::Estimated { threshold: 0.5 },
                ..PipelineConfig::default()
            },
        );
        let suspected: BTreeSet<_> = result.suspected.iter().copied().collect();
        let ncm = trace.workers_of_class(WorkerClass::NonCollusiveMalicious);
        let recall =
            ncm.iter().filter(|id| suspected.contains(id)).count() as f64 / ncm.len() as f64;
        assert!(recall > 0.6, "ncm recall {recall} too low");
        // False-positive rate on honest workers stays moderate.
        let honest = trace.workers_of_class(WorkerClass::Honest);
        let fpr = honest.iter().filter(|id| suspected.contains(id)).count() as f64
            / honest.len() as f64;
        assert!(fpr < 0.35, "honest false-positive rate {fpr} too high");
    }
}
