use dcc_graph::{connected_components, Bipartite};
use dcc_trace::{ReviewerId, TraceDataset};
use std::collections::BTreeMap;

/// The Table II size buckets: `2, 3, 4, 5, 6, ≥10` (sizes 7–9 never occur
/// in the paper's trace; they are folded into the `≥10` bucket here only
/// if they appear, and reported separately by
/// [`CollusionReport::size_histogram`]).
pub const SIZE_BUCKETS: [usize; 6] = [2, 3, 4, 5, 6, 10];

/// Result of clustering suspected malicious workers into collusive
/// communities (§IV-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollusionReport {
    /// Communities with at least two members, each sorted ascending,
    /// ordered by smallest member.
    pub communities: Vec<Vec<ReviewerId>>,
    /// Suspected workers that share no target with any other suspect —
    /// treated as non-collusive malicious workers downstream.
    pub singletons: Vec<ReviewerId>,
}

impl CollusionReport {
    /// Assembles a report from raw member groups (connected components in
    /// any order, members in any order): groups of ≥2 become communities
    /// (sorted ascending, ordered by smallest member), size-1 groups
    /// become singletons — the exact normalization of
    /// [`cluster_collusive`], shared with incremental callers that track
    /// components via [`dcc_graph::UnionFind`] instead of DFS.
    pub fn from_member_groups(groups: Vec<Vec<ReviewerId>>) -> Self {
        let mut communities = Vec::new();
        let mut singletons = Vec::new();
        for mut members in groups {
            members.sort_unstable();
            if members.len() >= 2 {
                communities.push(members);
            } else {
                singletons.extend(members);
            }
        }
        communities.sort_by_key(|c| c.first().copied());
        singletons.sort_unstable();
        CollusionReport {
            communities,
            singletons,
        }
    }

    /// Total number of workers placed in communities.
    pub fn collusive_worker_count(&self) -> usize {
        self.communities.iter().map(Vec::len).sum()
    }

    /// The number of collusion partners (`A_i` of Eq. 5) for every worker
    /// in the input set: community size − 1, or 0 for singletons.
    pub fn partner_counts(&self) -> BTreeMap<ReviewerId, usize> {
        let mut map = BTreeMap::new();
        for c in &self.communities {
            for &m in c {
                map.insert(m, c.len() - 1);
            }
        }
        for &s in &self.singletons {
            map.insert(s, 0);
        }
        map
    }

    /// Community-size histogram over the Table II buckets, as
    /// `(bucket label, count)`; the final bucket aggregates sizes ≥ 7
    /// (displayed as "≥10" to match the paper, whose trace had no 7–9
    /// sized communities).
    pub fn size_histogram(&self) -> Vec<(String, usize)> {
        let mut counts = [0usize; 6];
        for c in &self.communities {
            match c.len() {
                2 => counts[0] += 1,
                3 => counts[1] += 1,
                4 => counts[2] += 1,
                5 => counts[3] += 1,
                6 => counts[4] += 1,
                _ => counts[5] += 1,
            }
        }
        vec![
            ("2".into(), counts[0]),
            ("3".into(), counts[1]),
            ("4".into(), counts[2]),
            ("5".into(), counts[3]),
            ("6".into(), counts[4]),
            (">=10".into(), counts[5]),
        ]
    }

    /// The same histogram as percentages of the community count.
    pub fn size_percentages(&self) -> Vec<(String, f64)> {
        let total = self.communities.len().max(1) as f64;
        self.size_histogram()
            .into_iter()
            .map(|(label, count)| (label, 100.0 * count as f64 / total))
            .collect()
    }
}

/// Clusters `suspected` malicious workers into collusive communities:
/// two suspects are collusive iff they reviewed the same product, and a
/// community is a connected component of that relation (§IV-A).
///
/// Implementation: restrict the worker↔product bipartite graph to the
/// suspects, project onto workers, and take connected components via
/// iterative DFS — linear in the number of suspect reviews.
pub fn cluster_collusive(trace: &TraceDataset, suspected: &[ReviewerId]) -> CollusionReport {
    // Dense re-indexing of the suspect set.
    let mut dense: BTreeMap<ReviewerId, usize> = BTreeMap::new();
    for (i, &w) in suspected.iter().enumerate() {
        dense.insert(w, i);
    }

    let mut bipartite = Bipartite::new(suspected.len(), trace.products().len());
    for (&worker, &slot) in &dense {
        for review in trace.reviews_by(worker) {
            let in_range = bipartite.add_edge(slot, review.product.index());
            debug_assert!(in_range.is_ok(), "slot and product are in range by construction");
        }
    }

    let projected = bipartite.project_left();
    let groups: Vec<Vec<ReviewerId>> = connected_components(&projected)
        .into_iter()
        .map(|component| component.iter().map(|&s| suspected[s]).collect())
        .collect();
    CollusionReport::from_member_groups(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcc_trace::{SyntheticConfig, WorkerClass};

    /// Ground-truth clustering: feeding the exact malicious set must
    /// recover exactly the generator's campaigns.
    #[test]
    fn recovers_ground_truth_campaigns() {
        let trace = SyntheticConfig::small(29).generate();
        let mut suspected = trace.workers_of_class(WorkerClass::NonCollusiveMalicious);
        suspected.extend(trace.workers_of_class(WorkerClass::CollusiveMalicious));

        let report = cluster_collusive(&trace, &suspected);

        // Every ground-truth campaign appears as one community.
        assert_eq!(report.communities.len(), trace.campaigns().len());
        let mut expected: Vec<Vec<ReviewerId>> = trace
            .campaigns()
            .iter()
            .map(|c| {
                let mut m = c.members.clone();
                m.sort_unstable();
                m
            })
            .collect();
        expected.sort_by_key(|c| c[0]);
        assert_eq!(report.communities, expected);

        // All NCM workers are singletons.
        assert_eq!(
            report.singletons.len(),
            trace.workers_of_class(WorkerClass::NonCollusiveMalicious).len()
        );
    }

    #[test]
    fn empty_suspect_set() {
        let trace = SyntheticConfig::small(29).generate();
        let report = cluster_collusive(&trace, &[]);
        assert!(report.communities.is_empty());
        assert!(report.singletons.is_empty());
        assert_eq!(report.collusive_worker_count(), 0);
    }

    #[test]
    fn partner_counts_match_community_sizes() {
        let trace = SyntheticConfig::small(37).generate();
        let suspected = trace.workers_of_class(WorkerClass::CollusiveMalicious);
        let report = cluster_collusive(&trace, &suspected);
        let partners = report.partner_counts();
        for c in &report.communities {
            for m in c {
                assert_eq!(partners[m], c.len() - 1);
            }
        }
        for s in &report.singletons {
            assert_eq!(partners[s], 0);
        }
    }

    #[test]
    fn histogram_counts_all_communities() {
        let trace = SyntheticConfig::small(41).generate();
        let suspected = trace.workers_of_class(WorkerClass::CollusiveMalicious);
        let report = cluster_collusive(&trace, &suspected);
        let hist = report.size_histogram();
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, report.communities.len());
        let pct = report.size_percentages();
        let pct_total: f64 = pct.iter().map(|(_, p)| p).sum();
        assert!((pct_total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn size_two_bucket_dominates_at_scale() {
        // Match the Table II shape: bucket "2" is the majority.
        let mut cfg = SyntheticConfig::small(53);
        cfg.n_cm_target = 150;
        cfg.n_products = 3000;
        let trace = cfg.generate();
        let suspected = trace.workers_of_class(WorkerClass::CollusiveMalicious);
        let report = cluster_collusive(&trace, &suspected);
        let hist = report.size_histogram();
        let two = hist[0].1;
        assert!(hist.iter().all(|(_, c)| *c <= two), "size-2 must dominate: {hist:?}");
    }
}
