use crate::{CollusionReport, ConsensusMap, MaliciousEstimates};
use dcc_trace::{ReviewerId, TraceDataset};

/// Coefficients of the feedback-weight formula (Eq. 5):
/// `w_i = ρ / |l_i − l̄| − κ·e_mal − γ·A_i`.
///
/// The defaults are the paper's §V setting: `κ = γ = 0.1`, with `ρ = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightParams {
    /// Accuracy coefficient ρ.
    pub rho: f64,
    /// Malicious-probability penalty κ.
    pub kappa: f64,
    /// Partner-count penalty γ.
    pub gamma: f64,
    /// Floor applied to the accuracy deviation so perfectly accurate
    /// workers get a large finite weight instead of a division by zero.
    pub min_deviation: f64,
    /// Cap applied to the accuracy term `ρ/|l_i − l̄|` so the weight stays
    /// bounded.
    pub max_accuracy_term: f64,
}

impl Default for WeightParams {
    fn default() -> Self {
        WeightParams {
            rho: 1.0,
            kappa: 0.1,
            gamma: 0.1,
            min_deviation: 0.25,
            max_accuracy_term: 4.0,
        }
    }
}

/// Per-worker feedback weights `w_i` (Eq. 5), indexed by
/// [`ReviewerId::index`].
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackWeights {
    weights: Vec<f64>,
}

impl FeedbackWeights {
    /// Computes Eq. 5 for every worker in the trace.
    ///
    /// - the accuracy term uses the worker's mean *leave-one-out*
    ///   deviation from the consensus — a worker's own review must not
    ///   vouch for itself on thinly-reviewed products — floored by
    ///   [`WeightParams::min_deviation`] and capped by
    ///   [`WeightParams::max_accuracy_term`]. Workers with no LOO-covered
    ///   review fall back to the plain deviation, then to a neutral
    ///   deviation of 1 star,
    /// - `e_mal` comes from `estimates`,
    /// - `A_i` comes from `collusion` (0 for workers outside the report).
    pub fn compute(
        trace: &TraceDataset,
        consensus: &ConsensusMap,
        estimates: &MaliciousEstimates,
        collusion: &CollusionReport,
        params: WeightParams,
    ) -> Self {
        let partners = collusion.partner_counts();
        let weights = trace
            .reviewers()
            .iter()
            .map(|r| {
                Self::compute_one(trace, consensus, estimates.e_mal(r.id), &partners, params, r.id)
            })
            .collect();
        FeedbackWeights { weights }
    }

    /// Eq. 5 for one worker — the per-worker computation behind
    /// [`FeedbackWeights::compute`], exposed so an incremental caller can
    /// recompute only workers whose inputs (reviews, reviewed products'
    /// refined consensus, `e_mal`, partner count) changed and still match
    /// the batch weight bit-for-bit. `e_mal` is the worker's estimate
    /// (`None` falls back to the neutral 0.5); `partners` is
    /// [`CollusionReport::partner_counts`].
    pub fn compute_one(
        trace: &TraceDataset,
        consensus: &ConsensusMap,
        e_mal: Option<f64>,
        partners: &std::collections::BTreeMap<ReviewerId, usize>,
        params: WeightParams,
        worker: ReviewerId,
    ) -> f64 {
        let deviation = consensus
            .accuracy_deviation_loo(trace, worker)
            .or_else(|| consensus.accuracy_deviation(trace, worker))
            .unwrap_or(1.0)
            .max(params.min_deviation);
        let accuracy_term = (params.rho / deviation).min(params.max_accuracy_term);
        let e_mal = e_mal.unwrap_or(0.5);
        let a_i = partners.get(&worker).copied().unwrap_or(0) as f64;
        accuracy_term - params.kappa * e_mal - params.gamma * a_i
    }

    /// Wraps per-worker weights already indexed by [`ReviewerId::index`]
    /// — the constructor for incremental callers maintaining the vector
    /// themselves.
    pub fn from_values(weights: Vec<f64>) -> Self {
        FeedbackWeights { weights }
    }

    /// The weight for one worker, or `None` for an unknown id.
    pub fn weight(&self, worker: ReviewerId) -> Option<f64> {
        self.weights.get(worker.index()).copied()
    }

    /// Overrides one worker's weight in place, returning `false` for an
    /// unknown id. Any value is accepted, including non-finite ones —
    /// fault-injection harnesses use this to model corrupted detection
    /// output and exercise downstream degraded-mode handling.
    pub fn set_weight(&mut self, worker: ReviewerId, weight: f64) -> bool {
        match self.weights.get_mut(worker.index()) {
            Some(w) => {
                *w = weight;
                true
            }
            None => false,
        }
    }

    /// All weights, indexed by worker.
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }

    /// Mean weight over a set of workers (used for per-class reporting).
    pub fn mean_over(&self, workers: &[ReviewerId]) -> Option<f64> {
        if workers.is_empty() {
            return None;
        }
        let total: f64 = workers.iter().filter_map(|&w| self.weight(w)).sum();
        Some(total / workers.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster_collusive, MaliciousDetector};
    use dcc_trace::{SyntheticConfig, WorkerClass};

    fn pipeline() -> (dcc_trace::TraceDataset, FeedbackWeights) {
        // Two-pass flow: raw consensus for estimates, refined
        // (suspect-excluded) consensus for the weights.
        let trace = SyntheticConfig::small(61).generate();
        let raw = ConsensusMap::build(&trace);
        let estimates = MaliciousDetector::default().estimate(&trace, &raw);
        let mut suspected = trace.workers_of_class(WorkerClass::NonCollusiveMalicious);
        suspected.extend(trace.workers_of_class(WorkerClass::CollusiveMalicious));
        let collusion = cluster_collusive(&trace, &suspected);
        let excluded: std::collections::BTreeSet<_> = suspected.iter().copied().collect();
        let consensus = ConsensusMap::build_excluding(&trace, &excluded);
        let weights = FeedbackWeights::compute(
            &trace,
            &consensus,
            &estimates,
            &collusion,
            WeightParams::default(),
        );
        (trace, weights)
    }

    #[test]
    fn weights_cover_every_worker_and_are_bounded() {
        let (trace, weights) = pipeline();
        assert_eq!(weights.as_slice().len(), trace.reviewers().len());
        let p = WeightParams::default();
        for &w in weights.as_slice() {
            assert!(w <= p.max_accuracy_term);
            assert!(w.is_finite());
        }
    }

    #[test]
    fn class_ordering_honest_ncm_cm() {
        // The key premise behind Fig. 8(b): honest weights exceed
        // non-collusive malicious weights, which exceed collusive ones.
        let (trace, weights) = pipeline();
        let mean = |class| {
            weights
                .mean_over(&trace.workers_of_class(class))
                .expect("class nonempty")
        };
        let honest = mean(WorkerClass::Honest);
        let ncm = mean(WorkerClass::NonCollusiveMalicious);
        let cm = mean(WorkerClass::CollusiveMalicious);
        assert!(honest > ncm, "honest {honest} <= ncm {ncm}");
        assert!(ncm > cm, "ncm {ncm} <= cm {cm}");
    }

    #[test]
    fn unknown_worker_weight_is_none() {
        let (_, weights) = pipeline();
        assert_eq!(weights.weight(ReviewerId(usize::MAX - 1)), None);
        assert_eq!(weights.mean_over(&[]), None);
    }

    #[test]
    fn partner_penalty_reduces_weight() {
        // Two identical parameter sets except gamma: larger gamma must not
        // increase any collusive worker's weight.
        let trace = SyntheticConfig::small(71).generate();
        let consensus = ConsensusMap::build(&trace);
        let estimates = MaliciousDetector::default().estimate(&trace, &consensus);
        let suspected = trace.workers_of_class(WorkerClass::CollusiveMalicious);
        let collusion = cluster_collusive(&trace, &suspected);
        let base = WeightParams::default();
        let harsh = WeightParams {
            gamma: 0.5,
            ..base
        };
        let w_base =
            FeedbackWeights::compute(&trace, &consensus, &estimates, &collusion, base);
        let w_harsh =
            FeedbackWeights::compute(&trace, &consensus, &estimates, &collusion, harsh);
        for id in trace.workers_of_class(WorkerClass::CollusiveMalicious) {
            assert!(w_harsh.weight(id).unwrap() < w_base.weight(id).unwrap());
        }
        // Honest workers (no partners) are untouched by gamma.
        for id in trace.workers_of_class(WorkerClass::Honest).iter().take(20) {
            assert_eq!(w_harsh.weight(*id), w_base.weight(*id));
        }
    }
}
