use dcc_trace::{ProductId, ReviewerId, TraceDataset};
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy, Default)]
struct ProductConsensus {
    /// Consensus mean, if the product has any usable reviews.
    mean: Option<f64>,
    /// Sum and count of the star scores behind the crowd fallback
    /// (enables leave-one-out adjustment).
    crowd_sum: f64,
    crowd_count: usize,
    expert_backed: bool,
}

impl ProductConsensus {
    /// Bitwise equality — the change detector of the incremental path,
    /// where "changed" must mean "any downstream consumer could observe
    /// a different f64".
    fn same_bits(&self, other: &ProductConsensus) -> bool {
        self.mean.map(f64::to_bits) == other.mean.map(f64::to_bits)
            && self.crowd_sum.to_bits() == other.crowd_sum.to_bits()
            && self.crowd_count == other.crowd_count
            && self.expert_backed == other.expert_backed
    }
}

/// The per-product computation shared by the batch
/// [`ConsensusMap::build_excluding`] and the incremental
/// [`ConsensusMap::recompute_product`]: expert mean takes precedence,
/// else the crowd mean of non-excluded reviews (falling back to the
/// unfiltered crowd mean when exclusion would empty the product).
fn product_consensus(
    trace: &TraceDataset,
    pid: ProductId,
    excluded: &BTreeSet<ReviewerId>,
) -> ProductConsensus {
    let mut slot = ProductConsensus::default();
    if let Some(expert_mean) = trace.expert_consensus(pid) {
        slot.mean = Some(expert_mean);
        slot.expert_backed = true;
        return slot;
    }
    let reviews = trace.reviews_for(pid);
    if reviews.is_empty() {
        return slot;
    }
    let trusted: Vec<f64> = reviews
        .iter()
        .filter(|r| !excluded.contains(&r.reviewer))
        .map(|r| r.stars)
        .collect();
    let scores: Vec<f64> = if trusted.is_empty() {
        reviews.iter().map(|r| r.stars).collect()
    } else {
        trusted
    };
    slot.crowd_sum = scores.iter().sum();
    slot.crowd_count = scores.len();
    slot.mean = Some(slot.crowd_sum / slot.crowd_count as f64);
    slot
}

/// Per-product "ground truth" review scores `l̄` (§II).
///
/// The paper defines `l̄` as the average review of *experts* — workers
/// whose accuracy and endorsements exceed system thresholds. Products no
/// expert has reviewed fall back to the crowd mean of all their reviews
/// (a weaker consensus, flagged by [`ConsensusMap::is_expert_backed`]).
#[derive(Debug, Clone)]
pub struct ConsensusMap {
    products: Vec<ProductConsensus>,
}

impl ConsensusMap {
    /// Builds the consensus for every product of `trace`.
    pub fn build(trace: &TraceDataset) -> Self {
        Self::build_excluding(trace, &BTreeSet::new())
    }

    /// Builds the consensus while excluding reviews by `excluded` workers
    /// from the crowd fallback — the second pass of robust estimation,
    /// where suspects identified in a first pass no longer pollute `l̄`.
    ///
    /// Expert reviews always take precedence. If excluding suspects would
    /// leave a product with no reviews at all, the unfiltered crowd mean
    /// is used (better a weak consensus than none).
    pub fn build_excluding(trace: &TraceDataset, excluded: &BTreeSet<ReviewerId>) -> Self {
        let n = trace.products().len();
        let mut products = vec![ProductConsensus::default(); n];
        for (i, slot) in products.iter_mut().enumerate() {
            *slot = product_consensus(trace, ProductId(i), excluded);
        }
        ConsensusMap { products }
    }

    /// An empty map covering `n` products, none of which has a consensus
    /// yet. The starting point for incremental maintenance via
    /// [`ConsensusMap::recompute_product`].
    pub fn with_products(n: usize) -> Self {
        ConsensusMap {
            products: vec![ProductConsensus::default(); n],
        }
    }

    /// Number of product slots.
    pub fn products_len(&self) -> usize {
        self.products.len()
    }

    /// Extends the map with empty slots up to `n` products (no-op if the
    /// map already covers that many).
    pub fn grow_products(&mut self, n: usize) {
        if n > self.products.len() {
            self.products.resize(n, ProductConsensus::default());
        }
    }

    /// Recomputes one product's consensus slot from the trace — the exact
    /// per-product computation of [`ConsensusMap::build_excluding`], so a
    /// map maintained by recomputing only *dirty* products (products with
    /// new reviews) is bit-identical to a full rebuild. Returns `true` if
    /// the slot's value changed.
    pub fn recompute_product(
        &mut self,
        trace: &TraceDataset,
        product: ProductId,
        excluded: &BTreeSet<ReviewerId>,
    ) -> bool {
        self.grow_products(product.index() + 1);
        let fresh = product_consensus(trace, product, excluded);
        let slot = &mut self.products[product.index()];
        let changed = !slot.same_bits(&fresh);
        *slot = fresh;
        changed
    }

    /// The consensus score `l̄` for a product, or `None` if the product
    /// has no reviews at all.
    pub fn consensus(&self, product: ProductId) -> Option<f64> {
        self.products.get(product.index()).and_then(|p| p.mean)
    }

    /// `true` iff the consensus came from expert reviews rather than the
    /// crowd fallback.
    pub fn is_expert_backed(&self, product: ProductId) -> bool {
        self.products
            .get(product.index())
            .map(|p| p.expert_backed)
            .unwrap_or(false)
    }

    /// The consensus for `product` with one crowd review of score `stars`
    /// removed (leave-one-out). Expert-backed consensus is unaffected;
    /// removing the only crowd review yields `None`.
    pub fn consensus_without(&self, product: ProductId, stars: f64) -> Option<f64> {
        let p = self.products.get(product.index())?;
        if p.expert_backed {
            return p.mean;
        }
        if p.crowd_count <= 1 {
            return None;
        }
        Some((p.crowd_sum - stars) / (p.crowd_count - 1) as f64)
    }

    /// Mean absolute deviation of a worker's review scores from the
    /// consensus, over all their reviews with a defined consensus — the
    /// `|l_i − l̄|` accuracy term of Eq. 5. `None` if the worker has no
    /// reviews on consensus-covered products.
    pub fn accuracy_deviation(&self, trace: &TraceDataset, worker: ReviewerId) -> Option<f64> {
        self.deviation_impl(trace, worker, false)
    }

    /// Like [`ConsensusMap::accuracy_deviation`], but each review is
    /// compared against the *leave-one-out* consensus (the review itself
    /// removed from the crowd mean), which stops a worker's own review
    /// from masking its bias. Used by the malicious-probability estimator.
    pub fn accuracy_deviation_loo(&self, trace: &TraceDataset, worker: ReviewerId) -> Option<f64> {
        self.deviation_impl(trace, worker, true)
    }

    fn deviation_impl(
        &self,
        trace: &TraceDataset,
        worker: ReviewerId,
        leave_one_out: bool,
    ) -> Option<f64> {
        let mut total = 0.0;
        let mut n = 0usize;
        for review in trace.reviews_by(worker) {
            let consensus = if leave_one_out {
                self.consensus_without(review.product, review.stars)
            } else {
                self.consensus(review.product)
            };
            if let Some(c) = consensus {
                total += (review.stars - c).abs();
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(total / n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcc_trace::{SyntheticConfig, WorkerClass};

    #[test]
    fn every_reviewed_product_has_consensus() {
        let trace = SyntheticConfig::small(8).generate();
        let cm = ConsensusMap::build(&trace);
        for r in trace.reviews() {
            assert!(cm.consensus(r.product).is_some());
        }
    }

    #[test]
    fn unreviewed_product_has_no_consensus() {
        let trace = SyntheticConfig::small(8).generate();
        let cm = ConsensusMap::build(&trace);
        let unreviewed = trace
            .products()
            .iter()
            .find(|p| trace.reviews_for(p.id).is_empty())
            .expect("small config leaves products unreviewed");
        assert_eq!(cm.consensus(unreviewed.id), None);
        assert!(!cm.is_expert_backed(unreviewed.id));
    }

    #[test]
    fn consensus_tracks_true_quality() {
        let trace = SyntheticConfig::small(13).generate();
        let cm = ConsensusMap::build(&trace);
        let mut err = 0.0;
        let mut n = 0;
        for p in trace.products() {
            if cm.is_expert_backed(p.id) {
                err += (cm.consensus(p.id).unwrap() - p.true_quality).abs();
                n += 1;
            }
        }
        assert!(n > 0, "expert coverage expected");
        assert!((err / n as f64) < 1.0, "expert consensus far from truth");
    }

    #[test]
    fn malicious_deviate_more_than_honest() {
        let trace = SyntheticConfig::small(5).generate();
        let cm = ConsensusMap::build(&trace);
        let mean_dev = |class| {
            let ids = trace.workers_of_class(class);
            let devs: Vec<f64> = ids
                .iter()
                .filter_map(|&id| cm.accuracy_deviation(&trace, id))
                .collect();
            devs.iter().sum::<f64>() / devs.len() as f64
        };
        let honest = mean_dev(WorkerClass::Honest);
        let ncm = mean_dev(WorkerClass::NonCollusiveMalicious);
        assert!(
            ncm > honest + 0.3,
            "ncm deviation {ncm} should exceed honest {honest}"
        );
    }

    #[test]
    fn leave_one_out_exposes_lone_bias() {
        // A worker whose review is half of a 2-review crowd mean hides its
        // bias; the LOO deviation must be at least the plain deviation on
        // average for malicious workers.
        let trace = SyntheticConfig::small(5).generate();
        let cm = ConsensusMap::build(&trace);
        let ids = trace.workers_of_class(WorkerClass::NonCollusiveMalicious);
        let (mut plain, mut loo, mut n) = (0.0, 0.0, 0usize);
        for id in ids {
            if let (Some(p), Some(l)) = (
                cm.accuracy_deviation(&trace, id),
                cm.accuracy_deviation_loo(&trace, id),
            ) {
                plain += p;
                loo += l;
                n += 1;
            }
        }
        assert!(n > 0);
        assert!(loo / n as f64 >= plain / n as f64);
    }

    #[test]
    fn consensus_without_on_expert_backed_is_unchanged() {
        let trace = SyntheticConfig::small(13).generate();
        let cm = ConsensusMap::build(&trace);
        let expert_product = trace
            .products()
            .iter()
            .find(|p| cm.is_expert_backed(p.id))
            .expect("expert coverage expected");
        assert_eq!(
            cm.consensus_without(expert_product.id, 5.0),
            cm.consensus(expert_product.id)
        );
    }

    #[test]
    fn excluding_suspects_shifts_consensus() {
        let trace = SyntheticConfig::small(5).generate();
        let raw = ConsensusMap::build(&trace);
        let excluded: BTreeSet<_> = trace
            .workers_of_class(WorkerClass::CollusiveMalicious)
            .into_iter()
            .chain(trace.workers_of_class(WorkerClass::NonCollusiveMalicious))
            .collect();
        let refined = ConsensusMap::build_excluding(&trace, &excluded);
        // On some malicious-targeted product with honest contrast reviews
        // the consensus must move down (malicious bias removed).
        let mut moved = 0usize;
        for p in trace.products() {
            if let (Some(a), Some(b)) = (raw.consensus(p.id), refined.consensus(p.id)) {
                if b < a - 0.05 {
                    moved += 1;
                }
            }
        }
        assert!(moved > 0, "refinement should move some product consensus");
    }

    #[test]
    fn accuracy_deviation_none_for_unknown_worker() {
        let trace = SyntheticConfig::small(5).generate();
        let cm = ConsensusMap::build(&trace);
        assert_eq!(cm.accuracy_deviation(&trace, ReviewerId(usize::MAX - 1)), None);
    }
}
