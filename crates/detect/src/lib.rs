//! # dcc-detect
//!
//! Detection substrate for the `dyncontract` workspace.
//!
//! The contract design of the paper consumes three estimated quantities
//! per worker (§II, Eq. 5):
//!
//! 1. the *accuracy* of the worker's reviews relative to the expert
//!    consensus `l̄` ([`ConsensusMap`]),
//! 2. the probability `e_mal` that the worker is malicious
//!    ([`MaliciousDetector`], standing in for the ML detectors the paper
//!    cites as \[14\]\[15\]),
//! 3. the number of collusion partners `A_i`, obtained by clustering
//!    suspected malicious workers that target the same product into
//!    communities ([`cluster_collusive`], §IV-A).
//!
//! [`FeedbackWeights`] combines the three into the requester's
//! feedback weights `w_i = ρ/|l_i − l̄| − κ·e_mal − γ·A_i`.
//!
//! ## Example
//!
//! ```
//! use dcc_detect::{cluster_collusive, ConsensusMap, MaliciousDetector};
//! use dcc_trace::SyntheticConfig;
//!
//! let trace = SyntheticConfig::small(1).generate();
//! let consensus = ConsensusMap::build(&trace);
//! let estimates = MaliciousDetector::default().estimate(&trace, &consensus);
//! let suspected = estimates.suspected(0.5);
//! let report = cluster_collusive(&trace, &suspected);
//! assert!(report.communities.len() + report.singletons.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collusion;
mod consensus;
mod malicious;
mod pipeline;
mod weights;

pub use collusion::{cluster_collusive, CollusionReport, SIZE_BUCKETS};
pub use consensus::ConsensusMap;
pub use malicious::{MaliciousDetector, MaliciousEstimates};
pub use pipeline::{run_pipeline, DetectionResult, PipelineConfig, SuspectSource};
pub use weights::{FeedbackWeights, WeightParams};
