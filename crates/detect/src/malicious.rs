use crate::ConsensusMap;
use dcc_trace::{ReviewerId, TraceDataset};

/// Estimated probability of maliciousness for every worker in a trace.
///
/// Index by [`ReviewerId::index`]; values are in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MaliciousEstimates {
    e_mal: Vec<f64>,
}

impl MaliciousEstimates {
    /// Wraps per-worker estimates already indexed by
    /// [`ReviewerId::index`] — the constructor for incremental callers
    /// that maintain the vector themselves (recomputing only dirty
    /// workers via [`MaliciousDetector::estimate_one`]).
    pub fn from_values(e_mal: Vec<f64>) -> Self {
        MaliciousEstimates { e_mal }
    }

    /// The estimate for one worker, or `None` if the id is unknown.
    pub fn e_mal(&self, worker: ReviewerId) -> Option<f64> {
        self.e_mal.get(worker.index()).copied()
    }

    /// All estimates, indexed by worker.
    pub fn as_slice(&self) -> &[f64] {
        &self.e_mal
    }

    /// Workers whose estimate is at least `threshold` — the suspected
    /// malicious set fed to the §IV-A clustering.
    pub fn suspected(&self, threshold: f64) -> Vec<ReviewerId> {
        self.e_mal
            .iter()
            .enumerate()
            .filter(|(_, &p)| p >= threshold)
            .map(|(i, _)| ReviewerId(i))
            .collect()
    }
}

/// Heuristic estimator of the probability that a worker is malicious —
/// the stand-in for the machine-learned detectors the paper cites
/// (\[14\], \[15\]): the contract algorithm only needs an `e_mal ∈ [0,1]`
/// per worker, however produced.
///
/// The estimate combines two signals through a logistic squash:
///
/// - **accuracy deviation**: mean `|l_i − l̄|` against the consensus
///   (malicious reviews are systematically biased), and
/// - **rating extremity**: the fraction of a worker's ratings at the
///   5-star ceiling (paid campaigns push maximal ratings).
///
/// # Example
///
/// ```
/// use dcc_detect::{ConsensusMap, MaliciousDetector};
/// use dcc_trace::SyntheticConfig;
///
/// let trace = SyntheticConfig::small(2).generate();
/// let consensus = ConsensusMap::build(&trace);
/// let est = MaliciousDetector::default().estimate(&trace, &consensus);
/// assert!(est.as_slice().iter().all(|p| (0.0..=1.0).contains(p)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaliciousDetector {
    /// Deviation (in stars) at which the deviation signal alone yields
    /// `e_mal = 0.5`.
    pub deviation_midpoint: f64,
    /// Logistic steepness of the deviation signal.
    pub deviation_gain: f64,
    /// Weight of the rating-extremity signal relative to deviation.
    pub extremity_weight: f64,
}

impl Default for MaliciousDetector {
    fn default() -> Self {
        MaliciousDetector {
            deviation_midpoint: 1.0,
            deviation_gain: 3.0,
            extremity_weight: 0.5,
        }
    }
}

impl MaliciousDetector {
    /// Estimates `e_mal` for every worker.
    ///
    /// Workers without any consensus-covered review receive `0.5`
    /// (maximally uncertain).
    pub fn estimate(&self, trace: &TraceDataset, consensus: &ConsensusMap) -> MaliciousEstimates {
        let e_mal = trace
            .reviewers()
            .iter()
            .map(|r| self.estimate_one(trace, consensus, r.id))
            .collect();
        MaliciousEstimates { e_mal }
    }

    /// Estimates `e_mal` for one worker — the per-worker computation
    /// behind [`MaliciousDetector::estimate`], exposed so an incremental
    /// caller can recompute only workers whose reviews (or whose reviewed
    /// products' consensus) changed and still match the batch estimate
    /// bit-for-bit.
    pub fn estimate_one(
        &self,
        trace: &TraceDataset,
        consensus: &ConsensusMap,
        worker: ReviewerId,
    ) -> f64 {
        // Leave-one-out deviation stops a worker's own review from
        // masking its bias on thin products.
        let dev = match consensus.accuracy_deviation_loo(trace, worker) {
            Some(d) => d,
            None => return 0.5,
        };
        let reviews = trace.reviews_by(worker);
        let extreme = if reviews.is_empty() {
            0.0
        } else {
            reviews.iter().filter(|rv| rv.stars >= 4.75).count() as f64 / reviews.len() as f64
        };
        let z = self.deviation_gain * (dev - self.deviation_midpoint)
            + self.extremity_weight * self.deviation_gain * (extreme - 0.5);
        logistic(z)
    }

    /// Classification accuracy of thresholding the estimates at
    /// `threshold` against the trace's ground-truth labels. Used by tests
    /// and the experiment harness to report detector quality.
    pub fn label_accuracy(
        &self,
        trace: &TraceDataset,
        estimates: &MaliciousEstimates,
        threshold: f64,
    ) -> f64 {
        let mut correct = 0usize;
        for r in trace.reviewers() {
            let predicted = estimates.e_mal(r.id).unwrap_or(0.5) >= threshold;
            if predicted == r.class.is_malicious() {
                correct += 1;
            }
        }
        correct as f64 / trace.reviewers().len().max(1) as f64
    }
}

fn logistic(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcc_trace::{SyntheticConfig, WorkerClass};

    fn setup() -> (dcc_trace::TraceDataset, MaliciousEstimates) {
        let trace = SyntheticConfig::small(19).generate();
        let consensus = ConsensusMap::build(&trace);
        let est = MaliciousDetector::default().estimate(&trace, &consensus);
        (trace, est)
    }

    #[test]
    fn estimates_are_probabilities() {
        let (_, est) = setup();
        assert!(est.as_slice().iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn malicious_scored_higher_on_average() {
        let (trace, est) = setup();
        let mean_for = |class: WorkerClass| {
            let ids = trace.workers_of_class(class);
            ids.iter()
                .map(|id| est.e_mal(*id).unwrap())
                .sum::<f64>()
                / ids.len() as f64
        };
        let honest = mean_for(WorkerClass::Honest);
        let ncm = mean_for(WorkerClass::NonCollusiveMalicious);
        let cm = mean_for(WorkerClass::CollusiveMalicious);
        assert!(ncm > honest + 0.2, "ncm {ncm} vs honest {honest}");
        assert!(cm > honest + 0.2, "cm {cm} vs honest {honest}");
    }

    #[test]
    fn detector_beats_chance_clearly() {
        let (trace, est) = setup();
        let acc = MaliciousDetector::default().label_accuracy(&trace, &est, 0.5);
        assert!(acc > 0.75, "accuracy {acc} too low");
    }

    #[test]
    fn suspected_set_thresholds() {
        let (_, est) = setup();
        let all = est.suspected(0.0);
        let none = est.suspected(1.01);
        assert_eq!(all.len(), est.as_slice().len());
        assert!(none.is_empty());
        let mid = est.suspected(0.5);
        assert!(mid.len() < all.len());
    }

    #[test]
    fn unknown_worker_is_none() {
        let (_, est) = setup();
        assert_eq!(est.e_mal(ReviewerId(usize::MAX - 1)), None);
    }
}
