//! Property tests of the detection substrate.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_detect::{
    cluster_collusive, run_pipeline, ConsensusMap, FeedbackWeights, MaliciousDetector,
    PipelineConfig, SuspectSource, WeightParams,
};
use dcc_trace::{ReviewerId, SyntheticConfig};
use proptest::prelude::*;

fn trace_for(seed: u64) -> dcc_trace::TraceDataset {
    let mut cfg = SyntheticConfig::small(seed);
    cfg.n_honest = 60;
    cfg.n_ncm = 12;
    cfg.n_cm_target = 12;
    cfg.n_products = 500;
    cfg.generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Estimates are probabilities and the suspected set shrinks
    /// monotonically with the threshold.
    #[test]
    fn estimates_and_threshold_monotonicity(seed in 0u64..40, t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        let trace = trace_for(seed);
        let consensus = ConsensusMap::build(&trace);
        let est = MaliciousDetector::default().estimate(&trace, &consensus);
        prop_assert!(est.as_slice().iter().all(|p| (0.0..=1.0).contains(p)));
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let at_lo = est.suspected(lo).len();
        let at_hi = est.suspected(hi).len();
        prop_assert!(at_hi <= at_lo, "suspects must shrink with threshold");
    }

    /// Clustering partitions the suspect set: every suspect appears in
    /// exactly one community or as a singleton.
    #[test]
    fn clustering_partitions_suspects(seed in 0u64..40, frac in 0.1f64..1.0) {
        let trace = trace_for(seed);
        let n = trace.reviewers().len();
        let take = ((n as f64 * frac) as usize).max(1);
        let suspected: Vec<ReviewerId> =
            (0..n).step_by((n / take).max(1)).map(ReviewerId).collect();
        let report = cluster_collusive(&trace, &suspected);
        let mut seen: Vec<ReviewerId> = report
            .communities
            .iter()
            .flatten()
            .copied()
            .chain(report.singletons.iter().copied())
            .collect();
        seen.sort_unstable();
        let mut expected = suspected.clone();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
        for c in &report.communities {
            prop_assert!(c.len() >= 2);
        }
    }

    /// Weights respect the accuracy cap and respond monotonically to the
    /// penalty coefficients.
    #[test]
    fn weights_bounded_and_monotone_in_penalties(
        seed in 0u64..40,
        kappa in 0.0f64..0.5,
        gamma in 0.0f64..0.5,
    ) {
        let trace = trace_for(seed);
        let consensus = ConsensusMap::build(&trace);
        let est = MaliciousDetector::default().estimate(&trace, &consensus);
        let suspected = est.suspected(0.5);
        let collusion = cluster_collusive(&trace, &suspected);
        let base = WeightParams { kappa, gamma, ..WeightParams::default() };
        let weights = FeedbackWeights::compute(&trace, &consensus, &est, &collusion, base);
        for &w in weights.as_slice() {
            prop_assert!(w.is_finite());
            prop_assert!(w <= base.max_accuracy_term + 1e-12);
        }
        // Raising kappa can only lower weights.
        let harsher = WeightParams { kappa: kappa + 0.2, ..base };
        let w2 = FeedbackWeights::compute(&trace, &consensus, &est, &collusion, harsher);
        for (a, b) in weights.as_slice().iter().zip(w2.as_slice()) {
            prop_assert!(*b <= *a + 1e-12);
        }
    }

    /// The ground-truth pipeline always recovers the generator's
    /// campaigns exactly.
    #[test]
    fn ground_truth_pipeline_exact(seed in 0u64..40) {
        let trace = trace_for(seed);
        let result = run_pipeline(&trace, PipelineConfig::default());
        prop_assert_eq!(result.collusion.communities.len(), trace.campaigns().len());
        let mut expected: Vec<Vec<ReviewerId>> = trace
            .campaigns()
            .iter()
            .map(|c| {
                let mut m = c.members.clone();
                m.sort_unstable();
                m
            })
            .collect();
        expected.sort_by_key(|c| c[0]);
        prop_assert_eq!(&result.collusion.communities, &expected);
    }

    /// The estimated pipeline is well-formed at any threshold.
    #[test]
    fn estimated_pipeline_wellformed(seed in 0u64..20, threshold in 0.05f64..0.95) {
        let trace = trace_for(seed);
        let result = run_pipeline(
            &trace,
            PipelineConfig {
                suspects: SuspectSource::Estimated { threshold },
                ..PipelineConfig::default()
            },
        );
        prop_assert_eq!(result.weights.as_slice().len(), trace.reviewers().len());
        let in_communities: usize = result.collusion.communities.iter().map(Vec::len).sum();
        prop_assert_eq!(
            in_communities + result.collusion.singletons.len(),
            result.suspected.len()
        );
    }
}
