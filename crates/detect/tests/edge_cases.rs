//! Detection edge cases around degenerate community structure — the
//! shapes the adversarial generator (`dcc-trace`) produces at the
//! extremes: a campaign with a single member, a campaign dissolved by a
//! merge, and a trace where *every* worker belongs to one campaign.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_detect::{cluster_collusive, run_pipeline, PipelineConfig};
use dcc_trace::{
    AdversarialConfig, AdversaryPlan, Campaign, CommunityMerge, Product, ProductId, Review,
    Reviewer, ReviewerId, SyntheticConfig, TraceDataset, WorkerClass,
};

fn product(id: usize, quality: f64) -> Product {
    Product {
        id: ProductId(id),
        true_quality: quality,
    }
}

fn reviewer(
    id: usize,
    class: WorkerClass,
    campaign: Option<usize>,
    is_expert: bool,
) -> Reviewer {
    Reviewer {
        id: ReviewerId(id),
        class,
        campaign,
        is_expert,
    }
}

fn review(worker: usize, product: usize, round: usize, stars: f64, upvotes: f64) -> Review {
    Review {
        reviewer: ReviewerId(worker),
        product: ProductId(product),
        round,
        stars,
        length_chars: 100,
        upvotes,
    }
}

/// A campaign with exactly one member must not be reported as a
/// community (communities have ≥ 2 members); its member is still
/// suspected and lands in the singleton list with a finite weight.
#[test]
fn singleton_campaign_member_is_a_singleton_not_a_community() {
    let products = vec![product(0, 3.0), product(1, 4.0)];
    let reviewers = vec![
        reviewer(0, WorkerClass::Honest, None, true),
        reviewer(1, WorkerClass::Honest, None, true),
        reviewer(2, WorkerClass::Honest, None, false),
        reviewer(3, WorkerClass::CollusiveMalicious, Some(0), false),
    ];
    let reviews = vec![
        review(0, 0, 0, 3.0, 4.0),
        review(0, 1, 0, 4.0, 4.0),
        review(1, 0, 0, 3.0, 3.0),
        review(1, 1, 0, 4.0, 5.0),
        review(2, 0, 0, 3.0, 2.0),
        review(3, 0, 0, 5.0, 6.0),
        review(3, 1, 0, 5.0, 6.0),
    ];
    let campaigns = vec![Campaign {
        id: 0,
        members: vec![ReviewerId(3)],
        targets: vec![ProductId(0), ProductId(1)],
    }];
    let trace = TraceDataset::new(products, reviewers, reviews, campaigns).unwrap();

    let result = run_pipeline(&trace, PipelineConfig::default());
    assert_eq!(result.suspected, vec![ReviewerId(3)]);
    assert!(
        result.collusion.communities.is_empty(),
        "a one-member campaign is not a community: {:?}",
        result.collusion.communities
    );
    assert_eq!(result.collusion.singletons, vec![ReviewerId(3)]);
    assert_eq!(result.weights.as_slice().len(), 4);
    assert!(result.weights.as_slice().iter().all(|w| w.is_finite()));
}

/// A community dissolved by an adversarial merge disappears entirely:
/// the surviving campaigns are renumbered densely, and ground-truth
/// detection recovers exactly those — never the dissolved id.
#[test]
fn dissolved_community_vanishes_from_detection() {
    let base = {
        let mut cfg = SyntheticConfig::small(29);
        cfg.n_cm_target = 60;
        cfg
    };
    let before = base.generate();
    let n_before = before.campaigns().len();
    assert!(n_before >= 2, "base must have at least two campaigns");

    let plan = AdversaryPlan {
        seed: 5,
        merges: vec![CommunityMerge {
            first: 0,
            second: 1,
            round: 1,
        }],
        ..AdversaryPlan::default()
    };
    let merged = AdversarialConfig { base, plan }.generate().unwrap();
    assert_eq!(
        merged.campaigns().len(),
        n_before - 1,
        "the absorbed campaign dissolves"
    );

    let result = run_pipeline(&merged, PipelineConfig::default());
    assert_eq!(result.collusion.communities.len(), merged.campaigns().len());
    let mut expected: Vec<Vec<ReviewerId>> = merged
        .campaigns()
        .iter()
        .map(|c| {
            let mut m = c.members.clone();
            m.sort_unstable();
            m
        })
        .collect();
    expected.sort_by_key(|c| c[0]);
    assert_eq!(result.collusion.communities, expected);
}

/// Every worker in one campaign, no honest workers, no experts: the
/// pipeline must stay total — one community containing everyone, no
/// singletons, finite weights — even with an empty expert consensus.
#[test]
fn all_workers_in_one_campaign_is_one_community() {
    let n = 6usize;
    let products = vec![product(0, 2.0), product(1, 4.0)];
    let reviewers: Vec<Reviewer> = (0..n)
        .map(|i| reviewer(i, WorkerClass::CollusiveMalicious, Some(0), false))
        .collect();
    let reviews: Vec<Review> = (0..n)
        .flat_map(|i| {
            [
                review(i, 0, 0, 5.0, 5.0),
                review(i, 1, 0, 5.0, 5.0),
            ]
        })
        .collect();
    let campaigns = vec![Campaign {
        id: 0,
        members: (0..n).map(ReviewerId).collect(),
        targets: vec![ProductId(0), ProductId(1)],
    }];
    let trace = TraceDataset::new(products, reviewers, reviews, campaigns).unwrap();

    let result = run_pipeline(&trace, PipelineConfig::default());
    assert_eq!(result.suspected.len(), n, "everyone is suspected");
    assert_eq!(result.collusion.communities.len(), 1);
    assert_eq!(result.collusion.communities[0].len(), n);
    assert!(result.collusion.singletons.is_empty());
    assert!(result.weights.as_slice().iter().all(|w| w.is_finite()));
}

/// Direct clustering of an empty suspect set on a trace with campaigns:
/// nothing to cluster, nothing reported.
#[test]
fn empty_suspect_set_clusters_to_nothing() {
    let trace = SyntheticConfig::small(31).generate();
    let report = cluster_collusive(&trace, &[]);
    assert!(report.communities.is_empty());
    assert!(report.singletons.is_empty());
}
