//! Property tests of the labeling extension.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_label::aggregate::{majority, weighted_majority};
use dcc_label::{simulate_round, AccuracyCurve, Label, LabelWorker, RoundConfig, WorkerRole};
use proptest::prelude::*;

fn label_vec(max_len: usize) -> impl Strategy<Value = Vec<Label>> {
    proptest::collection::vec(any::<bool>().prop_map(Label::from_bool), 1..max_len)
}

proptest! {
    /// Flipping a Zero ballot to One can never flip the majority from One
    /// to Zero (monotonicity).
    #[test]
    fn majority_is_monotone(labels in label_vec(25), idx in 0usize..25) {
        let idx = idx % labels.len();
        let before = majority(&labels).unwrap();
        let mut flipped = labels.clone();
        if flipped[idx] == Label::Zero {
            flipped[idx] = Label::One;
            let after = majority(&flipped).unwrap();
            prop_assert!(!(before == Label::One && after == Label::Zero));
        }
    }

    /// Weighted majority with equal positive weights equals the plain
    /// majority.
    #[test]
    fn equal_weights_reduce_to_plain(labels in label_vec(25), w in 0.1f64..10.0) {
        let weights = vec![w; labels.len()];
        prop_assert_eq!(weighted_majority(&labels, &weights), majority(&labels));
    }

    /// Zero-weighting a ballot is the same as removing it.
    #[test]
    fn zero_weight_is_removal(labels in label_vec(20)) {
        prop_assume!(labels.len() >= 2);
        let mut weights = vec![1.0; labels.len()];
        weights[0] = 0.0;
        let without: Vec<Label> = labels[1..].to_vec();
        prop_assert_eq!(
            weighted_majority(&labels, &weights),
            majority(&without)
        );
    }

    /// The accuracy curve stays inside [0.5, ceiling) and is monotone.
    #[test]
    fn accuracy_curve_bounds(
        p_max in 0.51f64..1.0,
        rate in 0.01f64..3.0,
        y1 in 0.0f64..20.0,
        y2 in 0.0f64..20.0,
    ) {
        let c = AccuracyCurve::new(p_max, rate).unwrap();
        let (lo, hi) = if y1 <= y2 { (y1, y2) } else { (y2, y1) };
        let p_lo = c.accuracy(lo);
        let p_hi = c.accuracy(hi);
        prop_assert!(p_lo >= 0.5 - 1e-12);
        prop_assert!(p_hi < p_max + 1e-12);
        prop_assert!(p_hi >= p_lo - 1e-12, "accuracy must be monotone");
    }

    /// Round simulation invariants: agreement counts bounded by items,
    /// aggregate length matches, determinism per seed.
    #[test]
    fn round_invariants(
        n_workers in 1usize..12,
        n_items in 1usize..80,
        seed in 0u64..500,
        effort in 0.0f64..8.0,
    ) {
        let workers: Vec<LabelWorker> = (0..n_workers)
            .map(|id| LabelWorker {
                id,
                curve: AccuracyCurve::new(0.9, 0.4).unwrap(),
                role: if id % 4 == 3 {
                    WorkerRole::Adversarial { flip_rate: 0.5 }
                } else {
                    WorkerRole::Diligent
                },
            })
            .collect();
        let efforts = vec![effort; n_workers];
        let cfg = RoundConfig { n_items, seed };
        let a = simulate_round(&workers, &efforts, cfg);
        prop_assert_eq!(a.aggregate.len(), n_items);
        prop_assert_eq!(a.agreements.len(), n_workers);
        for &agr in &a.agreements {
            prop_assert!(agr >= 0.0 && agr <= n_items as f64);
        }
        prop_assert!((0.0..=1.0).contains(&a.aggregate_accuracy));
        let b = simulate_round(&workers, &efforts, cfg);
        prop_assert_eq!(a, b);
    }
}
