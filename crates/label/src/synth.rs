use crate::aggregate::aggregate_majority;
use crate::{Item, Label, LabelWorker, LabelingRound, WorkerRole};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one simulated labeling round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundConfig {
    /// Number of items in the batch.
    pub n_items: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoundConfig {
    fn default() -> Self {
        RoundConfig {
            n_items: 101,
            seed: 3,
        }
    }
}

/// Simulates one labeling round: each worker labels every item with the
/// accuracy its effort buys (role-modified), the platform aggregates by
/// majority vote, and per-worker agreement feedback is computed.
///
/// `efforts[w]` is worker `w`'s effort this round.
///
/// # Panics
///
/// Panics if `efforts.len() != workers.len()` (caller contract).
pub fn simulate_round(
    workers: &[LabelWorker],
    efforts: &[f64],
    config: RoundConfig,
) -> LabelingRound {
    assert_eq!(
        workers.len(),
        efforts.len(),
        "one effort level per worker required"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    let items: Vec<Item> = (0..config.n_items)
        .map(|id| Item {
            id,
            truth: Label::from_bool(rng.gen::<bool>()),
        })
        .collect();

    let labels: Vec<Vec<Label>> = workers
        .iter()
        .zip(efforts)
        .map(|(worker, &effort)| {
            items
                .iter()
                .map(|item| worker_label(worker, effort, item.truth, &mut rng))
                .collect()
        })
        .collect();

    let aggregate = aggregate_majority(&labels, config.n_items);
    let agreements: Vec<f64> = labels
        .iter()
        .map(|worker_labels| {
            worker_labels
                .iter()
                .zip(&aggregate)
                .filter(|(l, a)| l == a)
                .count() as f64
        })
        .collect();
    let correct = aggregate
        .iter()
        .zip(&items)
        .filter(|(a, item)| **a == item.truth)
        .count();

    LabelingRound {
        efforts: efforts.to_vec(),
        labels,
        aggregate,
        agreements,
        aggregate_accuracy: correct as f64 / config.n_items.max(1) as f64,
    }
}

/// One worker's label for one item.
fn worker_label(worker: &LabelWorker, effort: f64, truth: Label, rng: &mut StdRng) -> Label {
    match worker.role {
        WorkerRole::Spammer => Label::One,
        WorkerRole::Diligent => perceive(worker, effort, truth, rng),
        WorkerRole::Adversarial { flip_rate } => {
            let believed = perceive(worker, effort, truth, rng);
            if rng.gen::<f64>() < flip_rate {
                believed.flipped()
            } else {
                believed
            }
        }
    }
}

/// What the worker believes the label is, given its accuracy at `effort`.
fn perceive(worker: &LabelWorker, effort: f64, truth: Label, rng: &mut StdRng) -> Label {
    if rng.gen::<f64>() < worker.curve.accuracy(effort) {
        truth
    } else {
        truth.flipped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccuracyCurve;

    fn diligent(id: usize) -> LabelWorker {
        LabelWorker {
            id,
            curve: AccuracyCurve::new(0.95, 0.6).unwrap(),
            role: WorkerRole::Diligent,
        }
    }

    #[test]
    fn round_shapes_are_consistent() {
        let workers: Vec<LabelWorker> = (0..7).map(diligent).collect();
        let efforts = vec![3.0; 7];
        let round = simulate_round(&workers, &efforts, RoundConfig::default());
        assert_eq!(round.labels.len(), 7);
        assert_eq!(round.aggregate.len(), 101);
        assert_eq!(round.agreements.len(), 7);
        assert!(round.agreements.iter().all(|&a| a <= 101.0));
        assert!((0.0..=1.0).contains(&round.aggregate_accuracy));
    }

    #[test]
    fn effort_raises_aggregate_accuracy() {
        let workers: Vec<LabelWorker> = (0..9).map(diligent).collect();
        let lazy = simulate_round(&workers, &[0.0; 9], RoundConfig::default());
        let hard = simulate_round(&workers, &[6.0; 9], RoundConfig::default());
        assert!(
            hard.aggregate_accuracy > lazy.aggregate_accuracy + 0.1,
            "hard {} vs lazy {}",
            hard.aggregate_accuracy,
            lazy.aggregate_accuracy
        );
        // At zero effort everyone is a coin flip; accuracy near 0.5.
        assert!((lazy.aggregate_accuracy - 0.5).abs() < 0.25);
    }

    #[test]
    fn agreement_rises_with_own_effort() {
        // A worker exerting more effort agrees with the (good) aggregate
        // more often.
        let mut workers: Vec<LabelWorker> = (0..11).map(diligent).collect();
        workers[0].id = 0;
        let mut low = vec![5.0; 11];
        low[0] = 0.2;
        let mut high = vec![5.0; 11];
        high[0] = 6.0;
        let round_low = simulate_round(&workers, &low, RoundConfig::default());
        let round_high = simulate_round(&workers, &high, RoundConfig::default());
        assert!(
            round_high.agreements[0] > round_low.agreements[0],
            "high {} vs low {}",
            round_high.agreements[0],
            round_low.agreements[0]
        );
    }

    #[test]
    fn spammers_answer_constant_one() {
        let workers = vec![LabelWorker {
            id: 0,
            curve: AccuracyCurve::new(0.9, 1.0).unwrap(),
            role: WorkerRole::Spammer,
        }];
        let round = simulate_round(&workers, &[9.0], RoundConfig::default());
        assert!(round.labels[0].iter().all(|&l| l == Label::One));
    }

    #[test]
    fn adversaries_degrade_aggregate() {
        let honest: Vec<LabelWorker> = (0..9).map(diligent).collect();
        let mut poisoned = honest.clone();
        for w in poisoned.iter_mut().take(4) {
            w.role = WorkerRole::Adversarial { flip_rate: 1.0 };
        }
        let cfg = RoundConfig {
            n_items: 201,
            seed: 5,
        };
        let clean = simulate_round(&honest, &[5.0; 9], cfg);
        let dirty = simulate_round(&poisoned, &[5.0; 9], cfg);
        assert!(
            dirty.aggregate_accuracy < clean.aggregate_accuracy,
            "dirty {} vs clean {}",
            dirty.aggregate_accuracy,
            clean.aggregate_accuracy
        );
    }

    #[test]
    fn determinism_per_seed() {
        let workers: Vec<LabelWorker> = (0..5).map(diligent).collect();
        let a = simulate_round(&workers, &[2.0; 5], RoundConfig::default());
        let b = simulate_round(&workers, &[2.0; 5], RoundConfig::default());
        assert_eq!(a, b);
    }
}
