use std::fmt;

/// Errors produced by the labeling extension.
#[derive(Debug)]
pub enum LabelError {
    /// A configuration value was outside its valid domain.
    InvalidConfig(String),
    /// Failure propagated from the contract core.
    Core(dcc_core::CoreError),
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            LabelError::Core(e) => write!(f, "contract core error: {e}"),
        }
    }
}

impl std::error::Error for LabelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LabelError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dcc_core::CoreError> for LabelError {
    fn from(e: dcc_core::CoreError) -> Self {
        LabelError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = LabelError::InvalidConfig("batch must be odd".into());
        assert_eq!(e.to_string(), "invalid configuration: batch must be odd");
        let c = LabelError::from(dcc_core::CoreError::InvalidParams("x".into()));
        assert!(c.source().is_some());
    }
}
