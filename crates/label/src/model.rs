use crate::AccuracyCurve;
use std::fmt;

/// A binary label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The negative class.
    Zero,
    /// The positive class.
    One,
}

impl Label {
    /// The opposite label.
    pub fn flipped(self) -> Label {
        match self {
            Label::Zero => Label::One,
            Label::One => Label::Zero,
        }
    }

    /// Converts from a boolean (`true` ⇒ [`Label::One`]).
    pub fn from_bool(b: bool) -> Label {
        if b {
            Label::One
        } else {
            Label::Zero
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Zero => f.write_str("0"),
            Label::One => f.write_str("1"),
        }
    }
}

/// An item to be labeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item {
    /// Dense identifier.
    pub id: usize,
    /// Ground-truth label (hidden from workers and the aggregator).
    pub truth: Label,
}

/// The behavioural role of a labeling worker — the heterogeneity of §II
/// transplanted to classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerRole {
    /// Labels as accurately as its effort allows.
    Diligent,
    /// Adversarial: with probability `flip_rate`, reports the *opposite*
    /// of what it believes, to corrupt the aggregate.
    Adversarial {
        /// Probability of deliberately flipping a label.
        flip_rate: f64,
    },
    /// Lazy spammer: ignores the item and answers [`Label::One`] always
    /// (effort-independent).
    Spammer,
}

/// A labeling worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelWorker {
    /// Dense identifier.
    pub id: usize,
    /// How accuracy responds to effort.
    pub curve: AccuracyCurve,
    /// Behavioural role.
    pub role: WorkerRole,
}

/// The outcome of one labeling round for one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelingRound {
    /// Effort each worker exerted, indexed by worker.
    pub efforts: Vec<f64>,
    /// `labels[w][i]` = worker `w`'s label for item `i`.
    pub labels: Vec<Vec<Label>>,
    /// The aggregated label per item.
    pub aggregate: Vec<Label>,
    /// Per-worker agreement counts with the aggregate (the *feedback*
    /// signal, analogous to upvotes).
    pub agreements: Vec<f64>,
    /// Fraction of items whose aggregate matches the ground truth.
    pub aggregate_accuracy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_flip_and_bool() {
        assert_eq!(Label::Zero.flipped(), Label::One);
        assert_eq!(Label::One.flipped(), Label::Zero);
        assert_eq!(Label::from_bool(true), Label::One);
        assert_eq!(Label::from_bool(false), Label::Zero);
        assert_eq!(Label::One.to_string(), "1");
    }
}
