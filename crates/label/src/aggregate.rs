//! Label aggregation: plain and weighted majority voting.

use crate::Label;

/// Majority vote over one item's labels; ties break to [`Label::One`]
/// (deterministic, documented).
///
/// Returns `None` for an empty ballot.
pub fn majority(labels: &[Label]) -> Option<Label> {
    if labels.is_empty() {
        return None;
    }
    let ones = labels.iter().filter(|&&l| l == Label::One).count();
    let zeros = labels.len() - ones;
    Some(if ones >= zeros { Label::One } else { Label::Zero })
}

/// Weighted majority vote: each ballot carries a weight (e.g. estimated
/// worker accuracy); ties break to [`Label::One`]. Negative weights are
/// clamped to 0.
///
/// Returns `None` for an empty ballot or all-zero weights.
pub fn weighted_majority(labels: &[Label], weights: &[f64]) -> Option<Label> {
    if labels.is_empty() || labels.len() != weights.len() {
        return None;
    }
    let mut one_mass = 0.0;
    let mut zero_mass = 0.0;
    for (&l, &w) in labels.iter().zip(weights) {
        let w = w.max(0.0);
        match l {
            Label::One => one_mass += w,
            Label::Zero => zero_mass += w,
        }
    }
    if one_mass <= 0.0 && zero_mass <= 0.0 {
        return None;
    }
    Some(if one_mass >= zero_mass {
        Label::One
    } else {
        Label::Zero
    })
}

/// Aggregates every item of a ballot matrix (`labels[w][i]`) by plain
/// majority. Items with no ballots are skipped (the output has one label
/// per item index that received at least one ballot; callers with dense
/// matrices get one per item).
pub fn aggregate_majority(labels: &[Vec<Label>], n_items: usize) -> Vec<Label> {
    (0..n_items)
        .map(|i| {
            let ballots: Vec<Label> = labels
                .iter()
                .filter_map(|worker_labels| worker_labels.get(i).copied())
                .collect();
            majority(&ballots).unwrap_or(Label::One)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_basic_and_tie() {
        assert_eq!(
            majority(&[Label::One, Label::One, Label::Zero]),
            Some(Label::One)
        );
        assert_eq!(
            majority(&[Label::Zero, Label::Zero, Label::One]),
            Some(Label::Zero)
        );
        assert_eq!(majority(&[Label::Zero, Label::One]), Some(Label::One));
        assert_eq!(majority(&[]), None);
    }

    #[test]
    fn weighted_majority_respects_weights() {
        let labels = [Label::One, Label::Zero, Label::Zero];
        assert_eq!(
            weighted_majority(&labels, &[5.0, 1.0, 1.0]),
            Some(Label::One)
        );
        assert_eq!(
            weighted_majority(&labels, &[1.0, 1.0, 1.1]),
            Some(Label::Zero)
        );
        // Negative weights clamp to zero rather than invert.
        assert_eq!(
            weighted_majority(&labels, &[1.0, -5.0, 0.5]),
            Some(Label::One)
        );
        assert_eq!(weighted_majority(&labels, &[0.0, 0.0, 0.0]), None);
        assert_eq!(weighted_majority(&labels, &[1.0]), None);
        assert_eq!(weighted_majority(&[], &[]), None);
    }

    #[test]
    fn aggregate_matrix() {
        let labels = vec![
            vec![Label::One, Label::Zero],
            vec![Label::One, Label::Zero],
            vec![Label::Zero, Label::One],
        ];
        assert_eq!(aggregate_majority(&labels, 2), vec![Label::One, Label::Zero]);
    }
}
