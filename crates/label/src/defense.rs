use crate::aggregate::weighted_majority;
use crate::{simulate_round, AccuracyCurve, LabelError, LabelWorker, RoundConfig, WorkerRole};

/// Configuration of the adversarial-labeling defense experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseConfig {
    /// Number of diligent workers.
    pub n_diligent: usize,
    /// Number of adversarial workers (always-flip).
    pub n_adversarial: usize,
    /// Items per round.
    pub n_items: usize,
    /// Calibration rounds used to estimate per-worker reliability.
    pub calibration_rounds: usize,
    /// Evaluation rounds.
    pub eval_rounds: usize,
    /// Effort every worker exerts (the defense question is orthogonal to
    /// incentives, so efforts are held fixed).
    pub effort: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            n_diligent: 12,
            n_adversarial: 8,
            n_items: 151,
            calibration_rounds: 4,
            eval_rounds: 6,
            effort: 5.0,
            seed: 17,
        }
    }
}

/// Result of the defense comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseReport {
    /// Mean accuracy of the plain majority vote under attack.
    pub plain_accuracy: f64,
    /// Mean accuracy of the reliability-weighted majority vote.
    pub weighted_accuracy: f64,
    /// The estimated per-worker reliability weights used.
    pub weights: Vec<f64>,
}

/// Compares plain majority voting against reliability-weighted voting
/// under an adversarial labeling attack.
///
/// Reliability is estimated from calibration rounds as each worker's
/// excess agreement with the plain-majority aggregate
/// (`agreement_rate − 0.5`, clamped at 0): always-flipping adversaries
/// agree with the aggregate *less* than chance and are driven to weight
/// 0 — the same devaluation principle as the paper's Eq. 5, expressed in
/// labeling terms.
///
/// # Errors
///
/// Returns [`LabelError::InvalidConfig`] for degenerate configurations.
pub fn run_defense(config: DefenseConfig) -> Result<DefenseReport, LabelError> {
    if config.n_diligent == 0 || config.n_items == 0 || config.eval_rounds == 0 {
        return Err(LabelError::InvalidConfig(
            "need diligent workers, items and eval rounds".into(),
        ));
    }
    if config.n_adversarial >= config.n_diligent {
        return Err(LabelError::InvalidConfig(
            "an adversarial majority makes any vote hopeless".into(),
        ));
    }
    let curve = AccuracyCurve::new(0.95, 0.3)?;
    let mut workers: Vec<LabelWorker> = (0..config.n_diligent)
        .map(|id| LabelWorker {
            id,
            curve,
            role: WorkerRole::Diligent,
        })
        .collect();
    for id in config.n_diligent..config.n_diligent + config.n_adversarial {
        workers.push(LabelWorker {
            id,
            curve,
            role: WorkerRole::Adversarial { flip_rate: 0.9 },
        });
    }
    let efforts = vec![config.effort; workers.len()];

    // --- Calibration: estimate reliability from agreement rates --------
    let mut agreement_total = vec![0.0; workers.len()];
    for round in 0..config.calibration_rounds {
        let outcome = simulate_round(
            &workers,
            &efforts,
            RoundConfig {
                n_items: config.n_items,
                seed: config.seed.wrapping_add(round as u64),
            },
        );
        for (acc, agr) in agreement_total.iter_mut().zip(&outcome.agreements) {
            *acc += agr / config.n_items as f64;
        }
    }
    let weights: Vec<f64> = agreement_total
        .iter()
        .map(|total| (total / config.calibration_rounds.max(1) as f64 - 0.5).max(0.0))
        .collect();

    // --- Evaluation: plain vs weighted aggregation ----------------------
    let mut plain_total = 0.0;
    let mut weighted_total = 0.0;
    for round in 0..config.eval_rounds {
        let outcome = simulate_round(
            &workers,
            &efforts,
            RoundConfig {
                n_items: config.n_items,
                seed: config.seed.wrapping_add(10_000 + round as u64),
            },
        );
        plain_total += outcome.aggregate_accuracy;

        // Re-aggregate the same ballots with reliability weights; ground
        // truth per item is recovered deterministically from the round's
        // seed (the simulator draws item truths first).
        let round_seed = config.seed.wrapping_add(10_000 + round as u64);
        let mut correct = 0usize;
        for item in 0..config.n_items {
            let ballots: Vec<crate::Label> =
                outcome.labels.iter().map(|wl| wl[item]).collect();
            let verdict =
                weighted_majority(&ballots, &weights).unwrap_or(crate::Label::One);
            if verdict == item_truth(config.n_items, round_seed, item) {
                correct += 1;
            }
        }
        weighted_total += correct as f64 / config.n_items as f64;
    }

    Ok(DefenseReport {
        plain_accuracy: plain_total / config.eval_rounds as f64,
        weighted_accuracy: weighted_total / config.eval_rounds as f64,
        weights,
    })
}

/// Reproduces the ground-truth label the round simulator drew for `item`
/// (the simulator's item truths are the first `n_items` boolean draws of
/// its seeded RNG).
fn item_truth(n_items: usize, seed: u64, item: usize) -> crate::Label {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut truth = crate::Label::Zero;
    for i in 0..n_items {
        let draw = crate::Label::from_bool(rng.gen::<bool>());
        if i == item {
            truth = draw;
            break;
        }
    }
    truth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_vote_defends_against_adversaries() {
        let report = run_defense(DefenseConfig::default()).unwrap();
        assert!(
            report.weighted_accuracy > report.plain_accuracy + 0.03,
            "weighted {} vs plain {}",
            report.weighted_accuracy,
            report.plain_accuracy
        );
        // Adversaries' reliability weights collapse toward 0.
        let cfg = DefenseConfig::default();
        let adv_mean: f64 = report.weights[cfg.n_diligent..].iter().sum::<f64>()
            / cfg.n_adversarial as f64;
        let dil_mean: f64 =
            report.weights[..cfg.n_diligent].iter().sum::<f64>() / cfg.n_diligent as f64;
        assert!(
            adv_mean < 0.5 * dil_mean,
            "adversaries {adv_mean} should be downweighted vs diligent {dil_mean}"
        );
    }

    #[test]
    fn degenerate_configs_rejected() {
        assert!(run_defense(DefenseConfig {
            n_diligent: 0,
            ..DefenseConfig::default()
        })
        .is_err());
        assert!(run_defense(DefenseConfig {
            n_adversarial: 50,
            ..DefenseConfig::default()
        })
        .is_err());
    }

    #[test]
    fn item_truth_matches_simulator() {
        // The reproduced truths must agree with a round's internal truth
        // bookkeeping: a perfect-accuracy solo worker's labels are the
        // truths themselves.
        let workers = vec![LabelWorker {
            id: 0,
            curve: AccuracyCurve::new(0.999999, 50.0).unwrap(),
            role: WorkerRole::Diligent,
        }];
        let cfg = RoundConfig {
            n_items: 30,
            seed: 77,
        };
        let outcome = simulate_round(&workers, &[100.0], cfg);
        for item in 0..30 {
            assert_eq!(
                outcome.labels[0][item],
                item_truth(30, 77, item),
                "item {item} truth mismatch"
            );
        }
    }
}
