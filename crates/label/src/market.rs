use crate::{simulate_round, AccuracyCurve, LabelError, LabelWorker, RoundConfig, WorkerRole};
use dcc_core::{
    best_response, fit_effort_function, ContractBuilder, Discretization, ModelParams,
};

/// Configuration of the labeling market experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketConfig {
    /// Number of diligent workers.
    pub n_workers: usize,
    /// Items per labeling round (odd avoids aggregate ties).
    pub n_items: usize,
    /// Calibration rounds used to fit the effort→agreement response.
    pub calibration_rounds: usize,
    /// Evaluation rounds under each pricing scheme.
    pub eval_rounds: usize,
    /// Model parameters for the contract design (ω is ignored — labeling
    /// workers here are diligent, the honest case).
    pub params: ModelParams,
    /// Effort intervals of the designed contracts.
    pub intervals: usize,
    /// The requester's per-worker feedback weight.
    pub weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            n_workers: 15,
            n_items: 101,
            calibration_rounds: 8,
            eval_rounds: 6,
            params: ModelParams {
                // Agreement feedback is on the items-per-batch scale
                // (~100), so a unit weight against mu = 1 leaves room for
                // an interior optimum.
                mu: 1.0,
                omega: 0.0,
                ..ModelParams::default()
            },
            intervals: 20,
            weight: 0.25,
            seed: 11,
        }
    }
}

/// Outcome of the labeling-market comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketReport {
    /// Mean aggregate accuracy under the designed dynamic contracts.
    pub contract_accuracy: f64,
    /// Mean aggregate accuracy under a fixed payment of the same total
    /// spend.
    pub fixed_accuracy: f64,
    /// Mean per-round spend under the contracts.
    pub contract_spend: f64,
    /// Mean effort the contracts induce.
    pub mean_effort: f64,
    /// The fitted effort→agreement response.
    pub fitted_psi: dcc_numerics::Quadratic,
    /// Number of calibration observation points used for the fit.
    pub fit_points: usize,
}

/// The end-to-end labeling market: calibrate, fit, design, evaluate.
///
/// The §IV pipeline transplanted to classification:
///
/// 1. **Calibrate** — run labeling rounds with exploratory effort levels
///    spread over the effort range, collecting `(effort, agreement)`
///    observations (the classification analogue of §IV-B's fitting data).
/// 2. **Fit** — least-squares quadratic, as Eq. 19.
/// 3. **Design** — the §IV-C candidate algorithm on the fitted response.
/// 4. **Evaluate** — workers best-respond to their contracts; measure
///    majority-vote accuracy and spend, against a fixed payment of equal
///    spend (under which a rational diligent worker exerts no effort).
#[derive(Debug, Clone)]
pub struct LabelMarket {
    config: MarketConfig,
}

impl LabelMarket {
    /// Creates a market with the given configuration.
    pub fn new(config: MarketConfig) -> Self {
        LabelMarket { config }
    }

    /// Runs the comparison.
    ///
    /// # Errors
    ///
    /// Returns [`LabelError::InvalidConfig`] for degenerate configs and
    /// propagates fitting/design failures.
    pub fn run(&self) -> Result<MarketReport, LabelError> {
        let c = &self.config;
        if c.n_workers == 0 || c.n_items == 0 || c.calibration_rounds < 3 || c.eval_rounds == 0
        {
            return Err(LabelError::InvalidConfig(
                "need workers, items, >=3 calibration rounds and >=1 eval round".into(),
            ));
        }

        let default_curve = AccuracyCurve::new(0.95, 0.2)?;
        let workers: Vec<LabelWorker> = (0..c.n_workers)
            .map(|id| LabelWorker {
                id,
                curve: default_curve,
                role: WorkerRole::Diligent,
            })
            .collect();

        // --- 1. Calibration with spread-out efforts --------------------
        let y_probe_max = 8.0;
        let mut points: Vec<(f64, f64)> = Vec::new();
        for round in 0..c.calibration_rounds {
            let efforts: Vec<f64> = (0..c.n_workers)
                .map(|w| {
                    let slot = (round * c.n_workers + w) % 16;
                    y_probe_max * (slot as f64 + 0.5) / 16.0
                })
                .collect();
            let outcome = simulate_round(
                &workers,
                &efforts,
                RoundConfig {
                    n_items: c.n_items,
                    seed: c.seed.wrapping_add(round as u64),
                },
            );
            points.extend(efforts.iter().copied().zip(outcome.agreements));
        }

        // --- 2. Fit (Eq. 19 analogue) -----------------------------------
        let fit = fit_effort_function(&points)?;

        // --- 3. Design ---------------------------------------------------
        let peak = fit.psi.peak().unwrap_or(y_probe_max);
        let disc = Discretization::covering(c.intervals, (0.9 * peak).min(y_probe_max))?;
        let built = ContractBuilder::new(c.params, disc, fit.psi)
            .honest()
            .weight(c.weight)
            .build()?;
        let response = best_response(&c.params.for_honest(), &fit.psi, built.contract())?;
        let induced_effort = response.effort;
        let spend_per_worker = response.compensation;

        // --- 4. Evaluate -------------------------------------------------
        let run_rounds = |efforts: &[f64], tag: u64| -> f64 {
            let mut total = 0.0;
            for round in 0..c.eval_rounds {
                let outcome = simulate_round(
                    &workers,
                    efforts,
                    RoundConfig {
                        n_items: c.n_items,
                        seed: c.seed.wrapping_add(1_000 + tag + round as u64),
                    },
                );
                total += outcome.aggregate_accuracy;
            }
            total / c.eval_rounds as f64
        };

        let contract_efforts = vec![induced_effort; c.n_workers];
        let contract_accuracy = run_rounds(&contract_efforts, 0);

        // Fixed payment of equal spend: a rational diligent worker exerts
        // nothing (pay is effort-independent).
        let fixed_efforts = vec![0.0; c.n_workers];
        let fixed_accuracy = run_rounds(&fixed_efforts, 500);

        Ok(MarketReport {
            contract_accuracy,
            fixed_accuracy,
            contract_spend: spend_per_worker * c.n_workers as f64,
            mean_effort: induced_effort,
            fitted_psi: fit.psi,
            fit_points: fit.points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contracts_buy_label_quality() {
        let report = LabelMarket::new(MarketConfig::default()).run().unwrap();
        assert!(
            report.contract_accuracy > report.fixed_accuracy + 0.15,
            "contract {} vs fixed {}",
            report.contract_accuracy,
            report.fixed_accuracy
        );
        assert!(report.mean_effort > 1.0, "contracts must induce real effort");
        assert!(report.contract_spend > 0.0);
        assert!(report.fit_points >= 100);
        // The fitted response is a valid model effort function.
        assert!(report.fitted_psi.r2() < 0.0);
    }

    #[test]
    fn fixed_payment_accuracy_near_chance() {
        let report = LabelMarket::new(MarketConfig::default()).run().unwrap();
        assert!(
            (report.fixed_accuracy - 0.5).abs() < 0.2,
            "zero-effort majority should hover near chance, got {}",
            report.fixed_accuracy
        );
    }

    #[test]
    fn degenerate_configs_rejected() {
        for bad in [
            MarketConfig {
                n_workers: 0,
                ..MarketConfig::default()
            },
            MarketConfig {
                n_items: 0,
                ..MarketConfig::default()
            },
            MarketConfig {
                calibration_rounds: 2,
                ..MarketConfig::default()
            },
            MarketConfig {
                eval_rounds: 0,
                ..MarketConfig::default()
            },
        ] {
            assert!(LabelMarket::new(bad).run().is_err());
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = LabelMarket::new(MarketConfig::default()).run().unwrap();
        let b = LabelMarket::new(MarketConfig::default()).run().unwrap();
        assert_eq!(a, b);
    }
}
