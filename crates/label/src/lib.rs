//! # dcc-label
//!
//! The classification-task extension the paper names as future work
//! (§VII: *"we also plan to extend our model from review tasks to a more
//! general case, which can be applied to different crowdsourcing
//! applications, like classification"*).
//!
//! Workers label batches of binary items. A worker's *accuracy* rises
//! concavely with effort ([`AccuracyCurve`]); the platform aggregates
//! labels by (weighted) majority vote ([`aggregate`]); a worker's
//! *feedback* is its agreement count with the aggregate — a concave
//! function of effort, exactly the shape the contract machinery of
//! `dcc-core` expects. [`LabelMarket`] wires it together: simulate
//! labeling rounds, fit the effort→agreement response, design contracts
//! with the §IV-C algorithm, and measure the aggregate label quality the
//! incentives buy.
//!
//! ## Example
//!
//! ```
//! use dcc_label::{AccuracyCurve, LabelMarket, MarketConfig};
//!
//! # fn main() -> Result<(), dcc_label::LabelError> {
//! let market = LabelMarket::new(MarketConfig::default());
//! let report = market.run()?;
//! assert!(report.contract_accuracy > report.fixed_accuracy);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accuracy;
pub mod aggregate;
mod defense;
mod error;
mod market;
mod model;
mod synth;

pub use accuracy::AccuracyCurve;
pub use defense::{run_defense, DefenseConfig, DefenseReport};
pub use error::LabelError;
pub use market::{LabelMarket, MarketConfig, MarketReport};
pub use model::{Item, Label, LabelWorker, LabelingRound, WorkerRole};
pub use synth::{simulate_round, RoundConfig};
