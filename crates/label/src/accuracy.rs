use crate::LabelError;

/// A worker's labeling accuracy as a function of effort:
///
/// `p(y) = p_max − (p_max − 0.5) · exp(−rate · y)`
///
/// — a concave saturating curve from the coin-flip floor 0.5 toward the
/// skill ceiling `p_max`. This plays the role ψ plays for reviews: the
/// behavioural primitive the contract machinery fits and exploits.
///
/// # Example
///
/// ```
/// use dcc_label::AccuracyCurve;
///
/// let curve = AccuracyCurve::new(0.95, 0.5).unwrap();
/// assert!((curve.accuracy(0.0) - 0.5).abs() < 1e-12);
/// assert!(curve.accuracy(10.0) > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyCurve {
    p_max: f64,
    rate: f64,
}

impl AccuracyCurve {
    /// Creates a curve with ceiling `p_max ∈ (0.5, 1]` and learning rate
    /// `rate > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`LabelError::InvalidConfig`] on out-of-domain arguments.
    pub fn new(p_max: f64, rate: f64) -> Result<Self, LabelError> {
        if !(0.5..=1.0).contains(&p_max) || p_max <= 0.5 {
            return Err(LabelError::InvalidConfig(format!(
                "accuracy ceiling must be in (0.5, 1], got {p_max}"
            )));
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(LabelError::InvalidConfig(format!(
                "learning rate must be positive, got {rate}"
            )));
        }
        Ok(AccuracyCurve { p_max, rate })
    }

    /// Accuracy at effort `y ≥ 0` (clamped below at 0).
    pub fn accuracy(&self, y: f64) -> f64 {
        let y = y.max(0.0);
        self.p_max - (self.p_max - 0.5) * (-self.rate * y).exp()
    }

    /// The skill ceiling `p_max`.
    pub fn ceiling(&self) -> f64 {
        self.p_max
    }

    /// The effort at which accuracy reaches the fraction `frac ∈ (0, 1)`
    /// of the way from 0.5 to the ceiling.
    ///
    /// # Errors
    ///
    /// Returns [`LabelError::InvalidConfig`] if `frac ∉ (0, 1)`.
    pub fn effort_for_fraction(&self, frac: f64) -> Result<f64, LabelError> {
        if !(0.0 < frac && frac < 1.0) {
            return Err(LabelError::InvalidConfig(format!(
                "fraction must be in (0, 1), got {frac}"
            )));
        }
        Ok(-(1.0 - frac).ln() / self.rate)
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(AccuracyCurve::new(0.5, 1.0).is_err());
        assert!(AccuracyCurve::new(1.01, 1.0).is_err());
        assert!(AccuracyCurve::new(0.9, 0.0).is_err());
        assert!(AccuracyCurve::new(0.9, f64::NAN).is_err());
        assert!(AccuracyCurve::new(0.9, 1.0).is_ok());
    }

    #[test]
    fn accuracy_is_monotone_concave_saturating() {
        let c = AccuracyCurve::new(0.95, 0.4).unwrap();
        let mut prev = c.accuracy(0.0);
        let mut prev_gain = f64::INFINITY;
        for i in 1..=20 {
            let y = i as f64 * 0.5;
            let p = c.accuracy(y);
            let gain = p - prev;
            assert!(p > prev, "accuracy must increase");
            assert!(gain <= prev_gain + 1e-12, "gains must shrink (concavity)");
            assert!(p < 0.95, "ceiling never exceeded");
            prev = p;
            prev_gain = gain;
        }
    }

    #[test]
    fn negative_effort_clamps_to_floor() {
        let c = AccuracyCurve::new(0.9, 1.0).unwrap();
        assert_eq!(c.accuracy(-3.0), c.accuracy(0.0));
    }

    #[test]
    fn effort_for_fraction_inverts() {
        let c = AccuracyCurve::new(0.9, 0.7).unwrap();
        let y = c.effort_for_fraction(0.8).unwrap();
        let p = c.accuracy(y);
        let frac = (p - 0.5) / (0.9 - 0.5);
        assert!((frac - 0.8).abs() < 1e-9);
        assert!(c.effort_for_fraction(0.0).is_err());
        assert!(c.effort_for_fraction(1.0).is_err());
    }
}
