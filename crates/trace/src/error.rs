use std::fmt;

/// Errors produced by the trace substrate.
#[derive(Debug)]
pub enum TraceError {
    /// A referenced reviewer or product does not exist in the dataset.
    UnknownEntity(String),
    /// The dataset violated an internal invariant during construction.
    InvalidDataset(String),
    /// A CSV file could not be parsed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A binary columnar trace failed structural validation (bad magic,
    /// truncated body, checksum mismatch, malformed CSR offsets).
    Corrupt(String),
    /// Underlying I/O failure during persistence.
    Io(std::io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownEntity(what) => write!(f, "unknown entity: {what}"),
            TraceError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            TraceError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TraceError::Corrupt(msg) => write!(f, "corrupt columnar trace: {msg}"),
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<dcc_numerics::JsonError> for TraceError {
    fn from(e: dcc_numerics::JsonError) -> Self {
        TraceError::Parse {
            line: 1,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            TraceError::UnknownEntity("w9".into()).to_string(),
            "unknown entity: w9"
        );
        let p = TraceError::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert_eq!(p.to_string(), "parse error at line 3: bad float");
    }

    #[test]
    fn io_source_preserved() {
        use std::error::Error;
        let e = TraceError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
