use crate::{TraceDataset, WorkerClass};
use std::fmt;

/// Aggregate statistics of a trace, mirroring the dataset description of
/// §V and the per-class comparison of Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total number of reviews.
    pub reviews: usize,
    /// Total number of reviewers.
    pub reviewers: usize,
    /// Total number of products.
    pub products: usize,
    /// Honest worker count.
    pub honest: usize,
    /// Non-collusive malicious worker count.
    pub non_collusive: usize,
    /// Collusive malicious worker count.
    pub collusive: usize,
    /// Number of ground-truth collusive communities.
    pub communities: usize,
    /// Per-class `(mean effort, mean feedback)` — the two bar groups of
    /// Fig. 7, ordered Honest / NCM / CM.
    pub class_means: [(f64, f64); 3],
}

impl TraceSummary {
    /// Computes the summary of a trace.
    pub fn of(trace: &TraceDataset) -> Self {
        let mut class_means = [(0.0, 0.0); 3];
        for (slot, class) in WorkerClass::ALL.iter().enumerate() {
            let pts = trace.effort_feedback_points(*class);
            if pts.is_empty() {
                continue;
            }
            let n = pts.len() as f64;
            class_means[slot] = (
                pts.iter().map(|p| p.0).sum::<f64>() / n,
                pts.iter().map(|p| p.1).sum::<f64>() / n,
            );
        }
        TraceSummary {
            reviews: trace.reviews().len(),
            reviewers: trace.reviewers().len(),
            products: trace.products().len(),
            honest: trace.workers_of_class(WorkerClass::Honest).len(),
            non_collusive: trace
                .workers_of_class(WorkerClass::NonCollusiveMalicious)
                .len(),
            collusive: trace.workers_of_class(WorkerClass::CollusiveMalicious).len(),
            communities: trace.campaigns().len(),
            class_means,
        }
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} reviews by {} reviewers over {} products",
            self.reviews, self.reviewers, self.products
        )?;
        writeln!(
            f,
            "workers: {} honest, {} non-collusive malicious, {} collusive in {} communities",
            self.honest, self.non_collusive, self.collusive, self.communities
        )?;
        for (i, class) in WorkerClass::ALL.iter().enumerate() {
            let (eff, fb) = self.class_means[i];
            writeln!(f, "  {class}: mean effort {eff:.3}, mean feedback {fb:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticConfig;

    #[test]
    fn summary_counts_are_consistent() {
        let trace = SyntheticConfig::small(17).generate();
        let s = TraceSummary::of(&trace);
        assert_eq!(s.reviewers, s.honest + s.non_collusive + s.collusive);
        assert_eq!(s.reviews, trace.reviews().len());
        assert!(s.communities > 0);
        // All classes have positive mean effort and feedback.
        for (eff, fb) in s.class_means {
            assert!(eff > 0.0);
            assert!(fb > 0.0);
        }
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn fig7_shape_collusive_feedback_dominates() {
        let s = TraceSummary::of(&SyntheticConfig::small(23).generate());
        let honest_fb = s.class_means[0].1;
        let cm_fb = s.class_means[2].1;
        assert!(cm_fb > honest_fb, "Fig. 7: CM feedback must dominate");
        // Efforts are of similar magnitude (same order).
        let honest_eff = s.class_means[0].0;
        let cm_eff = s.class_means[2].0;
        assert!(cm_eff > 0.4 * honest_eff && cm_eff < 2.5 * honest_eff);
    }
}
