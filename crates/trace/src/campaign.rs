use crate::{ProductId, ReviewerId};
use rand::Rng;

/// The collusive community-size distribution reported in Table II of the
/// paper: `(size, probability)` pairs. The `≥10` bucket is represented by
/// size 10 (draws from it are widened to 10–14 by the sampler).
pub const COMMUNITY_SIZE_DISTRIBUTION: [(usize, f64); 6] = [
    (2, 0.512),
    (3, 0.220),
    (4, 0.073),
    (5, 0.024),
    (6, 0.098),
    (10, 0.049),
];

/// Samples a collusive community size from the Table II distribution.
///
/// The `≥10` bucket is expanded uniformly over `10..=14`, reflecting that
/// the paper reports only "≥10" for 4.9% of its 47 communities.
pub fn sample_community_size<R: Rng>(rng: &mut R) -> usize {
    // The published percentages sum to 97.6%; normalize so each bucket's
    // relative frequency matches Table II exactly.
    let total: f64 = COMMUNITY_SIZE_DISTRIBUTION.iter().map(|&(_, p)| p).sum();
    let roll: f64 = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    for &(size, p) in COMMUNITY_SIZE_DISTRIBUTION.iter() {
        acc += p;
        if roll < acc {
            return if size >= 10 {
                rng.gen_range(10..=14)
            } else {
                size
            };
        }
    }
    // Floating-point slack on the final bucket boundary.
    10
}

/// A collusion campaign: a set of malicious workers recruited to target
/// the same products (§II: "collusive workers are recruited from the same
/// source and paid to target the same task").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    /// Campaign index (dense, 0-based).
    pub id: usize,
    /// Members of the campaign.
    pub members: Vec<ReviewerId>,
    /// Products the campaign jointly targets.
    pub targets: Vec<ProductId>,
}

impl Campaign {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Number of collusion partners a member has (`A_i` in Eq. 5).
    pub fn partners_of_member(&self) -> usize {
        self.members.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn distribution_sums_to_at_most_one() {
        let total: f64 = COMMUNITY_SIZE_DISTRIBUTION.iter().map(|&(_, p)| p).sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(total > 0.97, "distribution should nearly cover the space");
    }

    #[test]
    fn sampled_sizes_match_distribution_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut count2 = 0;
        let mut count_ge10 = 0;
        for _ in 0..n {
            let s = sample_community_size(&mut rng);
            assert!((2..=14).contains(&s));
            if s == 2 {
                count2 += 1;
            }
            if s >= 10 {
                count_ge10 += 1;
            }
        }
        let f2 = count2 as f64 / n as f64;
        let f10 = count_ge10 as f64 / n as f64;
        assert!((f2 - 0.512).abs() < 0.02, "size-2 fraction {f2}");
        assert!((f10 - 0.049).abs() < 0.01, "size>=10 fraction {f10}");
    }

    #[test]
    fn campaign_partner_count() {
        let c = Campaign {
            id: 0,
            members: vec![ReviewerId(1), ReviewerId(2), ReviewerId(3)],
            targets: vec![ProductId(0)],
        };
        assert_eq!(c.size(), 3);
        assert_eq!(c.partners_of_member(), 2);
    }
}
