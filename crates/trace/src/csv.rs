//! Plain-CSV persistence for traces.
//!
//! The offline dependency set has no `serde_json`, so traces are stored as
//! three CSV files in a directory: `products.csv`, `reviewers.csv`, and
//! `reviews.csv` (campaign membership is encoded on the reviewer rows and
//! campaign targets are reconstructed from malicious co-reviews).

use crate::{
    Campaign, Product, ProductId, Review, Reviewer, ReviewerId, TraceDataset, TraceError,
    WorkerClass,
};
use std::collections::BTreeMap;
use std::fs;
use std::io::{BufRead as _, BufReader, BufWriter, Write as _};
use std::path::Path;

/// Writes `trace` into `dir` (created if absent) as three CSV files.
///
/// Rows are formatted through a [`BufWriter`] so a million-reviewer
/// trace does not issue one syscall per line.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on any filesystem failure.
pub fn write_trace_csv(trace: &TraceDataset, dir: &Path) -> Result<(), TraceError> {
    fs::create_dir_all(dir)?;

    let mut products = BufWriter::new(fs::File::create(dir.join("products.csv"))?);
    writeln!(products, "id,true_quality")?;
    for p in trace.products() {
        writeln!(products, "{},{}", p.id.index(), p.true_quality)?;
    }
    products.flush()?;

    let mut reviewers = BufWriter::new(fs::File::create(dir.join("reviewers.csv"))?);
    writeln!(reviewers, "id,class,campaign,is_expert")?;
    for r in trace.reviewers() {
        writeln!(
            reviewers,
            "{},{},{},{}",
            r.id.index(),
            r.class.code(),
            r.campaign.map(|c| c.to_string()).unwrap_or_default(),
            r.is_expert as u8
        )?;
    }
    reviewers.flush()?;

    let mut reviews = BufWriter::new(fs::File::create(dir.join("reviews.csv"))?);
    writeln!(reviews, "reviewer,product,round,stars,length_chars,upvotes")?;
    for r in trace.reviews() {
        writeln!(
            reviews,
            "{},{},{},{},{},{}",
            r.reviewer.index(),
            r.product.index(),
            r.round,
            r.stars,
            r.length_chars,
            r.upvotes
        )?;
    }
    reviews.flush()?;
    Ok(())
}

/// Iterates a CSV file's data rows without loading the whole file into
/// one string: each line streams through a [`BufReader`], skipping the
/// header and blank lines. The callback receives `(1-based line, row)`.
fn for_each_row(
    path: &Path,
    mut row: impl FnMut(usize, &str) -> Result<(), TraceError>,
) -> Result<(), TraceError> {
    let reader = BufReader::new(fs::File::open(path)?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue;
        }
        row(i + 1, &line)?;
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(field: &str, line: usize, what: &str) -> Result<T, TraceError> {
    field.parse().map_err(|_| TraceError::Parse {
        line,
        message: format!("cannot parse {what} from {field:?}"),
    })
}

/// Reads a trace previously written by [`write_trace_csv`].
///
/// Campaign targets are reconstructed as the products each campaign's
/// members reviewed.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on filesystem failures, [`TraceError::Parse`]
/// on malformed rows, and [`TraceError::InvalidDataset`] if the decoded
/// records are inconsistent.
pub fn read_trace_csv(dir: &Path) -> Result<TraceDataset, TraceError> {
    let mut products = Vec::new();
    for_each_row(&dir.join("products.csv"), |n, line| {
        let mut f = line.split(',');
        let id: usize = parse(f.next().unwrap_or(""), n, "product id")?;
        let q: f64 = parse(f.next().unwrap_or(""), n, "true_quality")?;
        products.push(Product {
            id: ProductId(id),
            true_quality: q,
        });
        Ok(())
    })?;

    let mut reviewers = Vec::new();
    for_each_row(&dir.join("reviewers.csv"), |n, line| {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(TraceError::Parse {
                line: n,
                message: format!("expected 4 reviewer fields, got {}", fields.len()),
            });
        }
        let id: usize = parse(fields[0], n, "reviewer id")?;
        let class = WorkerClass::from_code(fields[1]).ok_or(TraceError::Parse {
            line: n,
            message: format!("unknown class code {:?}", fields[1]),
        })?;
        let campaign = if fields[2].is_empty() {
            None
        } else {
            Some(parse(fields[2], n, "campaign id")?)
        };
        let is_expert = fields[3] == "1";
        reviewers.push(Reviewer {
            id: ReviewerId(id),
            class,
            campaign,
            is_expert,
        });
        Ok(())
    })?;

    let mut reviews = Vec::new();
    for_each_row(&dir.join("reviews.csv"), |n, line| {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(TraceError::Parse {
                line: n,
                message: format!("expected 6 review fields, got {}", fields.len()),
            });
        }
        reviews.push(Review {
            reviewer: ReviewerId(parse(fields[0], n, "reviewer id")?),
            product: ProductId(parse(fields[1], n, "product id")?),
            round: parse(fields[2], n, "round")?,
            stars: parse(fields[3], n, "stars")?,
            length_chars: parse(fields[4], n, "length")?,
            upvotes: parse(fields[5], n, "upvotes")?,
        });
        Ok(())
    })?;

    // Rebuild campaigns from reviewer rows + member reviews.
    let mut members: BTreeMap<usize, Vec<ReviewerId>> = BTreeMap::new();
    for r in &reviewers {
        if let Some(c) = r.campaign {
            members.entry(c).or_default().push(r.id);
        }
    }
    let mut campaigns = Vec::new();
    for (cid, ms) in members {
        let mut targets: Vec<ProductId> = reviews
            .iter()
            .filter(|rv| ms.contains(&rv.reviewer))
            .map(|rv| rv.product)
            .collect();
        targets.sort_unstable();
        targets.dedup();
        campaigns.push(Campaign {
            id: cid,
            members: ms,
            targets,
        });
    }
    // Campaign ids in the file may be sparse; re-densify.
    for (i, c) in campaigns.iter_mut().enumerate() {
        c.id = i;
    }

    TraceDataset::new(products, reviewers, reviews, campaigns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticConfig;

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = SyntheticConfig::small(31).generate();
        let dir = std::env::temp_dir().join(format!("dcc_trace_rt_{}", std::process::id()));
        write_trace_csv(&trace, &dir).unwrap();
        let back = read_trace_csv(&dir).unwrap();
        fs::remove_dir_all(&dir).ok();

        assert_eq!(back.products().len(), trace.products().len());
        assert_eq!(back.reviewers().len(), trace.reviewers().len());
        assert_eq!(back.reviews().len(), trace.reviews().len());
        assert_eq!(back.campaigns().len(), trace.campaigns().len());
        // Spot-check a review and derived quantities survive the roundtrip.
        let r0 = &trace.reviews()[0];
        let b0 = &back.reviews()[0];
        assert_eq!(r0.reviewer, b0.reviewer);
        assert_eq!(r0.length_chars, b0.length_chars);
        assert!((r0.upvotes - b0.upvotes).abs() < 1e-9);
        let id = trace.reviewers()[0].id;
        assert!((trace.expertise(id).unwrap() - back.expertise(id).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn missing_directory_is_io_error() {
        let err = read_trace_csv(Path::new("/nonexistent/dcc")).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }

    #[test]
    fn malformed_rows_are_parse_errors() {
        let dir = std::env::temp_dir().join(format!("dcc_trace_bad_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("products.csv"), "id,true_quality\nnotanum,3.0\n").unwrap();
        fs::write(dir.join("reviewers.csv"), "id,class,campaign,is_expert\n").unwrap();
        fs::write(
            dir.join("reviews.csv"),
            "reviewer,product,round,stars,length_chars,upvotes\n",
        )
        .unwrap();
        let err = read_trace_csv(&dir).unwrap_err();
        fs::remove_dir_all(&dir).ok();
        assert!(matches!(err, TraceError::Parse { .. }));
    }
}
