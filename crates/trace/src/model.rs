use crate::{ProductId, ReviewerId};
use std::fmt;

/// Ground-truth behavioural class of a worker (§II).
///
/// The evaluation trace labels every reviewer with one of the three
/// classes the paper's model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkerClass {
    /// Provides services purely for compensation (utility Eq. 11).
    Honest,
    /// Malicious with a hidden agenda, acting alone (utility Eq. 14).
    NonCollusiveMalicious,
    /// Malicious and coordinating with a community (§III, Eq. 3).
    CollusiveMalicious,
}

impl WorkerClass {
    /// `true` for both malicious classes.
    pub fn is_malicious(self) -> bool {
        !matches!(self, WorkerClass::Honest)
    }

    /// Stable short code used by the CSV persistence layer.
    pub fn code(self) -> &'static str {
        match self {
            WorkerClass::Honest => "H",
            WorkerClass::NonCollusiveMalicious => "N",
            WorkerClass::CollusiveMalicious => "C",
        }
    }

    /// Parses a [`WorkerClass::code`] back into a class.
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "H" => Some(WorkerClass::Honest),
            "N" => Some(WorkerClass::NonCollusiveMalicious),
            "C" => Some(WorkerClass::CollusiveMalicious),
            _ => None,
        }
    }

    /// All classes, in display order.
    pub const ALL: [WorkerClass; 3] = [
        WorkerClass::Honest,
        WorkerClass::NonCollusiveMalicious,
        WorkerClass::CollusiveMalicious,
    ];
}

impl fmt::Display for WorkerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WorkerClass::Honest => "honest",
            WorkerClass::NonCollusiveMalicious => "non-collusive malicious",
            WorkerClass::CollusiveMalicious => "collusive malicious",
        };
        f.write_str(name)
    }
}

/// A product available for review.
#[derive(Debug, Clone, PartialEq)]
pub struct Product {
    /// Dense identifier.
    pub id: ProductId,
    /// Latent true quality on the 1–5 star scale; expert consensus
    /// concentrates around this value.
    pub true_quality: f64,
}

/// A reviewer (worker) in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Reviewer {
    /// Dense identifier.
    pub id: ReviewerId,
    /// Ground-truth behavioural class.
    pub class: WorkerClass,
    /// Collusive community index, for [`WorkerClass::CollusiveMalicious`]
    /// workers only.
    pub campaign: Option<usize>,
    /// Whether the trace marks this reviewer as an expert (high accuracy
    /// and endorsement reputation — §II).
    pub is_expert: bool,
}

/// A single product review: one unit of completed crowd work.
#[derive(Debug, Clone, PartialEq)]
pub struct Review {
    /// The reviewer who wrote it.
    pub reviewer: ReviewerId,
    /// The product reviewed.
    pub product: ProductId,
    /// Task round in which the review was written (0-based).
    pub round: usize,
    /// Star rating given, in `[1.0, 5.0]`.
    pub stars: f64,
    /// Review length in characters (the paper's effort-time proxy).
    pub length_chars: usize,
    /// "Helpful" upvotes received (the paper's *feedback* signal).
    pub upvotes: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_codes_roundtrip() {
        for class in WorkerClass::ALL {
            assert_eq!(WorkerClass::from_code(class.code()), Some(class));
        }
        assert_eq!(WorkerClass::from_code("x"), None);
    }

    #[test]
    fn maliciousness_flag() {
        assert!(!WorkerClass::Honest.is_malicious());
        assert!(WorkerClass::NonCollusiveMalicious.is_malicious());
        assert!(WorkerClass::CollusiveMalicious.is_malicious());
    }

    #[test]
    fn display_names() {
        assert_eq!(WorkerClass::Honest.to_string(), "honest");
        assert_eq!(
            WorkerClass::CollusiveMalicious.to_string(),
            "collusive malicious"
        );
    }
}
