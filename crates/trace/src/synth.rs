use crate::dataset::EFFORT_SCALE;
use crate::{
    sample_community_size, Campaign, ColumnarBuilder, ColumnarTrace, Product, ProductId, Review,
    Reviewer, ReviewerId, TraceDataset, WorkerClass,
};
use dcc_numerics::Quadratic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Class-conditional generative behaviour.
///
/// Each worker class responds to effort with a concave quadratic (the
/// ground truth behind §IV-B's fits), draws latent effort levels from a
/// truncated normal, perturbs feedback with additive noise (which makes
/// Table III's norm-of-residuals flatten from the quadratic onward), and
/// biases its star ratings relative to the product's true quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassBehavior {
    /// Ground-truth effort→feedback response ψ (concave, increasing on
    /// the generated effort range).
    pub effort_response: Quadratic,
    /// Standard deviation of additive feedback noise.
    pub noise_sd: f64,
    /// Mean of the latent per-worker effort level.
    pub effort_mean: f64,
    /// Standard deviation of the latent per-worker effort level.
    pub effort_sd: f64,
    /// Systematic star-rating bias added to the product's true quality
    /// (malicious classes push ratings up).
    pub star_bias: f64,
    /// Standard deviation of star-rating noise.
    pub star_noise: f64,
}

/// Configuration of the synthetic trace generator.
///
/// Use [`SyntheticConfig::paper_scale`] for the full §V workload and
/// [`SyntheticConfig::small`] for fast tests; every field can be tuned
/// afterwards.
///
/// # Example
///
/// ```
/// use dcc_trace::SyntheticConfig;
///
/// let mut cfg = SyntheticConfig::small(1);
/// cfg.n_honest = 100;
/// let trace = cfg.generate();
/// assert_eq!(
///     trace.workers_of_class(dcc_trace::WorkerClass::Honest).len(),
///     100
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// RNG seed; equal seeds produce identical traces.
    pub seed: u64,
    /// Number of honest workers.
    pub n_honest: usize,
    /// Number of non-collusive malicious workers.
    pub n_ncm: usize,
    /// Target number of collusive malicious workers; the generator adds
    /// whole communities (sized per Table II) until this is reached, so
    /// the realized count may exceed it by at most one community.
    pub n_cm_target: usize,
    /// Number of products in the catalogue.
    pub n_products: usize,
    /// Number of task rounds reviews are spread over.
    pub n_rounds: usize,
    /// Fraction of honest workers marked as experts.
    pub expert_fraction: f64,
    /// Probability that an honest worker is "prolific" (drawing 20–40
    /// reviews instead of 2–9) — calibrates Fig. 8(a)'s ≥20-review filter.
    pub prolific_fraction: f64,
    /// Behaviour of honest workers.
    pub honest: ClassBehavior,
    /// Behaviour of non-collusive malicious workers.
    pub ncm: ClassBehavior,
    /// Behaviour of collusive malicious workers.
    pub cm: ClassBehavior,
    /// Extra upvotes a collusive review receives per community partner
    /// (mutual upvoting — the Fig. 7 feedback inflation).
    pub collusion_boost_per_partner: f64,
}

impl SyntheticConfig {
    /// Default class behaviours shared by both scales.
    ///
    /// The responses carry pronounced curvature (ψ′ spans roughly a 10×
    /// range over the observed effort region) so that the requester's
    /// interior trade-off `ψ′(y*) = μβ/w` moves visibly with the
    /// per-worker weight `w` — the effect behind the Fig. 8(a)/8(b)
    /// distributions.
    fn default_behaviors() -> (ClassBehavior, ClassBehavior, ClassBehavior) {
        let honest = ClassBehavior {
            effort_response: Quadratic::new(-0.15, 2.5, 1.0),
            noise_sd: 1.0,
            effort_mean: 5.0,
            effort_sd: 1.5,
            star_bias: 0.0,
            star_noise: 0.5,
        };
        let ncm = ClassBehavior {
            effort_response: Quadratic::new(-0.14, 2.3, 0.8),
            noise_sd: 0.35,
            effort_mean: 4.5,
            effort_sd: 1.5,
            star_bias: 1.8,
            star_noise: 0.6,
        };
        let cm = ClassBehavior {
            effort_response: Quadratic::new(-0.13, 2.0, 0.5),
            noise_sd: 1.2,
            effort_mean: 5.0,
            effort_sd: 1.6,
            star_bias: 2.2,
            star_noise: 0.5,
        };
        (honest, ncm, cm)
    }

    /// The full workload of §V: 18,176 honest workers, 1,312 non-collusive
    /// malicious workers, ≈212 collusive workers in Table II-sized
    /// communities, 75,508 products, ≈118k reviews.
    pub fn paper_scale(seed: u64) -> Self {
        let (honest, ncm, cm) = Self::default_behaviors();
        SyntheticConfig {
            seed,
            n_honest: 18_176,
            n_ncm: 1_312,
            n_cm_target: 212,
            n_products: 75_508,
            n_rounds: 24,
            expert_fraction: 0.02,
            prolific_fraction: 0.02,
            honest,
            ncm,
            cm,
            collusion_boost_per_partner: 4.0,
        }
    }

    /// A test-sized workload (hundreds of workers) with the same
    /// behavioural calibration.
    pub fn small(seed: u64) -> Self {
        let (honest, ncm, cm) = Self::default_behaviors();
        SyntheticConfig {
            seed,
            n_honest: 300,
            n_ncm: 60,
            n_cm_target: 40,
            n_products: 800,
            n_rounds: 8,
            expert_fraction: 0.05,
            prolific_fraction: 0.05,
            honest,
            ncm,
            cm,
            collusion_boost_per_partner: 4.0,
        }
    }

    /// Behaviour record for a class.
    pub fn behavior(&self, class: WorkerClass) -> &ClassBehavior {
        match class {
            WorkerClass::Honest => &self.honest,
            WorkerClass::NonCollusiveMalicious => &self.ncm,
            WorkerClass::CollusiveMalicious => &self.cm,
        }
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no products, or a
    /// product catalogue too small to give each malicious worker or
    /// community dedicated targets). Both `paper_scale` and `small` are
    /// always valid.
    pub fn generate(&self) -> TraceDataset {
        let mut sink = StructSink::default();
        self.generate_impl(&mut sink);
        #[allow(clippy::expect_used)] // the roundtrip tests exercise every generator path
        TraceDataset::new(sink.products, sink.reviewers, sink.reviews, sink.campaigns)
            // dcc-lint: allow(unwrap-in-lib, reason = "the generator emits a structurally consistent dataset; TraceDataset::new re-validates it")
            .expect("generator produces a consistent dataset")
    }

    /// Generates the trace directly into columnar buffers.
    ///
    /// This runs the exact same draw sequence as [`SyntheticConfig::generate`]
    /// (equal seeds produce bit-identical content either way) but streams
    /// every row into a [`ColumnarBuilder`], so multi-million-worker traces
    /// never materialize `Vec<Reviewer>` / `Vec<Review>` struct rows.
    ///
    /// # Panics
    ///
    /// Panics on the same degenerate configurations as
    /// [`SyntheticConfig::generate`].
    pub fn generate_columnar(&self) -> ColumnarTrace {
        let mut sink = ColumnarBuilder::new();
        self.generate_impl(&mut sink);
        sink.finish()
    }

    /// The generator proper: one pass of RNG draws streamed into `sink`.
    ///
    /// Any change to the draw sequence here shifts every downstream value
    /// for a given seed — the golden snapshots (`tests/golden/`) pin the
    /// current sequence.
    fn generate_impl<S: TraceSink>(&self, sink: &mut S) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        assert!(self.n_products > 0, "catalogue must be nonempty");

        // --- Products -----------------------------------------------------
        for _ in 0..self.n_products {
            sink.add_product(rng.gen_range(1.5..5.0));
        }

        // --- Campaign layout (Table II sizes) ------------------------------
        let mut campaign_sizes: Vec<usize> = Vec::new();
        let mut cm_members = 0usize;
        while cm_members < self.n_cm_target {
            let size = sample_community_size(&mut rng);
            campaign_sizes.push(size);
            cm_members += size;
        }
        let n_cm: usize = campaign_sizes.iter().sum();

        // --- Reviewer ids: honest, then NCM, then CM grouped by campaign ---
        let n_total = self.n_honest + self.n_ncm + n_cm;
        for _ in 0..self.n_honest {
            sink.add_reviewer(
                WorkerClass::Honest,
                None,
                rng.gen::<f64>() < self.expert_fraction,
            );
        }
        for _ in 0..self.n_ncm {
            sink.add_reviewer(WorkerClass::NonCollusiveMalicious, None, false);
        }
        for (cid, &size) in campaign_sizes.iter().enumerate() {
            for _ in 0..size {
                sink.add_reviewer(WorkerClass::CollusiveMalicious, Some(cid), false);
            }
        }

        // --- Dedicated malicious target products ---------------------------
        // Each NCM worker and each campaign gets targets disjoint from all
        // other malicious actors, so the §IV-A auxiliary graph has exactly
        // the ground-truth components. Honest workers may review anything.
        // The reservation is laid out contiguously — NCM worker j targets
        // products [j·4, j·4+4), campaign c the 3-product block after all
        // NCM reservations — so pools are index ranges, not lookup tables.
        let per_ncm_targets = 4usize;
        let per_campaign_targets = 3usize;
        let reserved = self.n_ncm * per_ncm_targets + campaign_sizes.len() * per_campaign_targets;
        assert!(
            reserved <= self.n_products,
            "catalogue too small: need {reserved} reserved products, have {}",
            self.n_products
        );
        let campaign_target_base = self.n_ncm * per_ncm_targets;

        // Campaign membership is likewise contiguous: blocks of reviewer
        // ids after the honest + NCM prefix, in campaign order.
        let mut member_cursor = self.n_honest + self.n_ncm;
        for (cid, &size) in campaign_sizes.iter().enumerate() {
            let t0 = campaign_target_base + cid * per_campaign_targets;
            sink.add_campaign(
                member_cursor..member_cursor + size,
                t0..t0 + per_campaign_targets,
            );
            member_cursor += size;
        }

        // Maps a CM reviewer's offset past the honest + NCM prefix to its
        // campaign (tiny: one entry per collusive worker).
        let mut campaign_of: Vec<usize> = Vec::with_capacity(n_cm);
        for (cid, &size) in campaign_sizes.iter().enumerate() {
            campaign_of.extend(std::iter::repeat_n(cid, size));
        }

        // --- Reviews -------------------------------------------------------
        // Per worker: draw a latent effort level, a review count, then for
        // each review draw effort, feedback (ψ(effort) + noise, plus the
        // collusion boost), stars, and finally back out the review length so
        // the dataset's derived effort (expertise × length × scale) equals
        // the intended effort exactly. The scratch buffers are reused across
        // workers; nothing per-review survives beyond the sink push.
        let mut product_buf: Vec<usize> = Vec::new();
        let mut drafts: Vec<(usize, usize, f64, f64, f64)> = Vec::new();
        for id in 0..n_total {
            let (class, campaign) = if id < self.n_honest {
                (WorkerClass::Honest, None)
            } else if id < self.n_honest + self.n_ncm {
                (WorkerClass::NonCollusiveMalicious, None)
            } else {
                let cid = campaign_of[id - self.n_honest - self.n_ncm];
                (WorkerClass::CollusiveMalicious, Some(cid))
            };
            let behavior = *self.behavior(class);
            // No rational worker exerts effort past the feedback peak
            // (feedback would fall while cost rises), so the generated
            // efforts stay inside the increasing branch of ψ.
            let effort_cap = behavior
                .effort_response
                .peak()
                .map(|p| 0.95 * p)
                .unwrap_or(f64::INFINITY);
            let latent_effort = truncated_normal(
                &mut rng,
                behavior.effort_mean,
                behavior.effort_sd,
                0.3,
                (behavior.effort_mean + 4.0 * behavior.effort_sd).min(effort_cap),
            );

            let n_reviews = match class {
                WorkerClass::Honest => {
                    if rng.gen::<f64>() < self.prolific_fraction {
                        rng.gen_range(20..=40)
                    } else {
                        rng.gen_range(2..=10)
                    }
                }
                WorkerClass::NonCollusiveMalicious => rng.gen_range(2..=per_ncm_targets),
                WorkerClass::CollusiveMalicious => rng.gen_range(2..=per_campaign_targets),
            };

            let partners = campaign
                .map(|cid| campaign_sizes[cid].saturating_sub(1))
                .unwrap_or(0);

            // Products this worker reviews.
            product_buf.clear();
            match class {
                WorkerClass::Honest => {
                    for _ in 0..n_reviews {
                        product_buf.push(rng.gen_range(0..self.n_products));
                    }
                }
                WorkerClass::NonCollusiveMalicious => {
                    let base = (id - self.n_honest) * per_ncm_targets;
                    for k in 0..n_reviews {
                        product_buf.push(base + k % per_ncm_targets);
                    }
                }
                WorkerClass::CollusiveMalicious => match campaign {
                    Some(cid) => {
                        let base = campaign_target_base + cid * per_campaign_targets;
                        for k in 0..n_reviews {
                            product_buf.push(base + k % per_campaign_targets);
                        }
                    }
                    // Unreachable: the generator assigns every CM worker a
                    // campaign. Degrade to honest-style targets.
                    None => {
                        for _ in 0..n_reviews {
                            product_buf.push(rng.gen_range(0..self.n_products));
                        }
                    }
                },
            }

            // Draw effort + feedback for each review first.
            drafts.clear();
            for (k, &pid) in product_buf.iter().enumerate() {
                let effort = truncated_normal(
                    &mut rng,
                    latent_effort,
                    0.25 * behavior.effort_sd,
                    0.2,
                    (latent_effort + 3.0 * behavior.effort_sd).min(effort_cap),
                );
                let mut feedback = behavior.effort_response.eval(effort)
                    + normal(&mut rng) * behavior.noise_sd;
                if class == WorkerClass::CollusiveMalicious {
                    feedback += self.collusion_boost_per_partner * partners as f64;
                }
                let feedback = feedback.max(0.1);
                let quality = sink.quality(pid);
                let stars = (quality + behavior.star_bias + normal(&mut rng) * behavior.star_noise)
                    .clamp(1.0, 5.0);
                let round = k % self.n_rounds.max(1);
                drafts.push((pid, round, effort, feedback, stars));
            }

            // Expertise will be the mean of the feedback values; choose
            // lengths so expertise × length × EFFORT_SCALE = intended effort.
            let expertise = drafts.iter().map(|d| d.3).sum::<f64>() / drafts.len().max(1) as f64;
            for &(pid, round, effort, feedback, stars) in &drafts {
                let length = if expertise > 0.0 {
                    (effort / (expertise * EFFORT_SCALE)).round().max(1.0) as usize
                } else {
                    (effort * 1000.0).round().max(1.0) as usize
                };
                sink.add_review(id, pid, round, stars, length, feedback);
            }
        }
    }
}

/// Streaming row consumer for the generator: the same draw sequence can
/// materialize either row structs ([`TraceDataset`]) or columnar buffers
/// ([`ColumnarTrace`]) without the generator knowing which.
trait TraceSink {
    /// Appends a product (ids are dense insertion order).
    fn add_product(&mut self, quality: f64);
    /// Quality of an already-added product (stars are biased around it).
    fn quality(&self, i: usize) -> f64;
    /// Appends a reviewer (ids are dense insertion order).
    fn add_reviewer(&mut self, class: WorkerClass, campaign: Option<usize>, is_expert: bool);
    /// Appends a review.
    fn add_review(
        &mut self,
        reviewer: usize,
        product: usize,
        round: usize,
        stars: f64,
        length_chars: usize,
        upvotes: f64,
    );
    /// Appends a campaign; the generator always lays members and targets
    /// out as contiguous id ranges.
    fn add_campaign(&mut self, members: Range<usize>, targets: Range<usize>);
}

/// Sink materializing the classic row-struct vectors.
#[derive(Default)]
struct StructSink {
    products: Vec<Product>,
    reviewers: Vec<Reviewer>,
    reviews: Vec<Review>,
    campaigns: Vec<Campaign>,
}

impl TraceSink for StructSink {
    fn add_product(&mut self, quality: f64) {
        let id = ProductId(self.products.len());
        self.products.push(Product {
            id,
            true_quality: quality,
        });
    }

    fn quality(&self, i: usize) -> f64 {
        self.products.get(i).map_or(f64::NAN, |p| p.true_quality)
    }

    fn add_reviewer(&mut self, class: WorkerClass, campaign: Option<usize>, is_expert: bool) {
        let id = ReviewerId(self.reviewers.len());
        self.reviewers.push(Reviewer {
            id,
            class,
            campaign,
            is_expert,
        });
    }

    fn add_review(
        &mut self,
        reviewer: usize,
        product: usize,
        round: usize,
        stars: f64,
        length_chars: usize,
        upvotes: f64,
    ) {
        self.reviews.push(Review {
            reviewer: ReviewerId(reviewer),
            product: ProductId(product),
            round,
            stars,
            length_chars,
            upvotes,
        });
    }

    fn add_campaign(&mut self, members: Range<usize>, targets: Range<usize>) {
        let id = self.campaigns.len();
        self.campaigns.push(Campaign {
            id,
            members: members.map(ReviewerId).collect(),
            targets: targets.map(ProductId).collect(),
        });
    }
}

impl TraceSink for ColumnarBuilder {
    fn add_product(&mut self, quality: f64) {
        self.push_product(quality);
    }

    fn quality(&self, i: usize) -> f64 {
        self.product_quality(i).unwrap_or(f64::NAN)
    }

    fn add_reviewer(&mut self, class: WorkerClass, campaign: Option<usize>, is_expert: bool) {
        self.push_reviewer(class, campaign, is_expert);
    }

    fn add_review(
        &mut self,
        reviewer: usize,
        product: usize,
        round: usize,
        stars: f64,
        length_chars: usize,
        upvotes: f64,
    ) {
        self.push_review(reviewer, product, round, stars, length_chars, upvotes);
    }

    fn add_campaign(&mut self, members: Range<usize>, targets: Range<usize>) {
        self.push_campaign(members, targets);
    }
}

/// Standard-normal draw via Box–Muller (avoids depending on
/// `rand_distr`, which is not in the offline crate set).
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal draw truncated (by clamping) to `[lo, hi]`.
fn truncated_normal<R: Rng>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    (mean + normal(rng) * sd).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SyntheticConfig::small(11).generate();
        let b = SyntheticConfig::small(11).generate();
        assert_eq!(a.reviews().len(), b.reviews().len());
        assert_eq!(a.reviews()[0], b.reviews()[0]);
        let c = SyntheticConfig::small(12).generate();
        assert_ne!(
            a.reviews()[0], c.reviews()[0],
            "different seeds should differ"
        );
    }

    #[test]
    fn columnar_generation_matches_struct_generation() {
        let cfg = SyntheticConfig::small(13);
        let direct = cfg.generate();
        let col = cfg.generate_columnar().to_dataset().unwrap();
        assert_eq!(direct.products(), col.products());
        assert_eq!(direct.reviewers(), col.reviewers());
        assert_eq!(direct.reviews(), col.reviews());
        assert_eq!(direct.campaigns(), col.campaigns());
        // Bit-exact floats, not just PartialEq on rounded values.
        for (a, b) in direct.reviews().iter().zip(col.reviews()) {
            assert_eq!(a.stars.to_bits(), b.stars.to_bits());
            assert_eq!(a.upvotes.to_bits(), b.upvotes.to_bits());
        }
    }

    #[test]
    fn class_counts_match_config() {
        let cfg = SyntheticConfig::small(3);
        let t = cfg.generate();
        assert_eq!(t.workers_of_class(WorkerClass::Honest).len(), cfg.n_honest);
        assert_eq!(
            t.workers_of_class(WorkerClass::NonCollusiveMalicious).len(),
            cfg.n_ncm
        );
        let cm = t.workers_of_class(WorkerClass::CollusiveMalicious).len();
        assert!(cm >= cfg.n_cm_target, "cm {cm} below target");
        assert!(cm < cfg.n_cm_target + 15, "cm {cm} exceeds target + max community");
    }

    #[test]
    fn campaigns_are_disjoint_and_consistent() {
        let t = SyntheticConfig::small(5).generate();
        let mut seen = std::collections::HashSet::new();
        for c in t.campaigns() {
            assert!(c.size() >= 2, "community of size {} is not collusive", c.size());
            for m in &c.members {
                assert!(seen.insert(*m), "worker {m} in two campaigns");
                let r = t.reviewer(*m).unwrap();
                assert_eq!(r.class, WorkerClass::CollusiveMalicious);
                assert_eq!(r.campaign, Some(c.id));
            }
        }
        // Campaign target products are pairwise disjoint.
        let mut targets = std::collections::HashSet::new();
        for c in t.campaigns() {
            for p in &c.targets {
                assert!(targets.insert(*p), "product {p} targeted by two campaigns");
            }
        }
    }

    #[test]
    fn derived_effort_matches_intended_range() {
        let t = SyntheticConfig::small(9).generate();
        for r in t.reviews().iter().take(200) {
            let eff = t.effort_of(r);
            assert!(eff > 0.0 && eff < 40.0, "effort {eff} out of plausible range");
            assert!(r.upvotes >= 0.1);
        }
    }

    #[test]
    fn collusive_feedback_exceeds_honest_feedback() {
        let t = SyntheticConfig::small(21).generate();
        let mean_fb = |class| {
            let pts = t.effort_feedback_points(class);
            pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64
        };
        let honest = mean_fb(WorkerClass::Honest);
        let cm = mean_fb(WorkerClass::CollusiveMalicious);
        assert!(
            cm > 1.3 * honest,
            "collusive feedback {cm} should exceed honest {honest} markedly (Fig. 7)"
        );
    }

    #[test]
    fn prolific_honest_workers_exist() {
        let mut cfg = SyntheticConfig::small(2);
        cfg.n_honest = 600;
        let t = cfg.generate();
        let prolific = t.prolific_workers(WorkerClass::Honest, 20);
        assert!(
            prolific.len() >= 10,
            "expected prolific workers, got {}",
            prolific.len()
        );
    }

    #[test]
    fn malicious_stars_biased_upward() {
        let t = SyntheticConfig::small(4).generate();
        let bias = |class| {
            let ids = t.workers_of_class(class);
            let mut total = 0.0;
            let mut n = 0usize;
            for id in ids {
                for r in t.reviews_by(id) {
                    total += r.stars - t.product(r.product).unwrap().true_quality;
                    n += 1;
                }
            }
            total / n as f64
        };
        assert!(bias(WorkerClass::Honest).abs() < 0.3);
        assert!(bias(WorkerClass::NonCollusiveMalicious) > 0.6);
        assert!(bias(WorkerClass::CollusiveMalicious) > 0.6);
    }

    #[test]
    fn rounds_within_configured_range() {
        let cfg = SyntheticConfig::small(6);
        let t = cfg.generate();
        assert!(t.reviews().iter().all(|r| r.round < cfg.n_rounds));
    }
}
