use crate::{Campaign, Product, ProductId, Review, Reviewer, ReviewerId, TraceError, WorkerClass};

/// Scale applied to `expertise × length_chars` so effort levels land in a
/// numerically comfortable range (thousands of characters).
pub(crate) const EFFORT_SCALE: f64 = 1e-3;

/// An immutable review trace: products, labelled reviewers, reviews, and
/// the ground-truth collusion campaigns that generated it.
///
/// All of the paper's §V parametrization is available as derived queries:
/// per-reviewer *expertise* (average upvotes), per-review *effort*
/// (expertise × length) and *feedback* (upvotes).
///
/// # Example
///
/// ```
/// use dcc_trace::{SyntheticConfig, WorkerClass};
///
/// let trace = SyntheticConfig::small(7).generate();
/// let id = trace.workers_of_class(WorkerClass::Honest)[0];
/// assert!(trace.expertise(id).unwrap() >= 0.0);
/// assert!(!trace.reviews_by(id).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TraceDataset {
    products: Vec<Product>,
    reviewers: Vec<Reviewer>,
    reviews: Vec<Review>,
    campaigns: Vec<Campaign>,
    // Indices: review positions by reviewer / by product.
    by_reviewer: Vec<Vec<usize>>,
    by_product: Vec<Vec<usize>>,
    expertise: Vec<f64>,
}

impl TraceDataset {
    /// Assembles a dataset and builds its indices.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidDataset`] if reviewer/product ids are
    /// not dense `0..n`, or any review references a missing entity, or a
    /// campaign references a missing reviewer.
    pub fn new(
        products: Vec<Product>,
        reviewers: Vec<Reviewer>,
        reviews: Vec<Review>,
        campaigns: Vec<Campaign>,
    ) -> Result<Self, TraceError> {
        for (i, p) in products.iter().enumerate() {
            if p.id.index() != i {
                return Err(TraceError::InvalidDataset(format!(
                    "product ids must be dense: slot {i} holds {}",
                    p.id
                )));
            }
        }
        for (i, r) in reviewers.iter().enumerate() {
            if r.id.index() != i {
                return Err(TraceError::InvalidDataset(format!(
                    "reviewer ids must be dense: slot {i} holds {}",
                    r.id
                )));
            }
        }
        let mut by_reviewer = vec![Vec::new(); reviewers.len()];
        let mut by_product = vec![Vec::new(); products.len()];
        for (idx, review) in reviews.iter().enumerate() {
            let w = review.reviewer.index();
            let p = review.product.index();
            if w >= reviewers.len() {
                return Err(TraceError::UnknownEntity(format!(
                    "review {idx} references reviewer {w}"
                )));
            }
            if p >= products.len() {
                return Err(TraceError::UnknownEntity(format!(
                    "review {idx} references product {p}"
                )));
            }
            if !(1.0..=5.0).contains(&review.stars) {
                return Err(TraceError::InvalidDataset(format!(
                    "review {idx} has stars {} outside [1, 5]",
                    review.stars
                )));
            }
            by_reviewer[w].push(idx);
            by_product[p].push(idx);
        }
        for c in &campaigns {
            for m in &c.members {
                if m.index() >= reviewers.len() {
                    return Err(TraceError::UnknownEntity(format!(
                        "campaign {} references reviewer {m}",
                        c.id
                    )));
                }
            }
        }
        let expertise = by_reviewer
            .iter()
            .map(|idxs| {
                if idxs.is_empty() {
                    0.0
                } else {
                    idxs.iter().map(|&i| reviews[i].upvotes).sum::<f64>() / idxs.len() as f64
                }
            })
            .collect();
        Ok(TraceDataset {
            products,
            reviewers,
            reviews,
            campaigns,
            by_reviewer,
            by_product,
            expertise,
        })
    }

    /// An empty dataset — the starting point for incremental construction
    /// via the `push_*` mutators, used by the streaming service to build
    /// the trace event by event. A dataset grown this way is identical
    /// (including derived expertise) to one assembled in a single
    /// [`TraceDataset::new`] call over the same entities in the same
    /// order.
    pub fn empty() -> Self {
        TraceDataset {
            products: Vec::new(),
            reviewers: Vec::new(),
            reviews: Vec::new(),
            campaigns: Vec::new(),
            by_reviewer: Vec::new(),
            by_product: Vec::new(),
            expertise: Vec::new(),
        }
    }

    /// Appends a product, enforcing dense ids.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidDataset`] if the product's id is not
    /// the next dense slot.
    pub fn push_product(&mut self, product: Product) -> Result<(), TraceError> {
        if product.id.index() != self.products.len() {
            return Err(TraceError::InvalidDataset(format!(
                "product ids must be dense: slot {} offered {}",
                self.products.len(),
                product.id
            )));
        }
        self.products.push(product);
        self.by_product.push(Vec::new());
        Ok(())
    }

    /// Appends a reviewer, enforcing dense ids.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidDataset`] if the reviewer's id is not
    /// the next dense slot.
    pub fn push_reviewer(&mut self, reviewer: Reviewer) -> Result<(), TraceError> {
        if reviewer.id.index() != self.reviewers.len() {
            return Err(TraceError::InvalidDataset(format!(
                "reviewer ids must be dense: slot {} offered {}",
                self.reviewers.len(),
                reviewer.id
            )));
        }
        self.reviewers.push(reviewer);
        self.by_reviewer.push(Vec::new());
        self.expertise.push(0.0);
        Ok(())
    }

    /// Appends a review, updating the reviewer/product indices and the
    /// reviewer's derived expertise. The expertise is recomputed from
    /// scratch over the reviewer's reviews in insertion order — the exact
    /// summation of [`TraceDataset::new`] — so the value is bit-identical
    /// to a batch rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownEntity`] for a dangling reviewer or
    /// product reference and [`TraceError::InvalidDataset`] for stars
    /// outside `[1, 5]`.
    pub fn push_review(&mut self, review: Review) -> Result<(), TraceError> {
        let idx = self.reviews.len();
        let w = review.reviewer.index();
        let p = review.product.index();
        if w >= self.reviewers.len() {
            return Err(TraceError::UnknownEntity(format!(
                "review {idx} references reviewer {w}"
            )));
        }
        if p >= self.products.len() {
            return Err(TraceError::UnknownEntity(format!(
                "review {idx} references product {p}"
            )));
        }
        if !(1.0..=5.0).contains(&review.stars) {
            return Err(TraceError::InvalidDataset(format!(
                "review {idx} has stars {} outside [1, 5]",
                review.stars
            )));
        }
        self.reviews.push(review);
        self.by_reviewer[w].push(idx);
        self.by_product[p].push(idx);
        let idxs = &self.by_reviewer[w];
        self.expertise[w] =
            idxs.iter().map(|&i| self.reviews[i].upvotes).sum::<f64>() / idxs.len() as f64;
        Ok(())
    }

    /// Appends a campaign, validating its member references.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownEntity`] for a member id outside the
    /// reviewer set.
    pub fn push_campaign(&mut self, campaign: Campaign) -> Result<(), TraceError> {
        for m in &campaign.members {
            if m.index() >= self.reviewers.len() {
                return Err(TraceError::UnknownEntity(format!(
                    "campaign {} references reviewer {m}",
                    campaign.id
                )));
            }
        }
        self.campaigns.push(campaign);
        Ok(())
    }

    /// Adds a member to an existing campaign (streaming joins reveal
    /// campaign membership one worker at a time).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownEntity`] for an unknown campaign index
    /// or reviewer id.
    pub fn add_campaign_member(
        &mut self,
        campaign: usize,
        member: ReviewerId,
    ) -> Result<(), TraceError> {
        if member.index() >= self.reviewers.len() {
            return Err(TraceError::UnknownEntity(format!(
                "campaign {campaign} references reviewer {member}"
            )));
        }
        match self.campaigns.get_mut(campaign) {
            Some(c) => {
                c.members.push(member);
                Ok(())
            }
            None => Err(TraceError::UnknownEntity(format!(
                "unknown campaign {campaign}"
            ))),
        }
    }

    /// All products.
    pub fn products(&self) -> &[Product] {
        &self.products
    }

    /// All reviewers.
    pub fn reviewers(&self) -> &[Reviewer] {
        &self.reviewers
    }

    /// All reviews in insertion order.
    pub fn reviews(&self) -> &[Review] {
        &self.reviews
    }

    /// Ground-truth collusion campaigns used by the generator. Detection
    /// code must *not* read these; they exist to validate clustering.
    pub fn campaigns(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// A reviewer record by id.
    pub fn reviewer(&self, id: ReviewerId) -> Option<&Reviewer> {
        self.reviewers.get(id.index())
    }

    /// A product record by id.
    pub fn product(&self, id: ProductId) -> Option<&Product> {
        self.products.get(id.index())
    }

    /// The reviews written by `id`, in round order of insertion.
    pub fn reviews_by(&self, id: ReviewerId) -> Vec<&Review> {
        self.by_reviewer
            .get(id.index())
            .map(|idxs| idxs.iter().map(|&i| &self.reviews[i]).collect())
            .unwrap_or_default()
    }

    /// The reviews written for product `id`.
    pub fn reviews_for(&self, id: ProductId) -> Vec<&Review> {
        self.by_product
            .get(id.index())
            .map(|idxs| idxs.iter().map(|&i| &self.reviews[i]).collect())
            .unwrap_or_default()
    }

    /// A reviewer's *expertise*: average upvotes over all their reviews
    /// (§V parametrization #2). Zero for reviewers with no reviews.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownEntity`] for an unknown reviewer.
    pub fn expertise(&self, id: ReviewerId) -> Result<f64, TraceError> {
        self.expertise
            .get(id.index())
            .copied()
            .ok_or_else(|| TraceError::UnknownEntity(format!("reviewer {id}")))
    }

    /// The *effort level* of a review: the reviewer's expertise times the
    /// review length (§V parametrization #4), scaled by `1e-3` to keep
    /// values in a comfortable numeric range.
    pub fn effort_of(&self, review: &Review) -> f64 {
        let e = self
            .expertise
            .get(review.reviewer.index())
            .copied()
            .unwrap_or(0.0);
        e * review.length_chars as f64 * EFFORT_SCALE
    }

    /// The *feedback* of a review: its upvote count (§V parametrization #1).
    pub fn feedback_of(&self, review: &Review) -> f64 {
        review.upvotes
    }

    /// Ids of all workers with the given ground-truth class.
    pub fn workers_of_class(&self, class: WorkerClass) -> Vec<ReviewerId> {
        self.reviewers
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.id)
            .collect()
    }

    /// Per-worker `(mean effort, mean feedback)` observation points for a
    /// class — the fitting inputs of §IV-B (one point per worker, matching
    /// the paper's 18,176 / 1,312 / 212 point counts).
    pub fn effort_feedback_points(&self, class: WorkerClass) -> Vec<(f64, f64)> {
        self.workers_of_class(class)
            .into_iter()
            .filter_map(|id| {
                let reviews = self.reviews_by(id);
                if reviews.is_empty() {
                    return None;
                }
                let n = reviews.len() as f64;
                let eff = reviews.iter().map(|r| self.effort_of(r)).sum::<f64>() / n;
                let fb = reviews.iter().map(|r| self.feedback_of(r)).sum::<f64>() / n;
                Some((eff, fb))
            })
            .collect()
    }

    /// Workers with at least `min_reviews` reviews — the "200 honest
    /// workers (those who have at least 20 reviews in history)" filter of
    /// Fig. 8(a).
    pub fn prolific_workers(&self, class: WorkerClass, min_reviews: usize) -> Vec<ReviewerId> {
        self.workers_of_class(class)
            .into_iter()
            .filter(|id| self.by_reviewer[id.index()].len() >= min_reviews)
            .collect()
    }

    /// Mean star rating given by experts to `product`, or `None` if no
    /// expert reviewed it. This is the `l̄` ground truth of Eq. 5.
    pub fn expert_consensus(&self, product: ProductId) -> Option<f64> {
        let expert_stars: Vec<f64> = self
            .reviews_for(product)
            .iter()
            .filter(|r| {
                self.reviewer(r.reviewer)
                    .map(|rv| rv.is_expert)
                    .unwrap_or(false)
            })
            .map(|r| r.stars)
            .collect();
        if expert_stars.is_empty() {
            None
        } else {
            Some(expert_stars.iter().sum::<f64>() / expert_stars.len() as f64)
        }
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn tiny() -> TraceDataset {
        let products = vec![
            Product {
                id: ProductId(0),
                true_quality: 4.0,
            },
            Product {
                id: ProductId(1),
                true_quality: 2.0,
            },
        ];
        let reviewers = vec![
            Reviewer {
                id: ReviewerId(0),
                class: WorkerClass::Honest,
                campaign: None,
                is_expert: true,
            },
            Reviewer {
                id: ReviewerId(1),
                class: WorkerClass::NonCollusiveMalicious,
                campaign: None,
                is_expert: false,
            },
        ];
        let reviews = vec![
            Review {
                reviewer: ReviewerId(0),
                product: ProductId(0),
                round: 0,
                stars: 4.0,
                length_chars: 500,
                upvotes: 10.0,
            },
            Review {
                reviewer: ReviewerId(0),
                product: ProductId(1),
                round: 1,
                stars: 2.5,
                length_chars: 300,
                upvotes: 6.0,
            },
            Review {
                reviewer: ReviewerId(1),
                product: ProductId(0),
                round: 0,
                stars: 5.0,
                length_chars: 100,
                upvotes: 2.0,
            },
        ];
        TraceDataset::new(products, reviewers, reviews, vec![]).unwrap()
    }

    #[test]
    fn indices_and_queries() {
        let d = tiny();
        assert_eq!(d.reviews_by(ReviewerId(0)).len(), 2);
        assert_eq!(d.reviews_by(ReviewerId(1)).len(), 1);
        assert_eq!(d.reviews_for(ProductId(0)).len(), 2);
        assert_eq!(d.reviews_for(ProductId(1)).len(), 1);
        assert!(d.reviews_by(ReviewerId(9)).is_empty());
    }

    #[test]
    fn expertise_is_mean_upvotes() {
        let d = tiny();
        assert_eq!(d.expertise(ReviewerId(0)).unwrap(), 8.0);
        assert_eq!(d.expertise(ReviewerId(1)).unwrap(), 2.0);
        assert!(d.expertise(ReviewerId(5)).is_err());
    }

    #[test]
    fn effort_is_scaled_expertise_times_length() {
        let d = tiny();
        let r = &d.reviews()[0];
        assert!((d.effort_of(r) - 8.0 * 500.0 * 1e-3).abs() < 1e-12);
        assert_eq!(d.feedback_of(r), 10.0);
    }

    #[test]
    fn class_partition() {
        let d = tiny();
        assert_eq!(d.workers_of_class(WorkerClass::Honest), vec![ReviewerId(0)]);
        assert_eq!(
            d.workers_of_class(WorkerClass::CollusiveMalicious),
            Vec::<ReviewerId>::new()
        );
    }

    #[test]
    fn effort_feedback_points_one_per_worker() {
        let d = tiny();
        let pts = d.effort_feedback_points(WorkerClass::Honest);
        assert_eq!(pts.len(), 1);
        let (eff, fb) = pts[0];
        assert!(eff > 0.0);
        assert_eq!(fb, 8.0);
    }

    #[test]
    fn prolific_filter() {
        let d = tiny();
        assert_eq!(d.prolific_workers(WorkerClass::Honest, 2).len(), 1);
        assert!(d.prolific_workers(WorkerClass::Honest, 3).is_empty());
    }

    #[test]
    fn expert_consensus_uses_experts_only() {
        let d = tiny();
        // Product 0: expert (w0) says 4.0; non-expert w1's 5.0 ignored.
        assert_eq!(d.expert_consensus(ProductId(0)), Some(4.0));
        assert_eq!(d.expert_consensus(ProductId(1)), Some(2.5));
    }

    #[test]
    fn dense_ids_enforced() {
        let products = vec![Product {
            id: ProductId(1),
            true_quality: 3.0,
        }];
        assert!(TraceDataset::new(products, vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn dangling_review_rejected() {
        let reviews = vec![Review {
            reviewer: ReviewerId(0),
            product: ProductId(0),
            round: 0,
            stars: 3.0,
            length_chars: 10,
            upvotes: 0.0,
        }];
        assert!(TraceDataset::new(vec![], vec![], reviews, vec![]).is_err());
    }

    #[test]
    fn incremental_build_matches_batch_build() {
        // Replaying a synthetic trace entity-by-entity through the push_*
        // mutators must reproduce the batch-built dataset exactly,
        // including derived expertise bits — the serve-layer correctness
        // contract at the trace layer.
        let batch = crate::SyntheticConfig::small(17).generate();
        let mut inc = TraceDataset::empty();
        for p in batch.products() {
            inc.push_product(p.clone()).unwrap();
        }
        for r in batch.reviewers() {
            inc.push_reviewer(r.clone()).unwrap();
        }
        for c in batch.campaigns() {
            let mut empty = c.clone();
            let members = std::mem::take(&mut empty.members);
            inc.push_campaign(empty).unwrap();
            for m in members {
                inc.add_campaign_member(c.id, m).unwrap();
            }
        }
        for rv in batch.reviews() {
            inc.push_review(rv.clone()).unwrap();
        }
        assert_eq!(inc.products(), batch.products());
        assert_eq!(inc.reviewers(), batch.reviewers());
        assert_eq!(inc.reviews(), batch.reviews());
        assert_eq!(inc.campaigns(), batch.campaigns());
        for r in batch.reviewers() {
            assert_eq!(
                inc.expertise(r.id).unwrap().to_bits(),
                batch.expertise(r.id).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn push_mutators_validate() {
        let mut d = TraceDataset::empty();
        assert!(d
            .push_product(Product {
                id: ProductId(3),
                true_quality: 1.0
            })
            .is_err());
        assert!(d
            .push_reviewer(Reviewer {
                id: ReviewerId(1),
                class: WorkerClass::Honest,
                campaign: None,
                is_expert: false,
            })
            .is_err());
        assert!(d
            .push_review(Review {
                reviewer: ReviewerId(0),
                product: ProductId(0),
                round: 0,
                stars: 3.0,
                length_chars: 10,
                upvotes: 0.0,
            })
            .is_err());
        assert!(d.add_campaign_member(0, ReviewerId(0)).is_err());
    }

    #[test]
    fn invalid_stars_rejected() {
        let products = vec![Product {
            id: ProductId(0),
            true_quality: 3.0,
        }];
        let reviewers = vec![Reviewer {
            id: ReviewerId(0),
            class: WorkerClass::Honest,
            campaign: None,
            is_expert: false,
        }];
        let reviews = vec![Review {
            reviewer: ReviewerId(0),
            product: ProductId(0),
            round: 0,
            stars: 0.5,
            length_chars: 10,
            upvotes: 0.0,
        }];
        assert!(TraceDataset::new(products, reviewers, reviews, vec![]).is_err());
    }
}
