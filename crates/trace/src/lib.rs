//! # dcc-trace
//!
//! Review-trace substrate for the `dyncontract` workspace.
//!
//! The paper evaluates on a private Amazon trace (118,142 reviews by
//! 19,686 reviewers over 75,508 products, with 1,524 reviewers labelled
//! malicious by crawling underground recruitment sites). That dataset is
//! not public, so this crate provides a **deterministic synthetic
//! generator** calibrated to every statistic the paper reports:
//!
//! - worker-class counts (18,176 honest / 1,312 non-collusive malicious /
//!   212 collusive malicious in 47 communities — §V),
//! - the collusive community-size distribution (Table II),
//! - class-conditional effort→feedback responses that are concave with
//!   additive noise, so polynomial fits reproduce the "flat after
//!   quadratic" norm-of-residuals shape of Table III,
//! - inflated feedback for collusive workers via intra-community upvoting
//!   (Fig. 7).
//!
//! The paper's model parametrization (§V) is reproduced exactly:
//! *feedback* = helpful upvotes, *expertise* = a reviewer's average
//! upvotes, *length* = characters, *effort* = expertise × length (scaled).
//!
//! ## Example
//!
//! ```
//! use dcc_trace::{SyntheticConfig, WorkerClass};
//!
//! let trace = SyntheticConfig::small(42).generate();
//! assert!(!trace.reviewers().is_empty());
//! let honest = trace.workers_of_class(WorkerClass::Honest);
//! assert!(!honest.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod campaign;
mod columnar;
mod csv;
mod dataset;
mod error;
mod ids;
mod model;
mod stats;
mod synth;

pub use adversary::{
    AdversarialConfig, AdversaryPlan, AdversaryPlanConfig, CommunityMerge, CommunitySplit,
    SybilInflux, UnderReport, ADVERSARY_SCHEMA,
};
pub use campaign::{sample_community_size, Campaign, COMMUNITY_SIZE_DISTRIBUTION};
pub use columnar::{
    read_trace_columnar, write_trace_columnar, ColF64, ColU64, ColumnarBuilder, ColumnarTrace,
    TraceColumns, COLUMNAR_MAGIC, COLUMNAR_VERSION,
};
pub use csv::{read_trace_csv, write_trace_csv};
pub use dataset::TraceDataset;
pub use error::TraceError;
pub use ids::{ProductId, ReviewerId};
pub use model::{Product, Review, Reviewer, WorkerClass};
pub use stats::TraceSummary;
pub use synth::{ClassBehavior, SyntheticConfig};
