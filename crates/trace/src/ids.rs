use std::fmt;

/// Opaque identifier of a reviewer (worker) within a [`crate::TraceDataset`].
///
/// Identifiers are dense indices `0..n_reviewers`, which lets downstream
/// crates use them directly as graph vertices and array indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReviewerId(pub usize);

/// Opaque identifier of a product within a [`crate::TraceDataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProductId(pub usize);

impl ReviewerId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl ProductId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ReviewerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for ProductId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ReviewerId {
    fn from(v: usize) -> Self {
        ReviewerId(v)
    }
}

impl From<usize> for ProductId {
    fn from(v: usize) -> Self {
        ProductId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(ReviewerId(1) < ReviewerId(2));
        assert_eq!(ReviewerId(7).to_string(), "w7");
        assert_eq!(ProductId(3).to_string(), "p3");
        assert_eq!(ReviewerId::from(4).index(), 4);
        assert_eq!(ProductId::from(9).index(), 9);
    }
}
