//! The `dcc-trace-col/1` binary columnar trace format.
//!
//! Row-oriented CSV caps both ingest speed and memory layout well below
//! the ROADMAP's million-worker target: every load re-parses text and
//! materializes one struct per row. This module stores a trace as
//! per-column contiguous little-endian sections behind a fixed,
//! checksummed header, so loading is a single `fs::read` plus an O(1)
//! header validation, and column access borrows directly from the loaded
//! byte buffer without re-parsing or per-row materialization.
//!
//! ## File layout
//!
//! All integers are little-endian. The header is 72 bytes:
//!
//! | offset | bytes | field |
//! |---|---|---|
//! | 0  | 8 | magic `b"DCCTRCOL"` |
//! | 8  | 4 | version (`1`) |
//! | 12 | 4 | reserved (`0`) |
//! | 16 | 8 | `n_products` |
//! | 24 | 8 | `n_reviewers` |
//! | 32 | 8 | `n_reviews` |
//! | 40 | 8 | `n_campaigns` |
//! | 48 | 8 | `n_campaign_members` |
//! | 56 | 8 | `n_campaign_targets` |
//! | 64 | 8 | FNV-1a 64 checksum of every byte after the header |
//!
//! The body is the following column sections, contiguous and in this
//! order (`Option<usize>` campaign membership encodes `None` as
//! `u64::MAX`; CSR = offsets array of length `n_campaigns + 1` starting
//! at 0 and ending at the member/target count):
//!
//! 1. `products.true_quality` — `n_products × f64`
//! 2. `reviewers.class` — `n_reviewers × u8` (0 = H, 1 = N, 2 = C)
//! 3. `reviewers.campaign` — `n_reviewers × u64`
//! 4. `reviewers.is_expert` — `n_reviewers × u8`
//! 5. `reviews.reviewer` — `n_reviews × u64`
//! 6. `reviews.product` — `n_reviews × u64`
//! 7. `reviews.round` — `n_reviews × u64`
//! 8. `reviews.stars` — `n_reviews × f64`
//! 9. `reviews.length_chars` — `n_reviews × u64`
//! 10. `reviews.upvotes` — `n_reviews × f64`
//! 11. `campaigns.member_offsets` — CSR `(n_campaigns + 1) × u64`
//! 12. `campaigns.members` — `n_campaign_members × u64`
//! 13. `campaigns.target_offsets` — CSR `(n_campaigns + 1) × u64`
//! 14. `campaigns.targets` — `n_campaign_targets × u64`
//!
//! See `docs/trace.md` for the full specification.

use crate::{
    Campaign, Product, ProductId, Review, Reviewer, ReviewerId, TraceDataset, TraceError,
    WorkerClass,
};
use std::fs;
use std::marker::PhantomData;
use std::ops::Range;
use std::path::Path;

/// The 8-byte file magic.
pub const COLUMNAR_MAGIC: [u8; 8] = *b"DCCTRCOL";
/// The format version this module reads and writes.
pub const COLUMNAR_VERSION: u32 = 1;
/// Sentinel for "no campaign" in the reviewer campaign column.
const NO_CAMPAIGN: u64 = u64::MAX;
/// Header length in bytes (see the module docs for the field layout).
const HEADER_LEN: usize = 72;

/// FNV-1a 64-bit over a byte slice (the same hash family the batch memo
/// uses for content fingerprints; dependency-free and deterministic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corrupt(message: impl Into<String>) -> TraceError {
    TraceError::Corrupt(message.into())
}

/// The decoded fixed header of a columnar trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    n_products: usize,
    n_reviewers: usize,
    n_reviews: usize,
    n_campaigns: usize,
    n_members: usize,
    n_targets: usize,
    checksum: u64,
}

impl Header {
    /// Body length implied by the counts, or `None` on overflow.
    fn body_len(&self) -> Option<usize> {
        let mut total = 0usize;
        for (count, width) in [
            (self.n_products, 8),
            (self.n_reviewers, 1),
            (self.n_reviewers, 8),
            (self.n_reviewers, 1),
            (self.n_reviews, 8 * 6),
            (self.n_campaigns.checked_add(1)?, 8 * 2),
            (self.n_members, 8),
            (self.n_targets, 8),
        ] {
            total = total.checked_add(count.checked_mul(width)?)?;
        }
        Some(total)
    }
}

fn read_u64_at(buf: &[u8], offset: usize) -> u64 {
    let mut b = [0u8; 8];
    if let Some(slice) = buf.get(offset..offset + 8) {
        b.copy_from_slice(slice);
    }
    u64::from_le_bytes(b)
}

fn read_u32_at(buf: &[u8], offset: usize) -> u32 {
    let mut b = [0u8; 4];
    if let Some(slice) = buf.get(offset..offset + 4) {
        b.copy_from_slice(slice);
    }
    u32::from_le_bytes(b)
}

fn usize_at(buf: &[u8], offset: usize, what: &str) -> Result<usize, TraceError> {
    usize::try_from(read_u64_at(buf, offset))
        .map_err(|_| corrupt(format!("{what} does not fit in usize")))
}

/// A zero-copy `u64` column: a borrowed little-endian byte section of
/// the loaded buffer, decoded element-wise on access (`from_le_bytes`
/// compiles to a plain load on little-endian targets).
#[derive(Debug, Clone, Copy)]
pub struct ColU64<'a> {
    bytes: &'a [u8],
    _marker: PhantomData<u64>,
}

impl<'a> ColU64<'a> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Element `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<u64> {
        let s = self.bytes.get(i * 8..i * 8 + 8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(u64::from_le_bytes(b))
    }

    /// Iterates the column in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + 'a {
        self.bytes.chunks_exact(8).map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            u64::from_le_bytes(b)
        })
    }
}

/// A zero-copy `f64` column over a borrowed little-endian byte section.
#[derive(Debug, Clone, Copy)]
pub struct ColF64<'a> {
    bytes: &'a [u8],
    _marker: PhantomData<f64>,
}

impl<'a> ColF64<'a> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Element `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<f64> {
        let s = self.bytes.get(i * 8..i * 8 + 8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(f64::from_le_bytes(b))
    }

    /// Iterates the column in order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        self.bytes.chunks_exact(8).map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            f64::from_le_bytes(b)
        })
    }
}

/// All columns of a loaded trace, borrowed directly from the underlying
/// byte buffer — the struct-of-arrays view the hot path consumes.
#[derive(Debug, Clone, Copy)]
pub struct TraceColumns<'a> {
    /// Products: ground-truth quality per product (ids are dense `0..n`).
    pub product_quality: ColF64<'a>,
    /// Reviewers: class code per reviewer (0 = H, 1 = N, 2 = C).
    pub reviewer_class: &'a [u8],
    /// Reviewers: campaign id per reviewer (`u64::MAX` = none).
    pub reviewer_campaign: ColU64<'a>,
    /// Reviewers: expert flag per reviewer (0/1).
    pub reviewer_expert: &'a [u8],
    /// Reviews: reviewer index per review.
    pub review_reviewer: ColU64<'a>,
    /// Reviews: product index per review.
    pub review_product: ColU64<'a>,
    /// Reviews: round per review.
    pub review_round: ColU64<'a>,
    /// Reviews: star rating per review.
    pub review_stars: ColF64<'a>,
    /// Reviews: length in characters per review.
    pub review_length: ColU64<'a>,
    /// Reviews: upvotes (feedback) per review.
    pub review_upvotes: ColF64<'a>,
    /// Campaign membership CSR offsets (length `n_campaigns + 1`).
    pub campaign_member_offsets: ColU64<'a>,
    /// Campaign membership CSR data (reviewer indices).
    pub campaign_members: ColU64<'a>,
    /// Campaign target CSR offsets (length `n_campaigns + 1`).
    pub campaign_target_offsets: ColU64<'a>,
    /// Campaign target CSR data (product indices).
    pub campaign_targets: ColU64<'a>,
}

/// A loaded `dcc-trace-col/1` trace: the raw byte buffer plus its
/// validated header. Column accessors borrow sections of the buffer
/// directly (see [`TraceColumns`]); nothing is re-parsed after load.
#[derive(Debug, Clone)]
pub struct ColumnarTrace {
    buf: Vec<u8>,
    header: Header,
}

impl ColumnarTrace {
    /// Validates and adopts a raw file image.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] on a short or oversized buffer,
    /// bad magic, unsupported version, or checksum mismatch.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, TraceError> {
        if buf.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "truncated header: {} bytes, need {HEADER_LEN}",
                buf.len()
            )));
        }
        if buf.get(0..8) != Some(&COLUMNAR_MAGIC[..]) {
            return Err(corrupt("bad magic: not a dcc-trace-col file"));
        }
        let version = read_u32_at(&buf, 8);
        if version != COLUMNAR_VERSION {
            return Err(corrupt(format!(
                "unsupported version {version}, this reader handles {COLUMNAR_VERSION}"
            )));
        }
        let header = Header {
            n_products: usize_at(&buf, 16, "n_products")?,
            n_reviewers: usize_at(&buf, 24, "n_reviewers")?,
            n_reviews: usize_at(&buf, 32, "n_reviews")?,
            n_campaigns: usize_at(&buf, 40, "n_campaigns")?,
            n_members: usize_at(&buf, 48, "n_campaign_members")?,
            n_targets: usize_at(&buf, 56, "n_campaign_targets")?,
            checksum: read_u64_at(&buf, 64),
        };
        let body = header
            .body_len()
            .ok_or_else(|| corrupt("section sizes overflow"))?;
        let expected = HEADER_LEN
            .checked_add(body)
            .ok_or_else(|| corrupt("file size overflows"))?;
        if buf.len() != expected {
            return Err(corrupt(format!(
                "body length mismatch: header implies {expected} bytes, file has {}",
                buf.len()
            )));
        }
        let computed = fnv1a(&buf[HEADER_LEN..]);
        if computed != header.checksum {
            return Err(corrupt(format!(
                "checksum mismatch: header says {:016x}, body hashes to {computed:016x}",
                header.checksum
            )));
        }
        Ok(ColumnarTrace { buf, header })
    }

    /// Converts an in-memory dataset to columnar form.
    pub fn from_dataset(trace: &TraceDataset) -> Self {
        let mut b = ColumnarBuilder::new();
        for p in trace.products() {
            b.push_product(p.true_quality);
        }
        for r in trace.reviewers() {
            b.push_reviewer(r.class, r.campaign, r.is_expert);
        }
        for r in trace.reviews() {
            b.push_review(
                r.reviewer.index(),
                r.product.index(),
                r.round,
                r.stars,
                r.length_chars,
                r.upvotes,
            );
        }
        for c in trace.campaigns() {
            b.push_campaign(
                c.members.iter().map(|m| m.index()),
                c.targets.iter().map(|t| t.index()),
            );
        }
        b.finish()
    }

    /// The raw file image (header + body).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of products.
    pub fn n_products(&self) -> usize {
        self.header.n_products
    }

    /// Number of reviewers (the `trace.workers` gauge).
    pub fn n_reviewers(&self) -> usize {
        self.header.n_reviewers
    }

    /// Number of reviews.
    pub fn n_reviews(&self) -> usize {
        self.header.n_reviews
    }

    /// Number of collusion campaigns.
    pub fn n_campaigns(&self) -> usize {
        self.header.n_campaigns
    }

    /// The stored FNV-1a 64 body checksum (doubles as a content
    /// fingerprint for caching layers).
    pub fn checksum(&self) -> u64 {
        self.header.checksum
    }

    fn ranges(&self) -> [Range<usize>; 14] {
        let h = &self.header;
        let mut cursor = HEADER_LEN;
        let mut next = |len: usize| {
            let start = cursor;
            cursor += len;
            start..cursor
        };
        [
            next(h.n_products * 8),      // product_quality
            next(h.n_reviewers),         // reviewer_class
            next(h.n_reviewers * 8),     // reviewer_campaign
            next(h.n_reviewers),         // reviewer_expert
            next(h.n_reviews * 8),       // review_reviewer
            next(h.n_reviews * 8),       // review_product
            next(h.n_reviews * 8),       // review_round
            next(h.n_reviews * 8),       // review_stars
            next(h.n_reviews * 8),       // review_length
            next(h.n_reviews * 8),       // review_upvotes
            next((h.n_campaigns + 1) * 8), // member offsets
            next(h.n_members * 8),       // members
            next((h.n_campaigns + 1) * 8), // target offsets
            next(h.n_targets * 8),       // targets
        ]
    }

    /// The zero-copy struct-of-arrays view: every column borrows its
    /// byte section of the loaded buffer directly.
    pub fn columns(&self) -> TraceColumns<'_> {
        let [pq, rc, rcamp, rexp, vw, vp, vr, vs, vl, vu, mo, mm, to, tt] = self.ranges();
        let col_u64 = |r: Range<usize>| ColU64 {
            bytes: &self.buf[r],
            _marker: PhantomData,
        };
        let col_f64 = |r: Range<usize>| ColF64 {
            bytes: &self.buf[r],
            _marker: PhantomData,
        };
        TraceColumns {
            product_quality: col_f64(pq),
            reviewer_class: &self.buf[rc],
            reviewer_campaign: col_u64(rcamp),
            reviewer_expert: &self.buf[rexp],
            review_reviewer: col_u64(vw),
            review_product: col_u64(vp),
            review_round: col_u64(vr),
            review_stars: col_f64(vs),
            review_length: col_u64(vl),
            review_upvotes: col_f64(vu),
            campaign_member_offsets: col_u64(mo),
            campaign_members: col_u64(mm),
            campaign_target_offsets: col_u64(to),
            campaign_targets: col_u64(tt),
        }
    }

    /// Materializes the row-oriented [`TraceDataset`] (which re-validates
    /// all referential invariants).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] on malformed CSR offsets or class
    /// codes, and propagates [`TraceDataset::new`] validation failures.
    pub fn to_dataset(&self) -> Result<TraceDataset, TraceError> {
        let cols = self.columns();

        let products: Vec<Product> = cols
            .product_quality
            .iter()
            .enumerate()
            .map(|(i, q)| Product {
                id: ProductId(i),
                true_quality: q,
            })
            .collect();

        let mut reviewers = Vec::with_capacity(self.header.n_reviewers);
        for i in 0..self.header.n_reviewers {
            let code = cols.reviewer_class.get(i).copied().unwrap_or(u8::MAX);
            let class = class_from_u8(code).ok_or_else(|| {
                corrupt(format!("reviewer {i} has unknown class code {code}"))
            })?;
            let campaign = match cols.reviewer_campaign.get(i).unwrap_or(NO_CAMPAIGN) {
                NO_CAMPAIGN => None,
                c => Some(usize::try_from(c).map_err(|_| {
                    corrupt(format!("reviewer {i} campaign id does not fit in usize"))
                })?),
            };
            reviewers.push(Reviewer {
                id: ReviewerId(i),
                class,
                campaign,
                is_expert: cols.reviewer_expert.get(i).copied().unwrap_or(0) != 0,
            });
        }

        let mut reviews = Vec::with_capacity(self.header.n_reviews);
        for i in 0..self.header.n_reviews {
            reviews.push(Review {
                reviewer: ReviewerId(col_usize(&cols.review_reviewer, i, "review reviewer")?),
                product: ProductId(col_usize(&cols.review_product, i, "review product")?),
                round: col_usize(&cols.review_round, i, "review round")?,
                stars: cols.review_stars.get(i).unwrap_or(f64::NAN),
                length_chars: col_usize(&cols.review_length, i, "review length")?,
                upvotes: cols.review_upvotes.get(i).unwrap_or(f64::NAN),
            });
        }

        let members = csr(
            &cols.campaign_member_offsets,
            &cols.campaign_members,
            self.header.n_campaigns,
            "member",
        )?;
        let targets = csr(
            &cols.campaign_target_offsets,
            &cols.campaign_targets,
            self.header.n_campaigns,
            "target",
        )?;
        let campaigns: Vec<Campaign> = members
            .into_iter()
            .zip(targets)
            .enumerate()
            .map(|(id, (ms, ts))| Campaign {
                id,
                members: ms.into_iter().map(ReviewerId).collect(),
                targets: ts.into_iter().map(ProductId).collect(),
            })
            .collect();

        TraceDataset::new(products, reviewers, reviews, campaigns)
    }

    /// Writes the file image to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on any filesystem failure.
    pub fn write_file(&self, path: &Path) -> Result<(), TraceError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        fs::write(path, &self.buf)?;
        Ok(())
    }
}

fn col_usize(col: &ColU64<'_>, i: usize, what: &str) -> Result<usize, TraceError> {
    let v = col
        .get(i)
        .ok_or_else(|| corrupt(format!("{what} column too short at {i}")))?;
    usize::try_from(v).map_err(|_| corrupt(format!("{what} {v} does not fit in usize")))
}

fn class_from_u8(code: u8) -> Option<WorkerClass> {
    match code {
        0 => Some(WorkerClass::Honest),
        1 => Some(WorkerClass::NonCollusiveMalicious),
        2 => Some(WorkerClass::CollusiveMalicious),
        _ => None,
    }
}

fn class_to_u8(class: WorkerClass) -> u8 {
    match class {
        WorkerClass::Honest => 0,
        WorkerClass::NonCollusiveMalicious => 1,
        WorkerClass::CollusiveMalicious => 2,
    }
}

/// Decodes one CSR (offsets + data) pair into per-campaign index lists,
/// validating monotonicity and bounds.
fn csr(
    offsets: &ColU64<'_>,
    data: &ColU64<'_>,
    n_campaigns: usize,
    what: &str,
) -> Result<Vec<Vec<usize>>, TraceError> {
    let mut out = Vec::with_capacity(n_campaigns);
    let mut prev = 0usize;
    for c in 0..n_campaigns {
        let lo = col_usize(offsets, c, what)?;
        let hi = col_usize(offsets, c + 1, what)?;
        if lo != prev || hi < lo || hi > data.len() {
            return Err(corrupt(format!(
                "campaign {c} has malformed {what} offsets [{lo}, {hi}) over {} entries",
                data.len()
            )));
        }
        prev = hi;
        let mut items = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            items.push(col_usize(data, i, what)?);
        }
        out.push(items);
    }
    if prev != data.len() {
        return Err(corrupt(format!(
            "{what} CSR covers {prev} of {} entries",
            data.len()
        )));
    }
    Ok(out)
}

/// Streaming builder for [`ColumnarTrace`]: rows are appended directly
/// into per-column little-endian buffers, so producers (the synthetic
/// generator in particular) never materialize `Vec<Reviewer>` /
/// `Vec<Review>` struct rows.
#[derive(Debug, Default)]
pub struct ColumnarBuilder {
    product_quality: Vec<u8>,
    reviewer_class: Vec<u8>,
    reviewer_campaign: Vec<u8>,
    reviewer_expert: Vec<u8>,
    review_reviewer: Vec<u8>,
    review_product: Vec<u8>,
    review_round: Vec<u8>,
    review_stars: Vec<u8>,
    review_length: Vec<u8>,
    review_upvotes: Vec<u8>,
    member_offsets: Vec<u8>,
    members: Vec<u8>,
    target_offsets: Vec<u8>,
    targets: Vec<u8>,
    n_campaigns: usize,
    n_members: usize,
    n_targets: usize,
}

impl ColumnarBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ColumnarBuilder::default()
    }

    /// Appends one product (ids are implicit: dense insertion order).
    pub fn push_product(&mut self, true_quality: f64) {
        self.product_quality
            .extend_from_slice(&true_quality.to_le_bytes());
    }

    /// The quality of an already-pushed product (generators need to look
    /// back at the catalogue while emitting reviews).
    pub fn product_quality(&self, i: usize) -> Option<f64> {
        let s = self.product_quality.get(i * 8..i * 8 + 8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(f64::from_le_bytes(b))
    }

    /// Number of products pushed so far.
    pub fn n_products(&self) -> usize {
        self.product_quality.len() / 8
    }

    /// Number of reviewers pushed so far.
    pub fn n_reviewers(&self) -> usize {
        self.reviewer_class.len()
    }

    /// Number of reviews pushed so far.
    pub fn n_reviews(&self) -> usize {
        self.review_stars.len() / 8
    }

    /// Appends one reviewer (ids are implicit: dense insertion order).
    pub fn push_reviewer(&mut self, class: WorkerClass, campaign: Option<usize>, is_expert: bool) {
        self.reviewer_class.push(class_to_u8(class));
        let camp = campaign.map_or(NO_CAMPAIGN, |c| c as u64);
        self.reviewer_campaign.extend_from_slice(&camp.to_le_bytes());
        self.reviewer_expert.push(u8::from(is_expert));
    }

    /// Appends one review.
    pub fn push_review(
        &mut self,
        reviewer: usize,
        product: usize,
        round: usize,
        stars: f64,
        length_chars: usize,
        upvotes: f64,
    ) {
        self.review_reviewer
            .extend_from_slice(&(reviewer as u64).to_le_bytes());
        self.review_product
            .extend_from_slice(&(product as u64).to_le_bytes());
        self.review_round
            .extend_from_slice(&(round as u64).to_le_bytes());
        self.review_stars.extend_from_slice(&stars.to_le_bytes());
        self.review_length
            .extend_from_slice(&(length_chars as u64).to_le_bytes());
        self.review_upvotes.extend_from_slice(&upvotes.to_le_bytes());
    }

    /// Appends one campaign with its member reviewer indices and target
    /// product indices.
    pub fn push_campaign(
        &mut self,
        members: impl IntoIterator<Item = usize>,
        targets: impl IntoIterator<Item = usize>,
    ) {
        for m in members {
            self.members.extend_from_slice(&(m as u64).to_le_bytes());
            self.n_members += 1;
        }
        for t in targets {
            self.targets.extend_from_slice(&(t as u64).to_le_bytes());
            self.n_targets += 1;
        }
        self.n_campaigns += 1;
        self.member_offsets
            .extend_from_slice(&(self.n_members as u64).to_le_bytes());
        self.target_offsets
            .extend_from_slice(&(self.n_targets as u64).to_le_bytes());
    }

    /// Assembles the final file image: header, column sections, checksum.
    pub fn finish(self) -> ColumnarTrace {
        let header = Header {
            n_products: self.product_quality.len() / 8,
            n_reviewers: self.reviewer_class.len(),
            n_reviews: self.review_stars.len() / 8,
            n_campaigns: self.n_campaigns,
            n_members: self.n_members,
            n_targets: self.n_targets,
            checksum: 0,
        };
        let body = header.body_len().unwrap_or(0);
        let mut buf = Vec::with_capacity(HEADER_LEN + body);
        buf.extend_from_slice(&COLUMNAR_MAGIC);
        buf.extend_from_slice(&COLUMNAR_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        for count in [
            header.n_products,
            header.n_reviewers,
            header.n_reviews,
            header.n_campaigns,
            header.n_members,
            header.n_targets,
        ] {
            buf.extend_from_slice(&(count as u64).to_le_bytes());
        }
        buf.extend_from_slice(&0u64.to_le_bytes()); // checksum placeholder

        // CSR offset sections lead with their implicit 0 entry.
        let zero = 0u64.to_le_bytes();
        let sections: [Vec<u8>; 14] = [
            self.product_quality,
            self.reviewer_class,
            self.reviewer_campaign,
            self.reviewer_expert,
            self.review_reviewer,
            self.review_product,
            self.review_round,
            self.review_stars,
            self.review_length,
            self.review_upvotes,
            prepend(zero.to_vec(), self.member_offsets),
            self.members,
            prepend(zero.to_vec(), self.target_offsets),
            self.targets,
        ];
        for section in sections {
            buf.extend_from_slice(&section);
            drop(section); // free each column as soon as it is copied
        }

        let checksum = fnv1a(&buf[HEADER_LEN..]);
        buf[64..72].copy_from_slice(&checksum.to_le_bytes());
        ColumnarTrace {
            buf,
            header: Header { checksum, ..header },
        }
    }
}

/// `head` followed by `tail` (CSR offset sections store the implicit
/// leading zero only in the file image, not while building).
fn prepend(mut head: Vec<u8>, tail: Vec<u8>) -> Vec<u8> {
    head.extend_from_slice(&tail);
    head
}

/// Writes `trace` to `path` in `dcc-trace-col/1` form.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on filesystem failures.
pub fn write_trace_columnar(trace: &TraceDataset, path: &Path) -> Result<(), TraceError> {
    ColumnarTrace::from_dataset(trace).write_file(path)
}

/// Loads a `dcc-trace-col/1` file.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on filesystem failures and
/// [`TraceError::Corrupt`] when validation rejects the image.
pub fn read_trace_columnar(path: &Path) -> Result<ColumnarTrace, TraceError> {
    ColumnarTrace::from_bytes(fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticConfig;

    fn small() -> TraceDataset {
        SyntheticConfig::small(17).generate()
    }

    fn assert_same(a: &TraceDataset, b: &TraceDataset) {
        assert_eq!(a.products(), b.products());
        assert_eq!(a.reviewers(), b.reviewers());
        assert_eq!(a.reviews(), b.reviews());
        assert_eq!(a.campaigns(), b.campaigns());
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let trace = small();
        let col = ColumnarTrace::from_dataset(&trace);
        let back = col.to_dataset().unwrap();
        assert_same(&trace, &back);
        // Fields survive with exact bits, not just approximate values.
        for (x, y) in trace.reviews().iter().zip(back.reviews()) {
            assert_eq!(x.stars.to_bits(), y.stars.to_bits());
            assert_eq!(x.upvotes.to_bits(), y.upvotes.to_bits());
        }
    }

    #[test]
    fn file_roundtrip_and_info_counts() {
        let trace = small();
        let path = std::env::temp_dir().join(format!("dcc_col_rt_{}.dcol", std::process::id()));
        write_trace_columnar(&trace, &path).unwrap();
        let col = read_trace_columnar(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(col.n_products(), trace.products().len());
        assert_eq!(col.n_reviewers(), trace.reviewers().len());
        assert_eq!(col.n_reviews(), trace.reviews().len());
        assert_eq!(col.n_campaigns(), trace.campaigns().len());
        assert_same(&trace, &col.to_dataset().unwrap());
    }

    #[test]
    fn encoding_is_deterministic() {
        let trace = small();
        let a = ColumnarTrace::from_dataset(&trace);
        let b = ColumnarTrace::from_dataset(&trace);
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn columns_view_matches_rows() {
        let trace = small();
        let col = ColumnarTrace::from_dataset(&trace);
        let cols = col.columns();
        assert_eq!(cols.review_stars.len(), trace.reviews().len());
        for (i, r) in trace.reviews().iter().enumerate().take(50) {
            assert_eq!(cols.review_reviewer.get(i), Some(r.reviewer.index() as u64));
            assert_eq!(
                cols.review_stars.get(i).map(f64::to_bits),
                Some(r.stars.to_bits())
            );
            assert_eq!(cols.review_length.get(i), Some(r.length_chars as u64));
        }
        for (i, r) in trace.reviewers().iter().enumerate().take(50) {
            assert_eq!(cols.reviewer_class[i], class_to_u8(r.class));
        }
        // CSR membership matches campaigns.
        for (c, campaign) in trace.campaigns().iter().enumerate() {
            let lo = cols.campaign_member_offsets.get(c).unwrap() as usize;
            let hi = cols.campaign_member_offsets.get(c + 1).unwrap() as usize;
            let members: Vec<usize> = (lo..hi)
                .map(|i| cols.campaign_members.get(i).unwrap() as usize)
                .collect();
            let want: Vec<usize> = campaign.members.iter().map(|m| m.index()).collect();
            assert_eq!(members, want);
        }
    }

    #[test]
    fn truncated_file_is_rejected() {
        let col = ColumnarTrace::from_dataset(&small());
        let bytes = col.as_bytes();
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN + 9, bytes.len() - 1] {
            let err = ColumnarTrace::from_bytes(bytes[..cut].to_vec()).unwrap_err();
            assert!(matches!(err, TraceError::Corrupt(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let col = ColumnarTrace::from_dataset(&small());

        let mut bad_magic = col.as_bytes().to_vec();
        bad_magic[0] ^= 0xff;
        let err = ColumnarTrace::from_bytes(bad_magic).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        let mut bad_version = col.as_bytes().to_vec();
        bad_version[8] = 99;
        let err = ColumnarTrace::from_bytes(bad_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        // Inflate a count: the body no longer matches the header.
        let mut bad_count = col.as_bytes().to_vec();
        bad_count[16..24].copy_from_slice(&(col.n_products() as u64 + 7).to_le_bytes());
        let err = ColumnarTrace::from_bytes(bad_count).unwrap_err();
        assert!(err.to_string().contains("length mismatch"), "{err}");
    }

    #[test]
    fn flipped_body_byte_fails_the_checksum() {
        let col = ColumnarTrace::from_dataset(&small());
        let mut bytes = col.as_bytes().to_vec();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x01;
        let err = ColumnarTrace::from_bytes(bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn corrupt_csr_offsets_are_rejected_at_materialization() {
        let trace = small();
        assert!(!trace.campaigns().is_empty());
        let col = ColumnarTrace::from_dataset(&trace);
        let [.., mo, _, _, _] = {
            // Recompute the member-offsets range through the public view:
            // poke the second offset (campaign 0's end) to a huge value.
            col.ranges()
        };
        let mut bytes = col.as_bytes().to_vec();
        let at = mo.start + 8;
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        // Fix the checksum so only the CSR is inconsistent.
        let sum = fnv1a(&bytes[HEADER_LEN..]);
        bytes[64..72].copy_from_slice(&sum.to_le_bytes());
        let poked = ColumnarTrace::from_bytes(bytes).unwrap();
        let err = poked.to_dataset().unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_trace_columnar(Path::new("/nonexistent/dcc.dcol")).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = TraceDataset::new(Vec::new(), Vec::new(), Vec::new(), Vec::new()).unwrap();
        let col = ColumnarTrace::from_dataset(&trace);
        let back = col.to_dataset().unwrap();
        assert!(back.products().is_empty());
        assert!(back.reviewers().is_empty());
    }
}
