//! Dynamic adversaries over the calibrated generator: communities that
//! split or merge across rounds, sybil influxes on configurable join
//! schedules, and strategically under-reporting malicious workers.
//!
//! All adversarial behaviour is driven by a versioned, JSON-serializable
//! [`AdversaryPlan`] with the same determinism contract as
//! `dcc-faults`' `FaultPlan`: the plan is a fully materialized schedule
//! (no hidden randomness at apply time beyond the plan's own seed), so
//! `(base seed, plan)` determines the generated trace byte-for-byte.
//! Plans can be written by hand or sampled from an
//! [`AdversaryPlanConfig`] with a seeded RNG.
//!
//! # Application model
//!
//! [`AdversarialConfig::generate`] first runs the untouched base
//! generator ([`SyntheticConfig::generate`] — an empty plan therefore
//! yields the *identical* trace, which the golden snapshots rely on),
//! then applies the plan as a deterministic transformation in four
//! phases, each sorted for order independence within the plan:
//!
//! 1. **Splits** — the back half of a campaign's members secede at a
//!    round: a new campaign with fresh target products is appended, and
//!    the splinter's reviews from that round on are redirected to the
//!    new targets. Earlier rounds keep the shared history, exactly as a
//!    real community that fractures would.
//! 2. **Merges** — two campaigns join forces at a round: every member
//!    of both writes a bridge review on the first campaign's lead
//!    target, so the §IV-A co-review components fuse mid-stream (the
//!    case the streaming union-find in `dcc-serve` must absorb).
//! 3. **Sybil influxes** — `count` fresh collusive workers join a
//!    campaign at a round and review its targets once per remaining
//!    round with the collusive class behaviour.
//! 4. **Under-reports** — from a round on, a campaign's members damp
//!    their feedback (upvotes scaled by `factor`) and pull their star
//!    bias toward the truth by the same factor: strategic evasion of
//!    the collusion detector's inflation signal.
//!
//! Finally campaigns are renumbered dense in order of first member id
//! (empty ones — fully merged away — are dropped), which keeps
//! [`crate::TraceDataset`] replays protocol-valid for the streaming
//! service's dense-campaign-creation rule.

use crate::{
    Campaign, Product, ProductId, Review, Reviewer, ReviewerId, SyntheticConfig, TraceDataset,
    TraceError, WorkerClass,
};
use dcc_numerics::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Schema tag embedded in serialized plans; bumped on incompatible
/// layout changes.
pub const ADVERSARY_SCHEMA: &str = "dcc-adversary/1";

/// Fresh target products allocated to the splinter community of a
/// split (mirrors the base generator's per-campaign reservation).
const SPLIT_TARGETS: usize = 3;

/// A sybil influx: `count` new collusive workers join `campaign`
/// starting at `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SybilInflux {
    /// Base-trace campaign index the sybils join.
    pub campaign: usize,
    /// Round the sybils join and start reviewing.
    pub round: usize,
    /// Number of sybil workers (>= 1).
    pub count: usize,
}

/// A community split: the back half of `campaign`'s members secede at
/// `round` into a fresh campaign with fresh targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommunitySplit {
    /// Base-trace campaign index that fractures.
    pub campaign: usize,
    /// First round the splinter reviews its own targets.
    pub round: usize,
}

/// A community merge: `second`'s members join `first` at `round`, and
/// every member of both bridges onto `first`'s lead target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommunityMerge {
    /// Surviving base-trace campaign index.
    pub first: usize,
    /// Absorbed base-trace campaign index (dropped if left empty).
    pub second: usize,
    /// Round the bridge reviews land.
    pub round: usize,
}

/// Strategic under-reporting: from `from_round` on, the members of
/// `campaign` scale their upvotes and star bias by `factor` to evade
/// the inflation signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnderReport {
    /// Campaign index (resolved against post-split/merge membership).
    pub campaign: usize,
    /// First affected round.
    pub from_round: usize,
    /// Damping factor in `[0, 1]` (1 = no evasion, 0 = full evasion).
    pub factor: f64,
}

/// A complete, deterministic adversary schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdversaryPlan {
    /// Seed for the apply-time draws (sybil behaviour, bridge reviews,
    /// splinter target qualities). Equal `(base seed, plan)` pairs
    /// produce byte-identical traces.
    pub seed: u64,
    /// Sybil influxes.
    pub sybils: Vec<SybilInflux>,
    /// Community splits.
    pub splits: Vec<CommunitySplit>,
    /// Community merges.
    pub merges: Vec<CommunityMerge>,
    /// Under-reporting windows.
    pub underreports: Vec<UnderReport>,
}

impl AdversaryPlan {
    /// Whether the plan schedules no adversarial events at all.
    pub fn is_empty(&self) -> bool {
        self.sybils.is_empty()
            && self.splits.is_empty()
            && self.merges.is_empty()
            && self.underreports.is_empty()
    }

    /// Total number of scheduled adversarial events.
    pub fn len(&self) -> usize {
        self.sybils.len() + self.splits.len() + self.merges.len() + self.underreports.len()
    }

    /// Serializes the plan to JSON (schema-tagged).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(ADVERSARY_SCHEMA.into())),
            ("seed".into(), Json::u64(self.seed)),
            (
                "sybils".into(),
                Json::Arr(
                    self.sybils
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("campaign".into(), Json::idx(s.campaign)),
                                ("round".into(), Json::idx(s.round)),
                                ("count".into(), Json::idx(s.count)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "splits".into(),
                Json::Arr(
                    self.splits
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("campaign".into(), Json::idx(s.campaign)),
                                ("round".into(), Json::idx(s.round)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "merges".into(),
                Json::Arr(
                    self.merges
                        .iter()
                        .map(|m| {
                            Json::Obj(vec![
                                ("first".into(), Json::idx(m.first)),
                                ("second".into(), Json::idx(m.second)),
                                ("round".into(), Json::idx(m.round)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "underreports".into(),
                Json::Arr(
                    self.underreports
                        .iter()
                        .map(|u| {
                            Json::Obj(vec![
                                ("campaign".into(), Json::idx(u.campaign)),
                                ("from_round".into(), Json::idx(u.from_round)),
                                ("factor".into(), Json::num(u.factor)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes the plan to a JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Deserializes a plan from JSON, rejecting unknown schemas.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidDataset`] on a missing/unknown
    /// schema tag or malformed fields.
    pub fn from_json(doc: &Json) -> Result<AdversaryPlan, TraceError> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(ADVERSARY_SCHEMA) => {}
            Some(other) => {
                return Err(TraceError::InvalidDataset(format!(
                    "unknown adversary plan schema {other:?} (expected {ADVERSARY_SCHEMA:?})"
                )))
            }
            None => return Err(miss("schema")),
        }
        let seed = doc
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| miss("seed"))?;
        let field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_arr)
                .ok_or_else(|| miss(name))
        };
        let sybils = field("sybils")?
            .iter()
            .map(|s| {
                Ok(SybilInflux {
                    campaign: idx_of(s, "campaign")?,
                    round: idx_of(s, "round")?,
                    count: idx_of(s, "count")?,
                })
            })
            .collect::<Result<_, TraceError>>()?;
        let splits = field("splits")?
            .iter()
            .map(|s| {
                Ok(CommunitySplit {
                    campaign: idx_of(s, "campaign")?,
                    round: idx_of(s, "round")?,
                })
            })
            .collect::<Result<_, TraceError>>()?;
        let merges = field("merges")?
            .iter()
            .map(|m| {
                Ok(CommunityMerge {
                    first: idx_of(m, "first")?,
                    second: idx_of(m, "second")?,
                    round: idx_of(m, "round")?,
                })
            })
            .collect::<Result<_, TraceError>>()?;
        let underreports = field("underreports")?
            .iter()
            .map(|u| {
                Ok(UnderReport {
                    campaign: idx_of(u, "campaign")?,
                    from_round: idx_of(u, "from_round")?,
                    factor: u
                        .get("factor")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| miss("underreports.factor"))?,
                })
            })
            .collect::<Result<_, TraceError>>()?;
        Ok(AdversaryPlan {
            seed,
            sybils,
            splits,
            merges,
            underreports,
        })
    }

    /// Deserializes a plan from a JSON string.
    ///
    /// # Errors
    ///
    /// Same as [`AdversaryPlan::from_json`].
    pub fn from_json_str(text: &str) -> Result<AdversaryPlan, TraceError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Writes the plan to a file.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failure.
    pub fn save(&self, path: &std::path::Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_json_string()).map_err(TraceError::Io)
    }

    /// Reads a plan from a file.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failure and
    /// [`TraceError::InvalidDataset`] on malformed content.
    pub fn load(path: &std::path::Path) -> Result<AdversaryPlan, TraceError> {
        Self::from_json_str(&std::fs::read_to_string(path)?)
    }

    /// Validates event references against a base trace's shape.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidDataset`] for out-of-range campaign
    /// indices or rounds, degenerate merges, zero sybil counts, or
    /// factors outside `[0, 1]`.
    pub fn validate(&self, n_campaigns: usize, n_rounds: usize) -> Result<(), TraceError> {
        let bad = |msg: String| Err(TraceError::InvalidDataset(msg));
        let check_campaign = |what: &str, c: usize| {
            if c >= n_campaigns {
                bad(format!(
                    "{what} references campaign {c} but the base trace has {n_campaigns}"
                ))
            } else {
                Ok(())
            }
        };
        let check_round = |what: &str, r: usize| {
            if r >= n_rounds {
                bad(format!(
                    "{what} schedules round {r} but the base trace has {n_rounds} rounds"
                ))
            } else {
                Ok(())
            }
        };
        for s in &self.sybils {
            check_campaign("sybil influx", s.campaign)?;
            check_round("sybil influx", s.round)?;
            if s.count == 0 {
                return bad("sybil influx has count 0".into());
            }
        }
        for s in &self.splits {
            check_campaign("split", s.campaign)?;
            check_round("split", s.round)?;
        }
        for m in &self.merges {
            check_campaign("merge", m.first)?;
            check_campaign("merge", m.second)?;
            check_round("merge", m.round)?;
            if m.first == m.second {
                return bad(format!("merge of campaign {} with itself", m.first));
            }
        }
        for u in &self.underreports {
            check_campaign("under-report", u.campaign)?;
            check_round("under-report", u.from_round)?;
            if !(0.0..=1.0).contains(&u.factor) {
                return bad(format!(
                    "under-report factor {} outside [0, 1]",
                    u.factor
                ));
            }
        }
        Ok(())
    }
}

fn miss(name: &str) -> TraceError {
    TraceError::InvalidDataset(format!("adversary plan is missing field {name:?}"))
}

fn idx_of(doc: &Json, name: &str) -> Result<usize, TraceError> {
    doc.get(name).and_then(Json::as_idx).ok_or_else(|| miss(name))
}

/// Parameters of the seeded adversary-plan sampler. Probabilities are
/// per campaign (merges: per disjoint campaign pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryPlanConfig {
    /// RNG seed; the same seed and config always yield the same plan.
    pub seed: u64,
    /// Number of campaigns in the base trace.
    pub n_campaigns: usize,
    /// Number of rounds in the base trace.
    pub n_rounds: usize,
    /// Chance a campaign splits.
    pub split_prob: f64,
    /// Chance a disjoint campaign pair `(2k, 2k+1)` merges.
    pub merge_prob: f64,
    /// Chance a campaign receives a sybil influx.
    pub sybil_prob: f64,
    /// Influx sizes are drawn uniformly from `1..=max_sybils`.
    pub max_sybils: usize,
    /// Chance a campaign under-reports.
    pub underreport_prob: f64,
    /// Under-report factors are drawn uniformly from `[min_factor, 1)`.
    pub min_factor: f64,
}

impl Default for AdversaryPlanConfig {
    fn default() -> Self {
        AdversaryPlanConfig {
            seed: 42,
            n_campaigns: 8,
            n_rounds: 8,
            split_prob: 0.25,
            merge_prob: 0.25,
            sybil_prob: 0.25,
            max_sybils: 4,
            underreport_prob: 0.25,
            min_factor: 0.2,
        }
    }
}

impl AdversaryPlanConfig {
    /// Samples a concrete [`AdversaryPlan`] — deterministically in
    /// `(self, seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidDataset`] when a probability is
    /// outside `[0, 1]`, `min_factor` is outside `[0, 1]`, `max_sybils`
    /// is zero while `sybil_prob` is positive, or fewer than two rounds
    /// exist while any event probability is positive.
    pub fn generate(&self) -> Result<AdversaryPlan, TraceError> {
        let bad = |msg: String| Err(TraceError::InvalidDataset(msg));
        for (name, p) in [
            ("split_prob", self.split_prob),
            ("merge_prob", self.merge_prob),
            ("sybil_prob", self.sybil_prob),
            ("underreport_prob", self.underreport_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return bad(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if !(0.0..=1.0).contains(&self.min_factor) {
            return bad(format!("min_factor must be in [0, 1], got {}", self.min_factor));
        }
        if self.sybil_prob > 0.0 && self.max_sybils == 0 {
            return bad("max_sybils must be >= 1 when sybil_prob > 0".into());
        }
        let any_event = self.split_prob > 0.0
            || self.merge_prob > 0.0
            || self.sybil_prob > 0.0
            || self.underreport_prob > 0.0;
        if any_event && self.n_rounds < 2 {
            return bad("at least 2 rounds are needed to schedule mid-trace events".into());
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut plan = AdversaryPlan {
            seed: self.seed,
            ..AdversaryPlan::default()
        };
        // Mid-trace rounds only (1..n_rounds): round-0 churn is the
        // static case the base generator already covers.
        for campaign in 0..self.n_campaigns {
            if self.split_prob > 0.0 && rng.gen_bool(self.split_prob) {
                plan.splits.push(CommunitySplit {
                    campaign,
                    round: rng.gen_range(1..self.n_rounds),
                });
            }
            if self.sybil_prob > 0.0 && rng.gen_bool(self.sybil_prob) {
                plan.sybils.push(SybilInflux {
                    campaign,
                    round: rng.gen_range(1..self.n_rounds),
                    count: rng.gen_range(1..=self.max_sybils),
                });
            }
            if self.underreport_prob > 0.0 && rng.gen_bool(self.underreport_prob) {
                plan.underreports.push(UnderReport {
                    campaign,
                    from_round: rng.gen_range(1..self.n_rounds),
                    factor: rng.gen_range(self.min_factor..1.0),
                });
            }
        }
        let mut pair = 0usize;
        while pair + 1 < self.n_campaigns {
            if self.merge_prob > 0.0 && rng.gen_bool(self.merge_prob) {
                plan.merges.push(CommunityMerge {
                    first: pair,
                    second: pair + 1,
                    round: rng.gen_range(1..self.n_rounds),
                });
            }
            pair += 2;
        }
        Ok(plan)
    }
}

/// A base synthetic workload plus an adversary plan to apply over it.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialConfig {
    /// The calibrated base generator.
    pub base: SyntheticConfig,
    /// The adversarial schedule applied on top.
    pub plan: AdversaryPlan,
}

impl AdversarialConfig {
    /// Generates the adversarial trace.
    ///
    /// The base draw sequence is untouched — an empty plan returns the
    /// exact [`SyntheticConfig::generate`] trace — and all apply-time
    /// draws come from an RNG seeded by `(base seed, plan seed)`, so
    /// the result is byte-deterministic in the pair.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidDataset`] when the plan references
    /// campaigns or rounds outside the base trace's shape.
    pub fn generate(&self) -> Result<TraceDataset, TraceError> {
        let base = self.base.generate();
        if self.plan.is_empty() {
            return Ok(base);
        }
        self.plan
            .validate(base.campaigns().len(), self.base.n_rounds)?;

        let mut products: Vec<Product> = base.products().to_vec();
        let mut reviewers: Vec<Reviewer> = base.reviewers().to_vec();
        let mut reviews: Vec<Review> = base.reviews().to_vec();
        let mut campaigns: Vec<Campaign> = base.campaigns().to_vec();

        // Mix the two seeds so adversary draws vary with either half of
        // the determinism pair but depend on nothing else.
        let mut rng = StdRng::seed_from_u64(self.base.seed.rotate_left(32) ^ self.plan.seed);
        let cm = self.base.cm;
        let n_rounds = self.base.n_rounds.max(1);

        // --- Phase 1: splits -------------------------------------------
        let mut splits = self.plan.splits.clone();
        splits.sort_by_key(|s| (s.round, s.campaign));
        for split in &splits {
            let old = &campaigns[split.campaign];
            let members = old.members.clone();
            if members.len() < 2 {
                continue; // nothing left to secede (e.g. split twice)
            }
            let splinter: Vec<ReviewerId> = members[members.len() - members.len() / 2..].to_vec();
            let keep: Vec<ReviewerId> = members[..members.len() - members.len() / 2].to_vec();
            let old_targets = old.targets.clone();

            // Fresh targets for the splinter, qualities drawn like the
            // base catalogue's.
            let new_targets: Vec<ProductId> = (0..SPLIT_TARGETS)
                .map(|_| {
                    let id = ProductId(products.len());
                    products.push(Product {
                        id,
                        true_quality: rng.gen_range(1.5..5.0),
                    });
                    id
                })
                .collect();
            let new_cid = campaigns.len();
            campaigns[split.campaign].members = keep;
            campaigns.push(Campaign {
                id: new_cid,
                members: splinter.clone(),
                targets: new_targets.clone(),
            });
            let splinter_set: BTreeSet<ReviewerId> = splinter.iter().copied().collect();
            for m in &splinter {
                reviewers[m.index()].campaign = Some(new_cid);
            }
            // Redirect the splinter's post-split reviews off the old
            // shared targets (position-preserving).
            for review in reviews.iter_mut() {
                if review.round >= split.round && splinter_set.contains(&review.reviewer) {
                    if let Some(pos) = old_targets.iter().position(|t| *t == review.product) {
                        review.product = new_targets[pos % new_targets.len()];
                    }
                }
            }
        }

        // --- Phase 2: merges -------------------------------------------
        let mut merges = self.plan.merges.clone();
        merges.sort_by_key(|m| (m.round, m.first, m.second));
        for merge in &merges {
            let absorbed = std::mem::take(&mut campaigns[merge.second].members);
            let bridge_opt = campaigns[merge.first].targets.first().copied();
            let Some(bridge) = bridge_opt else {
                campaigns[merge.second].members = absorbed;
                continue;
            };
            let quality = products[bridge.index()].true_quality;
            let mut all: Vec<ReviewerId> = campaigns[merge.first].members.clone();
            all.extend(absorbed.iter().copied());
            for m in &absorbed {
                reviewers[m.index()].campaign = Some(merge.first);
            }
            campaigns[merge.first].members = all.clone();
            for member in &all {
                let stars = (quality + cm.star_bias + normal(&mut rng) * cm.star_noise)
                    .clamp(1.0, 5.0);
                let effort = draw_effort(&mut rng, &cm);
                let upvotes = (cm.effort_response.eval(effort)
                    + normal(&mut rng) * cm.noise_sd
                    + self.base.collusion_boost_per_partner * (all.len() - 1) as f64)
                    .max(0.1);
                reviews.push(Review {
                    reviewer: *member,
                    product: bridge,
                    round: merge.round,
                    stars,
                    length_chars: rng.gen_range(50..400),
                    upvotes,
                });
            }
        }

        // --- Phase 3: sybil influxes -----------------------------------
        let mut sybils = self.plan.sybils.clone();
        sybils.sort_by_key(|s| (s.round, s.campaign));
        for influx in &sybils {
            let targets = campaigns[influx.campaign].targets.clone();
            if targets.is_empty() {
                continue;
            }
            for _ in 0..influx.count {
                let id = ReviewerId(reviewers.len());
                reviewers.push(Reviewer {
                    id,
                    class: WorkerClass::CollusiveMalicious,
                    campaign: Some(influx.campaign),
                    is_expert: false,
                });
                campaigns[influx.campaign].members.push(id);
                let partners = campaigns[influx.campaign].members.len() - 1;
                for round in influx.round..n_rounds {
                    let target = targets[(round - influx.round) % targets.len()];
                    let quality = products[target.index()].true_quality;
                    let stars = (quality + cm.star_bias + normal(&mut rng) * cm.star_noise)
                        .clamp(1.0, 5.0);
                    let effort = draw_effort(&mut rng, &cm);
                    let upvotes = (cm.effort_response.eval(effort)
                        + normal(&mut rng) * cm.noise_sd
                        + self.base.collusion_boost_per_partner * partners as f64)
                        .max(0.1);
                    reviews.push(Review {
                        reviewer: id,
                        product: target,
                        round,
                        stars,
                        length_chars: rng.gen_range(50..400),
                        upvotes,
                    });
                }
            }
        }

        // --- Phase 4: under-reports ------------------------------------
        // Resolved against the membership standing after the structural
        // phases (a worker's `campaign` field), so split/merge movement
        // and sybils are covered.
        let mut underreports = self.plan.underreports.clone();
        underreports.sort_by(|a, b| {
            (a.from_round, a.campaign)
                .cmp(&(b.from_round, b.campaign))
                .then(a.factor.total_cmp(&b.factor))
        });
        for ur in &underreports {
            for review in reviews.iter_mut() {
                if review.round < ur.from_round {
                    continue;
                }
                let member = reviewers
                    .get(review.reviewer.index())
                    .is_some_and(|r| r.campaign == Some(ur.campaign));
                if !member {
                    continue;
                }
                review.upvotes = (review.upvotes * ur.factor).max(0.1);
                let quality = products[review.product.index()].true_quality;
                review.stars =
                    (quality + (review.stars - quality) * ur.factor).clamp(1.0, 5.0);
            }
        }

        // --- Renumber campaigns ----------------------------------------
        // Drop empty (fully merged-away) campaigns and renumber in order
        // of first member id, so a replay through the streaming service
        // creates campaigns densely, never skipping ahead.
        let mut keep: Vec<Campaign> = campaigns
            .into_iter()
            .filter(|c| !c.members.is_empty())
            .collect();
        keep.sort_by_key(|c| c.members.iter().map(|m| m.index()).min().unwrap_or(usize::MAX));
        for (new_id, c) in keep.iter_mut().enumerate() {
            for m in &c.members {
                reviewers[m.index()].campaign = Some(new_id);
            }
            c.id = new_id;
        }

        TraceDataset::new(products, reviewers, reviews, keep)
    }
}

/// A latent effort draw under a class behaviour, capped below the
/// response peak like the base generator's workers.
fn draw_effort(rng: &mut StdRng, behavior: &crate::ClassBehavior) -> f64 {
    let cap = behavior
        .effort_response
        .peak()
        .map(|p| 0.95 * p)
        .unwrap_or(f64::INFINITY);
    truncated_normal(
        rng,
        behavior.effort_mean,
        behavior.effort_sd,
        0.3,
        (behavior.effort_mean + 4.0 * behavior.effort_sd).min(cap),
    )
}

/// Standard-normal draw via Box–Muller (same scheme as the base
/// generator; a separate RNG stream, so the base sequence is untouched).
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal draw truncated (by clamping) to `[lo, hi]`.
fn truncated_normal<R: Rng>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    (mean + normal(rng) * sd).clamp(lo, hi)
}

#[cfg(test)]
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn busy_plan_for(seed: u64, base: &SyntheticConfig) -> AdversaryPlan {
        AdversaryPlanConfig {
            seed,
            n_campaigns: base.generate().campaigns().len(),
            n_rounds: base.n_rounds,
            split_prob: 0.5,
            merge_prob: 0.5,
            sybil_prob: 0.5,
            underreport_prob: 0.5,
            ..AdversaryPlanConfig::default()
        }
        .generate()
        .unwrap()
    }

    fn busy_plan(seed: u64) -> AdversaryPlan {
        busy_plan_for(seed, &SyntheticConfig::small(7))
    }

    fn traces_identical(a: &TraceDataset, b: &TraceDataset) -> bool {
        a.products() == b.products()
            && a.reviewers() == b.reviewers()
            && a.campaigns() == b.campaigns()
            && a.reviews().len() == b.reviews().len()
            && a.reviews().iter().zip(b.reviews()).all(|(x, y)| {
                x.reviewer == y.reviewer
                    && x.product == y.product
                    && x.round == y.round
                    && x.stars.to_bits() == y.stars.to_bits()
                    && x.length_chars == y.length_chars
                    && x.upvotes.to_bits() == y.upvotes.to_bits()
            })
    }

    #[test]
    fn empty_plan_is_byte_identical_to_base() {
        let base = SyntheticConfig::small(31).generate();
        let adv = AdversarialConfig {
            base: SyntheticConfig::small(31),
            plan: AdversaryPlan::default(),
        }
        .generate()
        .unwrap();
        assert!(traces_identical(&base, &adv));
    }

    #[test]
    fn generation_is_byte_deterministic_in_seed_and_plan() {
        let cfg = AdversarialConfig {
            base: SyntheticConfig::small(7),
            plan: busy_plan(3),
        };
        let a = cfg.generate().unwrap();
        let b = cfg.generate().unwrap();
        assert!(traces_identical(&a, &b), "same (seed, plan) must agree");

        let other_plan = AdversarialConfig {
            base: SyntheticConfig::small(7),
            plan: busy_plan(4),
        }
        .generate()
        .unwrap();
        assert!(!traces_identical(&a, &other_plan), "plan must matter");

        // Base-seed sensitivity, with a hand-written plan valid for any
        // small base (at least 3 campaigns exist at n_cm_target = 40).
        let modest = AdversaryPlan {
            seed: 9,
            sybils: vec![SybilInflux { campaign: 2, round: 3, count: 2 }],
            splits: vec![CommunitySplit { campaign: 0, round: 2 }],
            merges: vec![CommunityMerge { first: 0, second: 1, round: 5 }],
            underreports: vec![UnderReport { campaign: 1, from_round: 4, factor: 0.5 }],
        };
        let on_seed_7 = AdversarialConfig {
            base: SyntheticConfig::small(7),
            plan: modest.clone(),
        }
        .generate()
        .unwrap();
        let on_seed_8 = AdversarialConfig {
            base: SyntheticConfig::small(8),
            plan: modest,
        }
        .generate()
        .unwrap();
        assert!(!traces_identical(&on_seed_7, &on_seed_8), "base seed must matter");
    }

    #[test]
    fn plan_sampler_is_deterministic() {
        assert_eq!(busy_plan(5), busy_plan(5));
        assert_ne!(busy_plan(5), busy_plan(6));
        assert!(!busy_plan(5).is_empty());
    }

    #[test]
    fn json_round_trip_preserves_the_plan() {
        let plan = busy_plan(11);
        let back = AdversaryPlan::from_json_str(&plan.to_json_string()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut doc = busy_plan(1).to_json();
        if let Json::Obj(members) = &mut doc {
            members[0].1 = Json::Str("dcc-adversary/99".into());
        }
        let err = AdversaryPlan::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown adversary plan schema"), "{err}");
        let no_schema = Json::Obj(vec![]);
        assert!(AdversaryPlan::from_json(&no_schema).is_err());
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let base = SyntheticConfig::small(2);
        let n = base.generate().campaigns().len();
        for plan in [
            AdversaryPlan {
                sybils: vec![SybilInflux { campaign: n, round: 1, count: 2 }],
                ..AdversaryPlan::default()
            },
            AdversaryPlan {
                sybils: vec![SybilInflux { campaign: 0, round: 1, count: 0 }],
                ..AdversaryPlan::default()
            },
            AdversaryPlan {
                splits: vec![CommunitySplit { campaign: 0, round: 99 }],
                ..AdversaryPlan::default()
            },
            AdversaryPlan {
                merges: vec![CommunityMerge { first: 1, second: 1, round: 1 }],
                ..AdversaryPlan::default()
            },
            AdversaryPlan {
                underreports: vec![UnderReport { campaign: 0, from_round: 1, factor: 1.5 }],
                ..AdversaryPlan::default()
            },
        ] {
            let cfg = AdversarialConfig { base: base.clone(), plan };
            assert!(cfg.generate().is_err());
        }
    }

    #[test]
    fn invalid_sampler_configs_are_rejected() {
        for bad in [
            AdversaryPlanConfig { split_prob: 1.5, ..AdversaryPlanConfig::default() },
            AdversaryPlanConfig { min_factor: -0.1, ..AdversaryPlanConfig::default() },
            AdversaryPlanConfig { sybil_prob: 0.5, max_sybils: 0, ..AdversaryPlanConfig::default() },
            AdversaryPlanConfig { n_rounds: 1, ..AdversaryPlanConfig::default() },
        ] {
            assert!(bad.generate().is_err());
        }
    }

    #[test]
    fn split_creates_a_new_campaign_with_fresh_targets() {
        let base_cfg = SyntheticConfig::small(9);
        let base = base_cfg.generate();
        let n_products = base.products().len();
        let n_campaigns = base.campaigns().len();
        let trace = AdversarialConfig {
            base: base_cfg,
            plan: AdversaryPlan {
                seed: 1,
                splits: vec![CommunitySplit { campaign: 0, round: 2 }],
                ..AdversaryPlan::default()
            },
        }
        .generate()
        .unwrap();
        assert_eq!(trace.campaigns().len(), n_campaigns + 1);
        assert_eq!(trace.products().len(), n_products + SPLIT_TARGETS);
        // Every campaign's members carry the campaign's own (dense) id.
        for c in trace.campaigns() {
            assert!(!c.members.is_empty());
            for m in &c.members {
                assert_eq!(trace.reviewer(*m).unwrap().campaign, Some(c.id));
            }
        }
        // Campaign ids are dense and ordered by first member id (the
        // streaming-replay protocol requirement).
        let firsts: Vec<usize> = trace
            .campaigns()
            .iter()
            .map(|c| c.members.iter().map(|m| m.index()).min().unwrap())
            .collect();
        assert!(firsts.windows(2).all(|w| w[0] < w[1]), "{firsts:?}");
    }

    #[test]
    fn merge_moves_members_and_bridges_reviews() {
        let base_cfg = SyntheticConfig::small(12);
        let base = base_cfg.generate();
        let n_campaigns = base.campaigns().len();
        assert!(n_campaigns >= 2, "small config grows several campaigns");
        let a_size = base.campaigns()[0].size();
        let b_size = base.campaigns()[1].size();
        let bridge = base.campaigns()[0].targets[0];
        let trace = AdversarialConfig {
            base: base_cfg,
            plan: AdversaryPlan {
                seed: 2,
                merges: vec![CommunityMerge { first: 0, second: 1, round: 3 }],
                ..AdversaryPlan::default()
            },
        }
        .generate()
        .unwrap();
        assert_eq!(trace.campaigns().len(), n_campaigns - 1);
        assert_eq!(trace.campaigns()[0].size(), a_size + b_size);
        let bridge_reviews = trace
            .reviews_for(bridge)
            .iter()
            .filter(|r| r.round == 3)
            .count();
        assert!(
            bridge_reviews >= a_size + b_size,
            "all merged members bridge at the merge round"
        );
    }

    #[test]
    fn sybils_join_with_collusive_behavior() {
        let base_cfg = SyntheticConfig::small(14);
        let base = base_cfg.generate();
        let n_workers = base.reviewers().len();
        let trace = AdversarialConfig {
            base: base_cfg,
            plan: AdversaryPlan {
                seed: 3,
                sybils: vec![SybilInflux { campaign: 0, round: 4, count: 5 }],
                ..AdversaryPlan::default()
            },
        }
        .generate()
        .unwrap();
        assert_eq!(trace.reviewers().len(), n_workers + 5);
        for id in n_workers..n_workers + 5 {
            let r = trace.reviewer(ReviewerId(id)).unwrap();
            assert_eq!(r.class, WorkerClass::CollusiveMalicious);
            assert_eq!(r.campaign, Some(0));
            let reviews = trace.reviews_by(ReviewerId(id));
            assert!(!reviews.is_empty());
            assert!(reviews.iter().all(|rv| rv.round >= 4), "no pre-join reviews");
        }
    }

    #[test]
    fn under_reporting_damps_upvotes_and_star_bias() {
        let base_cfg = SyntheticConfig::small(16);
        let base = base_cfg.generate();
        let members: BTreeSet<ReviewerId> =
            base.campaigns()[0].members.iter().copied().collect();
        let trace = AdversarialConfig {
            base: base_cfg,
            plan: AdversaryPlan {
                seed: 4,
                underreports: vec![UnderReport { campaign: 0, from_round: 0, factor: 0.25 }],
                ..AdversaryPlan::default()
            },
        }
        .generate()
        .unwrap();
        for (orig, damped) in base.reviews().iter().zip(trace.reviews()) {
            if members.contains(&orig.reviewer) {
                assert!(damped.upvotes <= orig.upvotes);
                let q = base.product(orig.product).unwrap().true_quality;
                assert!(
                    (damped.stars - q).abs() <= (orig.stars - q).abs() + 1e-12,
                    "bias must shrink toward truth"
                );
            } else {
                assert_eq!(damped.upvotes.to_bits(), orig.upvotes.to_bits());
            }
        }
    }
}
