//! Property tests of the synthetic trace generator's invariants.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_trace::{SyntheticConfig, TraceDataset, WorkerClass};
use proptest::prelude::*;

fn tiny_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        0u64..1_000,    // seed
        10usize..60,    // honest
        0usize..20,     // ncm
        0usize..25,     // cm target
        1usize..6,      // rounds
    )
        .prop_map(|(seed, n_honest, n_ncm, n_cm, n_rounds)| {
            let mut cfg = SyntheticConfig::small(seed);
            cfg.n_honest = n_honest;
            cfg.n_ncm = n_ncm;
            cfg.n_cm_target = n_cm;
            cfg.n_rounds = n_rounds;
            // Keep the catalogue comfortably larger than the reserved
            // malicious targets.
            cfg.n_products = 400 + 8 * (n_ncm + n_cm);
            cfg
        })
}

fn check_structure(cfg: &SyntheticConfig, trace: &TraceDataset) -> Result<(), TestCaseError> {
    // Class counts.
    prop_assert_eq!(
        trace.workers_of_class(WorkerClass::Honest).len(),
        cfg.n_honest
    );
    prop_assert_eq!(
        trace.workers_of_class(WorkerClass::NonCollusiveMalicious).len(),
        cfg.n_ncm
    );
    let cm = trace.workers_of_class(WorkerClass::CollusiveMalicious).len();
    prop_assert!(cm >= cfg.n_cm_target);

    // Campaign structure.
    let mut seen = std::collections::HashSet::new();
    for c in trace.campaigns() {
        prop_assert!(c.size() >= 2);
        for m in &c.members {
            prop_assert!(seen.insert(*m), "worker in two campaigns");
        }
    }
    prop_assert_eq!(seen.len(), cm);

    // Every review references valid entities with sane values.
    for r in trace.reviews() {
        prop_assert!(trace.reviewer(r.reviewer).is_some());
        prop_assert!(trace.product(r.product).is_some());
        prop_assert!((1.0..=5.0).contains(&r.stars));
        prop_assert!(r.upvotes >= 0.0);
        prop_assert!(r.length_chars >= 1);
        prop_assert!(r.round < cfg.n_rounds.max(1));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants hold for arbitrary small configurations.
    #[test]
    fn generator_invariants(cfg in tiny_config()) {
        let trace = cfg.generate();
        check_structure(&cfg, &trace)?;
    }

    /// Generation is a pure function of the configuration.
    #[test]
    fn determinism(cfg in tiny_config()) {
        let a = cfg.generate();
        let b = cfg.generate();
        prop_assert_eq!(a.reviews(), b.reviews());
        prop_assert_eq!(a.reviewers(), b.reviewers());
    }

    /// Derived effort equals the intended (generator) effort: expertise ×
    /// length × 1e-3 round-trips through the length encoding.
    #[test]
    fn effort_encoding_consistency(cfg in tiny_config()) {
        let trace = cfg.generate();
        for r in trace.reviews().iter().take(100) {
            let eff = trace.effort_of(r);
            prop_assert!(eff.is_finite() && eff >= 0.0);
            // The worker's effort always sits below its class's peak (the
            // generator caps at 95% of the peak; allow rounding slack).
            let class = trace.reviewer(r.reviewer).unwrap().class;
            let peak = cfg.behavior(class).effort_response.peak().unwrap();
            prop_assert!(eff <= peak * 1.02, "effort {eff} beyond peak {peak}");
        }
    }

    /// Columnar encoding is a lossless bijection on datasets: encode →
    /// materialize → re-encode is byte-identical, and the materialized
    /// dataset preserves every field bit-exactly (floats via `to_bits`).
    #[test]
    fn columnar_roundtrip(cfg in tiny_config()) {
        let trace = cfg.generate();
        let col = dcc_trace::ColumnarTrace::from_dataset(&trace);
        let back = col.to_dataset().expect("materialize");

        // Bit-exact re-encoding: equal datasets produce identical bytes.
        let col2 = dcc_trace::ColumnarTrace::from_dataset(&back);
        prop_assert_eq!(col.as_bytes(), col2.as_bytes());
        prop_assert_eq!(col.checksum(), col2.checksum());

        // Field-level bit exactness, independent of the encoding.
        prop_assert_eq!(trace.reviewers(), back.reviewers());
        prop_assert_eq!(trace.campaigns(), back.campaigns());
        prop_assert_eq!(trace.reviews().len(), back.reviews().len());
        for (a, b) in trace.reviews().iter().zip(back.reviews()) {
            prop_assert_eq!(a.reviewer, b.reviewer);
            prop_assert_eq!(a.product, b.product);
            prop_assert_eq!(a.round, b.round);
            prop_assert_eq!(a.length_chars, b.length_chars);
            prop_assert_eq!(a.stars.to_bits(), b.stars.to_bits());
            prop_assert_eq!(a.upvotes.to_bits(), b.upvotes.to_bits());
        }
        for (a, b) in trace.products().iter().zip(back.products()) {
            prop_assert_eq!(a.true_quality.to_bits(), b.true_quality.to_bits());
        }
    }

    /// Streaming generation (`generate_columnar`) produces the same bytes
    /// as generating the row dataset and encoding it after the fact.
    #[test]
    fn streamed_generation_matches_encoded(cfg in tiny_config()) {
        let streamed = cfg.generate_columnar();
        let encoded = dcc_trace::ColumnarTrace::from_dataset(&cfg.generate());
        prop_assert_eq!(streamed.as_bytes(), encoded.as_bytes());
    }

    /// The full persistence cycle CSV -> columnar -> CSV is lossless:
    /// both ends re-encode to the same columnar bytes.
    #[test]
    fn csv_columnar_csv_cycle(seed in 0u64..25) {
        let mut cfg = SyntheticConfig::small(seed);
        cfg.n_honest = 25;
        cfg.n_ncm = 4;
        cfg.n_cm_target = 5;
        cfg.n_products = 480;
        let trace = cfg.generate();
        let base = std::env::temp_dir().join(format!(
            "dcc_pt_cycle_{}_{}",
            std::process::id(),
            seed
        ));
        let csv_dir = base.join("csv");
        let col_file = base.join("trace.dcol");
        dcc_trace::write_trace_csv(&trace, &csv_dir).expect("write csv");
        let from_csv = dcc_trace::read_trace_csv(&csv_dir).expect("read csv");
        dcc_trace::write_trace_columnar(&from_csv, &col_file).expect("write col");
        let from_col = dcc_trace::read_trace_columnar(&col_file)
            .expect("read col")
            .to_dataset()
            .expect("materialize");
        std::fs::remove_dir_all(&base).ok();
        let enc_csv = dcc_trace::ColumnarTrace::from_dataset(&from_csv);
        let enc_col = dcc_trace::ColumnarTrace::from_dataset(&from_col);
        prop_assert_eq!(enc_csv.as_bytes(), enc_col.as_bytes());
        // Campaign membership survives the whole cycle.
        prop_assert_eq!(from_csv.campaigns(), from_col.campaigns());
    }

    /// Any single-byte corruption of a columnar file is rejected: header
    /// damage fails validation, body damage fails the checksum.
    #[test]
    fn columnar_corruption_rejected(seed in 0u64..40, frac in 0.0f64..1.0) {
        let mut cfg = SyntheticConfig::small(seed);
        cfg.n_honest = 12;
        cfg.n_ncm = 2;
        cfg.n_cm_target = 2;
        cfg.n_products = 420;
        let col = dcc_trace::ColumnarTrace::from_dataset(&cfg.generate());
        let bytes = col.as_bytes();
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let mut idx = ((bytes.len() - 1) as f64 * frac) as usize;
        if (12..16).contains(&idx) {
            // The header's reserved field is ignored by the reader; flips
            // there are (by design) not detectable. Corrupt a count instead.
            idx += 4;
        }
        let mut bad = bytes.to_vec();
        bad[idx] ^= 0xff;
        prop_assert!(dcc_trace::ColumnarTrace::from_bytes(bad).is_err());
        // Truncation at the same point is rejected too.
        let truncated = bytes[..idx].to_vec();
        prop_assert!(dcc_trace::ColumnarTrace::from_bytes(truncated).is_err());
    }

    /// CSV round-trips the dataset exactly enough for the pipeline:
    /// identical reviews, reviewers, campaigns.
    #[test]
    fn csv_roundtrip(seed in 0u64..50) {
        let mut cfg = SyntheticConfig::small(seed);
        cfg.n_honest = 30;
        cfg.n_ncm = 5;
        cfg.n_cm_target = 6;
        cfg.n_products = 500;
        let trace = cfg.generate();
        let dir = std::env::temp_dir().join(format!(
            "dcc_pt_rt_{}_{}",
            std::process::id(),
            seed
        ));
        dcc_trace::write_trace_csv(&trace, &dir).expect("write");
        let back = dcc_trace::read_trace_csv(&dir).expect("read");
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(trace.reviewers(), back.reviewers());
        prop_assert_eq!(trace.reviews().len(), back.reviews().len());
        prop_assert_eq!(trace.campaigns().len(), back.campaigns().len());
        for (a, b) in trace.reviews().iter().zip(back.reviews()) {
            prop_assert_eq!(a.reviewer, b.reviewer);
            prop_assert_eq!(a.product, b.product);
            prop_assert_eq!(a.length_chars, b.length_chars);
            prop_assert!((a.upvotes - b.upvotes).abs() < 1e-9);
            prop_assert!((a.stars - b.stars).abs() < 1e-9);
        }
    }
}
