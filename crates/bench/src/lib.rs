//! # dcc-bench
//!
//! Criterion benchmarks for the `dyncontract` workspace: one bench per
//! paper table/figure (regenerating the artifact under the timer) plus
//! ablation benches for the design choices DESIGN.md calls out
//! (decomposed vs joint solving, parallel vs serial, discretization
//! sweeps) and micro-benchmarks of the hot kernels.
//!
//! Run with `cargo bench --workspace`. The benches default to the small
//! experiment scale so a full sweep completes in minutes; the shapes they
//! measure are scale-independent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcc_experiments::ExperimentScale;
use dcc_trace::TraceDataset;

/// The scale benches run at.
pub const BENCH_SCALE: ExperimentScale = ExperimentScale::Small;

/// The seed benches share.
pub const BENCH_SEED: u64 = 42;

/// Generates the shared bench trace.
pub fn bench_trace() -> TraceDataset {
    BENCH_SCALE.generate(BENCH_SEED)
}
