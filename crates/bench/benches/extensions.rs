//! Benches for the extension systems: the adaptive re-contracting loop,
//! the labeling market, and trace replay.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcc_bench::bench_trace;
use dcc_core::{
    design_contracts, replay_trace, AdaptiveAgent, AdaptiveConfig, AdaptiveSimulation,
    ConductModel, DesignConfig, ModelParams,
};
use dcc_detect::{run_pipeline, PipelineConfig};
use dcc_label::{LabelMarket, MarketConfig};
use dcc_numerics::Quadratic;
use std::hint::black_box;

fn bench_adaptive(c: &mut Criterion) {
    let agents: Vec<AdaptiveAgent> = (0..30)
        .map(|id| AdaptiveAgent {
            id,
            group: 0,
            base_omega: 0.0,
            base_weight: 1.0 + 0.1 * (id % 10) as f64,
            true_psi: Quadratic::new(-0.15, 2.5, 1.0),
            conduct: ConductModel::Stationary,
        })
        .collect();
    let params = ModelParams {
        mu: 1.0,
        ..ModelParams::default()
    };
    let mut group = c.benchmark_group("ext_adaptive");
    group.sample_size(10);
    for recontract in [0usize, 5] {
        group.bench_with_input(
            BenchmarkId::new("run40", recontract),
            &recontract,
            |b, &recontract| {
                let config = AdaptiveConfig {
                    recontract_every: recontract,
                    ..AdaptiveConfig::default()
                };
                b.iter(|| {
                    AdaptiveSimulation::new(params, config)
                        .run(black_box(&agents))
                        .expect("adaptive run")
                });
            },
        );
    }
    group.finish();
}

fn bench_label(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_label");
    group.sample_size(10);
    group.bench_function("market", |b| {
        b.iter(|| {
            LabelMarket::new(black_box(MarketConfig::default()))
                .run()
                .expect("market")
        });
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let trace = bench_trace();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config).expect("design");
    let mut group = c.benchmark_group("ext_replay");
    group.sample_size(10);
    group.bench_function("trace_replay", |b| {
        b.iter(|| {
            replay_trace(
                black_box(&trace),
                black_box(&detection),
                black_box(&design),
                &config.params,
            )
            .expect("replay")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_adaptive, bench_label, bench_replay);
criterion_main!(benches);
