//! E3 bench: class-level effort/feedback aggregation.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, Criterion};
use dcc_bench::bench_trace;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = bench_trace();
    c.bench_function("fig7/class_means", |b| {
        b.iter(|| dcc_experiments::fig7::run_on(black_box(&trace)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
