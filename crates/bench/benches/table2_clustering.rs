//! E2 bench: collusive community clustering (§IV-A).

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, Criterion};
use dcc_bench::bench_trace;
use dcc_detect::cluster_collusive;
use dcc_trace::WorkerClass;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = bench_trace();
    let mut suspected = trace.workers_of_class(WorkerClass::NonCollusiveMalicious);
    suspected.extend(trace.workers_of_class(WorkerClass::CollusiveMalicious));

    c.bench_function("table2/cluster_collusive", |b| {
        b.iter(|| cluster_collusive(black_box(&trace), black_box(&suspected)));
    });

    c.bench_function("table2/full_runner", |b| {
        b.iter(|| dcc_experiments::table2::run_on(black_box(&trace)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
