//! Scale bench: million-worker throughput of the columnar trace path.
//!
//! For each requested multiple of the paper's §V workload (~19.7k
//! workers at 1×) this harness:
//!
//! 1. streams a synthetic trace straight into a `dcc-trace-col/1`
//!    columnar buffer (`generate_columnar` — no `Vec<Reviewer>` is ever
//!    materialized),
//! 2. builds per-worker §IV-B subproblems directly from the column view
//!    (ground-truth classes; detection cost is not what this measures),
//!    and solves them through the struct-of-arrays kernel in fixed-size
//!    chunks so memory stays flat while utilities accumulate in input
//!    order,
//! 3. reports workers/sec for both phases plus peak RSS (`VmHWM`).
//!
//! Knobs (also used by CI):
//! - `DCC_SCALE_BENCH_SCALES` — comma-separated multiples, default
//!   `10,100`.
//! - `DCC_SCALE_BENCH_MIN_WPS` — optional end-to-end workers/sec floor;
//!   the run panics (fails `make scale-bench`) below it.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
#![allow(clippy::cast_precision_loss)]

use dcc_core::{
    solve_subproblems_columns, Discretization, FailurePolicy, ModelParams, SubproblemColumns,
};
use dcc_numerics::Quadratic;
use dcc_trace::SyntheticConfig;
use std::time::Instant;

/// Subproblems per solve chunk: large enough to amortize dispatch,
/// small enough that the transient `SubproblemColumns` stays in cache
/// territory and memory stays flat at 10M workers.
const CHUNK: usize = 65_536;

fn scaled(scale: usize, seed: u64) -> SyntheticConfig {
    let mut config = SyntheticConfig::paper_scale(seed);
    config.n_honest *= scale;
    config.n_ncm *= scale;
    config.n_cm_target *= scale;
    config.n_products *= scale;
    config
}

/// Peak resident set (VmHWM) in MiB, when the platform exposes it.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Runs one scale multiple; returns end-to-end workers/sec.
fn run_scale(scale: usize, pool: usize) -> f64 {
    let config = scaled(scale, 42);

    let t = Instant::now();
    let col = config.generate_columnar();
    let gen_secs = t.elapsed().as_secs_f64();
    let workers = col.n_reviewers();
    println!(
        "scale {scale}x: generated {workers} workers / {} reviews -> {} MiB columnar \
         in {gen_secs:.2}s ({:.0} workers/sec)",
        col.n_reviews(),
        col.as_bytes().len() / (1024 * 1024),
        workers as f64 / gen_secs
    );

    let params = ModelParams::default();
    let disc = Discretization::covering(20, 7.0).expect("discretization");
    let psi = Quadratic::new(-0.15, 2.5, 1.0);
    let columns = col.columns();

    let t = Instant::now();
    let mut total_utility = 0.0f64;
    let mut start = 0usize;
    while start < workers {
        let end = (start + CHUNK).min(workers);
        let mut sub = SubproblemColumns::with_capacity(end - start, end - start);
        for i in start..end {
            // Ground-truth class straight from the borrowed column:
            // 0 = honest, otherwise malicious (ω-constrained).
            let malicious = columns.reviewer_class.get(i).copied().unwrap_or(0) != 0;
            let omega = if malicious { 0.5 } else { 0.0 };
            let weight = 0.3 + (i % 7) as f64 * 0.5;
            sub.push(i, [i], omega, weight, psi, disc);
        }
        let (solution, _) =
            solve_subproblems_columns(sub.view(), &params, pool, FailurePolicy::Abort)
                .expect("solve");
        // Fixed-order accumulation; the solutions are dropped per chunk.
        for s in &solution.solutions {
            total_utility += s.built.requester_utility();
        }
        start = end;
    }
    let solve_secs = t.elapsed().as_secs_f64();
    let wps = workers as f64 / (gen_secs + solve_secs);
    println!(
        "scale {scale}x: solved {workers} subproblems (pool={pool}) in {solve_secs:.2}s \
         ({:.0} workers/sec), total requester utility {total_utility:.3}",
        workers as f64 / solve_secs
    );
    match peak_rss_mib() {
        Some(mib) => println!(
            "scale {scale}x: end-to-end {wps:.0} workers/sec, peak RSS {mib:.0} MiB"
        ),
        None => println!("scale {scale}x: end-to-end {wps:.0} workers/sec, peak RSS unavailable"),
    }
    wps
}

fn main() {
    let scales: Vec<usize> = std::env::var("DCC_SCALE_BENCH_SCALES")
        .unwrap_or_else(|_| "10,100".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let min_wps: Option<f64> = std::env::var("DCC_SCALE_BENCH_MIN_WPS")
        .ok()
        .and_then(|s| s.parse().ok());
    let pool = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "== columnar scale bench (paper scale ~19.7k workers at 1x, pool={pool}) ==\n\
         scales: {scales:?}, floor: {min_wps:?} workers/sec"
    );
    for &scale in &scales {
        let wps = run_scale(scale, pool);
        if let Some(floor) = min_wps {
            assert!(
                wps >= floor,
                "scale {scale}x: end-to-end throughput {wps:.0} workers/sec is below \
                 the DCC_SCALE_BENCH_MIN_WPS floor of {floor:.0}"
            );
        }
    }
}
