//! Engine bench: sequential vs pooled subproblem solving, and the value
//! of the engine's stage cache on a μ sweep.
//!
//! The pooled solve is required to be **bit-identical** to the
//! sequential one (see `dcc-engine`'s property tests), so the only
//! question this bench answers is wall-clock cost. Besides the criterion
//! groups, `main` prints a direct speedup report for `make engine-bench`;
//! on a single-CPU host the pool degenerates to the sequential path and
//! the honest answer is ~1.0×, which the report states rather than hides.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, BenchmarkId, Criterion};
use dcc_core::{
    solve_subproblems_pooled, solve_subproblems_recorded, DesignConfig, FailurePolicy,
    ModelParams, Subproblem,
};
use dcc_engine::{Engine, EngineConfig, RoundContext, StageKind};
use dcc_numerics::Quadratic;
use dcc_obs::{JsonRecorder, Metrics};
use dcc_trace::{SyntheticConfig, TraceDataset};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Pool scales the ISSUE calls for: sequential, one-socket, oversubscribed.
const POOLS: [usize; 3] = [1, 4, 16];

fn trace() -> TraceDataset {
    SyntheticConfig::small(2024).generate()
}

/// A design config with a fine effort grid, so each subproblem carries
/// enough solve work for the pool split to be measurable.
fn design_config() -> DesignConfig {
    DesignConfig {
        intervals: 80,
        ..DesignConfig::default()
    }
}

fn prepared_context(trace: &TraceDataset) -> RoundContext {
    let mut config = EngineConfig::for_trace(trace.clone());
    config.design = design_config();
    let mut ctx = RoundContext::new(config);
    Engine::new()
        .run_to(&mut ctx, StageKind::FitEffort)
        .expect("fit stage succeeds on a synthetic trace");
    ctx
}

/// Synthetic subproblems for the scale sweep, mirroring the shape the
/// fit stage produces without paying detection cost at every size.
fn synthetic_subproblems(n: usize, m: usize) -> Vec<Subproblem> {
    let disc = dcc_core::Discretization::covering(m, 7.0).unwrap();
    (0..n)
        .map(|i| Subproblem {
            id: i,
            members: vec![i],
            omega: if i % 4 == 0 { 0.5 } else { 0.0 },
            weight: 0.3 + (i % 7) as f64 * 0.5,
            psi: Quadratic::new(-0.15, 2.5, 1.0),
            disc,
        })
        .collect()
}

fn params() -> ModelParams {
    design_config().params
}

fn bench_pooled_solve(c: &mut Criterion) {
    let trace = trace();
    let ctx = prepared_context(&trace);
    let sps = ctx.prep().expect("prep stage ran").subproblems.clone();
    let params = params();

    let mut group = c.benchmark_group("engine_solve_trace");
    group.sample_size(10);
    for pool in POOLS {
        group.bench_with_input(BenchmarkId::new("pool", pool), &pool, |b, &pool| {
            b.iter(|| {
                solve_subproblems_pooled(black_box(&sps), &params, pool, FailurePolicy::Abort)
                    .expect("solve")
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("engine_solve_scale");
    group.sample_size(10);
    for n in [256usize, 2048] {
        let sps = synthetic_subproblems(n, 80);
        for pool in POOLS {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}_pool"), pool),
                &pool,
                |b, &pool| {
                    b.iter(|| {
                        solve_subproblems_pooled(
                            black_box(&sps),
                            &params,
                            pool,
                            FailurePolicy::Abort,
                        )
                        .expect("solve")
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_stage_cache(c: &mut Criterion) {
    let trace = trace();
    let engine = Engine::new();
    let mut group = c.benchmark_group("engine_cache");
    group.sample_size(10);

    // Cold: every μ rebuilds the context, so detection and ψ-fits rerun.
    group.bench_function("mu_sweep_cold", |b| {
        b.iter(|| {
            for mu in [1.0, 1.5, 2.0] {
                let mut config = EngineConfig::for_trace(trace.clone());
                config.design = design_config();
                config.design.params.mu = mu;
                let mut ctx = RoundContext::new(config);
                engine
                    .run_to(&mut ctx, StageKind::ConstructContracts)
                    .expect("design");
                black_box(ctx.design().unwrap().total_requester_utility);
            }
        });
    });

    // Warm: one context; μ invalidates solve-onward only.
    group.bench_function("mu_sweep_warm", |b| {
        b.iter(|| {
            let mut ctx = prepared_context(&trace);
            for mu in [1.0, 1.5, 2.0] {
                ctx.set_mu(mu);
                engine
                    .run_to(&mut ctx, StageKind::ConstructContracts)
                    .expect("design");
                black_box(ctx.design().unwrap().total_requester_utility);
            }
        });
    });
    group.finish();
}

fn bench_obs_overhead(c: &mut Criterion) {
    let sps = synthetic_subproblems(256, 80);
    let params = params();
    let mut group = c.benchmark_group("engine_obs");
    group.sample_size(10);
    group.bench_function("solve_plain", |b| {
        b.iter(|| {
            solve_subproblems_pooled(black_box(&sps), &params, 4, FailurePolicy::Abort)
                .expect("solve")
        });
    });
    group.bench_function("solve_noop_recorder", |b| {
        let metrics = Metrics::noop();
        b.iter(|| {
            solve_subproblems_recorded(
                black_box(&sps),
                &params,
                4,
                FailurePolicy::Abort,
                &metrics,
            )
            .expect("solve")
        });
    });
    group.bench_function("solve_json_recorder", |b| {
        b.iter(|| {
            let metrics = Metrics::new(Arc::new(JsonRecorder::new()));
            solve_subproblems_recorded(
                black_box(&sps),
                &params,
                4,
                FailurePolicy::Abort,
                &metrics,
            )
            .expect("solve")
        });
    });
    group.finish();
}

criterion_group!(
    engine_benches,
    bench_pooled_solve,
    bench_stage_cache,
    bench_obs_overhead
);

/// Times `f` over `reps` runs and returns the best (least noisy) run.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// The direct speedup report consumed by `make engine-bench`.
fn speedup_report() {
    let sps = synthetic_subproblems(2048, 80);
    let params = params();
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n== pooled solve speedup (2048 subproblems, m=80, {host} CPU(s) visible) ==");

    let seq = best_secs(3, || {
        black_box(
            solve_subproblems_pooled(&sps, &params, 1, FailurePolicy::Abort).expect("solve"),
        );
    });
    let reference =
        solve_subproblems_pooled(&sps, &params, 1, FailurePolicy::Abort).expect("solve");
    println!("pool=1 (sequential): {:.3}s", seq);

    for pool in [4usize, 16] {
        let pooled = best_secs(3, || {
            black_box(
                solve_subproblems_pooled(&sps, &params, pool, FailurePolicy::Abort)
                    .expect("solve"),
            );
        });
        let out = solve_subproblems_pooled(&sps, &params, pool, FailurePolicy::Abort)
            .expect("solve");
        let identical = out
            .0
            .solutions
            .iter()
            .zip(&reference.0.solutions)
            .all(|(a, b)| {
                a.built.requester_utility().to_bits() == b.built.requester_utility().to_bits()
            });
        println!(
            "speedup at pool={pool}: {:.2}x ({:.3}s, bit-identical to sequential: {identical})",
            seq / pooled,
            pooled
        );
    }
    if host == 1 {
        println!("note: only 1 CPU visible — pooled threads serialize, expect ~1.0x here.");
    }
}

/// The disabled-recorder overhead gate: `solve_subproblems_recorded`
/// with a `NoopRecorder` must cost the same as the uninstrumented solve
/// (it branches once on `Metrics::enabled` and delegates), so any
/// regression beyond noise means instrumentation leaked into the hot
/// path. Panics — and thereby fails `make engine-bench` — above 2%.
fn obs_overhead_report() {
    let sps = synthetic_subproblems(2048, 80);
    let params = params();
    println!("\n== observability overhead (2048 subproblems, m=80, pool=4) ==");

    let plain = best_secs(5, || {
        black_box(
            solve_subproblems_pooled(&sps, &params, 4, FailurePolicy::Abort).expect("solve"),
        );
    });
    let noop = Metrics::noop();
    let with_noop = best_secs(5, || {
        black_box(
            solve_subproblems_recorded(&sps, &params, 4, FailurePolicy::Abort, &noop)
                .expect("solve"),
        );
    });
    let with_json = best_secs(5, || {
        let metrics = Metrics::new(Arc::new(JsonRecorder::new()));
        black_box(
            solve_subproblems_recorded(&sps, &params, 4, FailurePolicy::Abort, &metrics)
                .expect("solve"),
        );
    });

    let overhead_pct = 100.0 * (with_noop / plain - 1.0);
    println!("plain solve:          {plain:.3}s");
    println!("noop recorder:        {with_noop:.3}s ({overhead_pct:+.2}% vs plain)");
    println!(
        "json recorder:        {with_json:.3}s ({:+.2}% vs plain)",
        100.0 * (with_json / plain - 1.0)
    );
    assert!(
        overhead_pct < 2.0,
        "disabled recorder must stay within 2% of the plain solve, measured {overhead_pct:+.2}%"
    );
    println!("noop overhead within the 2% budget");
}

fn main() {
    engine_benches();
    speedup_report();
    obs_overhead_report();
}
