//! E4 bench: polynomial fitting and the NoR table.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcc_bench::bench_trace;
use dcc_core::nor_table;
use dcc_numerics::polyfit;
use dcc_trace::WorkerClass;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = bench_trace();
    let points = trace.effort_feedback_points(WorkerClass::Honest);
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();

    let mut group = c.benchmark_group("table3");
    for degree in [1usize, 2, 6] {
        group.bench_with_input(BenchmarkId::new("polyfit", degree), &degree, |b, &d| {
            b.iter(|| polyfit(black_box(&xs), black_box(&ys), d).expect("fit"));
        });
    }
    group.bench_function("nor_table_deg6", |b| {
        b.iter(|| nor_table(black_box(&points), 6).expect("table"));
    });
    group.bench_function("full_runner", |b| {
        b.iter(|| dcc_experiments::table3::run_on(black_box(&trace)).expect("table3"));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
