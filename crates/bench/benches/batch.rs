//! Batch scheduler bench: cold vs warm grid throughput against the
//! naive per-scenario engine loop, on a 16-scenario μ-sweep.
//!
//! The batch runner is required to be **bit-identical** to the serial
//! per-scenario loop (see `dcc-batch`'s property tests), so the only
//! question here is wall-clock cost: how much does the shared
//! detect/fit/solve memo save when scenarios repeat the expensive
//! stages, and how much does scenario fan-out add on top. Besides the
//! criterion groups, `main` prints a throughput report for
//! `make batch-bench` that gates warm-cache throughput at >= 2x the
//! naive loop.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, Criterion};
use dcc_batch::{BatchOptions, BatchRunner, ScenarioGrid};
use dcc_engine::{Engine, EngineConfig, PoolSize, RoundContext, StageKind};
use dcc_trace::{SyntheticConfig, TraceDataset};
use std::hint::black_box;
use std::time::Instant;

/// The 16-scenario μ-sweep the acceptance gate measures.
const MUS: [f64; 16] = [
    2.0, 1.9, 1.8, 1.7, 1.6, 1.5, 1.4, 1.3, 1.2, 1.1, 1.0, 0.9, 0.8, 0.7, 0.6, 0.5,
];

fn trace() -> TraceDataset {
    let mut cfg = SyntheticConfig::small(2024);
    cfg.n_honest = 150;
    cfg.n_ncm = 40;
    cfg.n_cm_target = 40;
    cfg.n_products = 500;
    cfg.generate()
}

fn grid(trace: &TraceDataset) -> ScenarioGrid {
    ScenarioGrid::for_trace(trace.clone(), &MUS)
}

/// The baseline the memo competes with: a fresh engine context per
/// scenario, so detection and the ψ-fits rerun for every μ.
fn naive_sweep(trace: &TraceDataset) -> f64 {
    let mut total = 0.0;
    for &mu in &MUS {
        let mut config = EngineConfig::for_trace(trace.clone());
        config.design.params.mu = mu;
        let mut ctx = RoundContext::new(config);
        Engine::new()
            .run_to(&mut ctx, StageKind::ConstructContracts)
            .expect("design");
        total += ctx.design().expect("design ran").total_requester_utility;
    }
    total
}

fn batch_sweep(runner: &BatchRunner, grid: &ScenarioGrid) -> f64 {
    let report = runner.run(grid).expect("batch run");
    report
        .records
        .iter()
        .map(|r| {
            r.outcome()
                .expect("scenario succeeds")
                .design
                .total_requester_utility
        })
        .sum()
}

fn bench_batch_grid(c: &mut Criterion) {
    let trace = trace();
    let grid = grid(&trace);
    let mut group = c.benchmark_group("batch_grid");
    group.sample_size(10);

    group.bench_function("naive_loop", |b| {
        b.iter(|| black_box(naive_sweep(&trace)));
    });
    group.bench_function("batch_cold", |b| {
        b.iter(|| {
            let runner = BatchRunner::with_options(BatchOptions {
                pool: PoolSize::Sequential,
                ..BatchOptions::default()
            });
            black_box(batch_sweep(&runner, &grid))
        });
    });
    let warm = BatchRunner::with_options(BatchOptions {
        pool: PoolSize::Sequential,
        ..BatchOptions::default()
    });
    batch_sweep(&warm, &grid); // prime the memo
    group.bench_function("batch_warm", |b| {
        b.iter(|| black_box(batch_sweep(&warm, &grid)));
    });
    group.finish();
}

criterion_group!(batch_benches, bench_batch_grid);

/// Times `f` over `reps` runs and returns the best (least noisy) run.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// The throughput report and acceptance gate consumed by
/// `make batch-bench`: on the 16-scenario μ-sweep, a warm-memo batch
/// run must deliver at least 2x the naive per-scenario throughput —
/// that is what the shared detect/fit/solve memo exists for. The gate
/// uses the sequential pool, so the speedup measured is pure cache
/// reuse; the pooled number is reported on top.
fn throughput_report() {
    let trace = trace();
    let grid = grid(&trace);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n== batch grid throughput ({} scenarios, {} reviewers, {host} CPU(s) visible) ==",
        MUS.len(),
        trace.reviewers().len()
    );

    let reference = naive_sweep(&trace);
    let naive = best_secs(3, || {
        black_box(naive_sweep(&trace));
    });
    println!(
        "naive per-scenario loop:  {naive:.3}s ({:.1} scenarios/s)",
        MUS.len() as f64 / naive
    );

    let cold = best_secs(3, || {
        let runner = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Sequential,
            ..BatchOptions::default()
        });
        black_box(batch_sweep(&runner, &grid));
    });
    println!(
        "cold batch (serial):      {cold:.3}s ({:.1} scenarios/s, {:.2}x naive)",
        MUS.len() as f64 / cold,
        naive / cold
    );

    let warm_runner = BatchRunner::with_options(BatchOptions {
        pool: PoolSize::Sequential,
        ..BatchOptions::default()
    });
    let warm_total = batch_sweep(&warm_runner, &grid); // prime the memo
    assert!(
        (warm_total - reference).abs() <= 1e-9 * reference.abs().max(1.0),
        "batch total utility {warm_total} diverges from the naive loop's {reference}"
    );
    let warm = best_secs(3, || {
        black_box(batch_sweep(&warm_runner, &grid));
    });
    let speedup = naive / warm;
    println!(
        "warm batch (serial):      {warm:.3}s ({:.1} scenarios/s, {speedup:.2}x naive)",
        MUS.len() as f64 / warm
    );

    let pooled_runner = BatchRunner::new();
    batch_sweep(&pooled_runner, &grid);
    let pooled = best_secs(3, || {
        black_box(batch_sweep(&pooled_runner, &grid));
    });
    println!(
        "warm batch (auto pool):   {pooled:.3}s ({:.1} scenarios/s, {:.2}x naive)",
        MUS.len() as f64 / pooled,
        naive / pooled
    );
    if host == 1 {
        println!("note: only 1 CPU visible — the pooled run serializes, expect it near the serial number.");
    }

    assert!(
        speedup >= 2.0,
        "warm-cache grid throughput must be >= 2x the naive per-scenario loop, measured {speedup:.2}x"
    );
    println!("warm-cache speedup {speedup:.2}x meets the 2x gate");
}

fn main() {
    batch_benches();
    throughput_report();
}
