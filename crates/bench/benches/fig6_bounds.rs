//! E1 bench: regenerating the Fig. 6 bound series.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    for ms in [&[2usize, 8, 32][..], &dcc_experiments::fig6::DEFAULT_MS[..]] {
        group.bench_with_input(
            BenchmarkId::new("bound_series", format!("{}pts", ms.len())),
            ms,
            |b, ms| {
                b.iter(|| dcc_experiments::fig6::run(black_box(ms)).expect("fig6"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
