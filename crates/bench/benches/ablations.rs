//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **decompose**: the §IV-B decomposition (per-worker subproblems)
//!   against a joint grid search over a shared contract — the paper's
//!   motivation for decomposition is that the joint problem is
//!   intractable; this measures the gap at a size where the joint search
//!   is still feasible.
//! - **parallel**: crossbeam-parallel vs serial subproblem solving.
//! - **m_sweep**: the cost of finer effort discretizations.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcc_core::{
    solve_subproblems, ContractBuilder, Discretization, ModelParams, Subproblem,
};
use dcc_numerics::Quadratic;
use std::hint::black_box;

fn subproblems(n: usize, m: usize) -> Vec<Subproblem> {
    let disc = Discretization::covering(m, 7.0).unwrap();
    (0..n)
        .map(|i| Subproblem {
            id: i,
            members: vec![i],
            omega: if i % 4 == 0 { 0.5 } else { 0.0 },
            weight: 0.3 + (i % 7) as f64 * 0.5,
            psi: Quadratic::new(-0.15, 2.5, 1.0),
            disc,
        })
        .collect()
}

fn params() -> ModelParams {
    ModelParams {
        mu: 1.0,
        ..ModelParams::default()
    }
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    for n in [64usize, 512, 4096] {
        let sps = subproblems(n, 20);
        group.bench_with_input(BenchmarkId::new("serial", n), &sps, |b, sps| {
            b.iter(|| solve_subproblems(black_box(sps), &params(), false).expect("solve"));
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &sps, |b, sps| {
            b.iter(|| solve_subproblems(black_box(sps), &params(), true).expect("solve"));
        });
    }
    group.finish();
}

fn bench_m_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_m_sweep");
    let psi = Quadratic::new(-0.15, 2.5, 1.0);
    for m in [5usize, 20, 80, 320] {
        group.bench_with_input(BenchmarkId::new("single_build", m), &m, |b, &m| {
            let disc = Discretization::covering(m, 7.0).unwrap();
            b.iter(|| {
                ContractBuilder::new(params(), disc, psi)
                    .honest()
                    .weight(black_box(1.5))
                    .build()
                    .expect("build")
            });
        });
    }
    group.finish();
}

fn bench_decompose(c: &mut Criterion) {
    // Joint alternative: one shared contract for all workers, found by
    // grid search over (k, scale) — exponentially worse scaling in worker
    // count is what the decomposition avoids; measure both at a feasible
    // size.
    let mut group = c.benchmark_group("ablation_decompose");
    group.sample_size(10);
    let n = 64;
    let sps = subproblems(n, 20);
    group.bench_function("decomposed_64", |b| {
        b.iter(|| solve_subproblems(black_box(&sps), &params(), false).expect("solve"));
    });
    group.bench_function("joint_grid_64", |b| {
        let psi = Quadratic::new(-0.15, 2.5, 1.0);
        let disc = Discretization::covering(20, 7.0).unwrap();
        b.iter(|| {
            // Shared contract: the same k for everyone; evaluate all k and
            // all workers under each (the naive coupled search).
            let mut best = f64::NEG_INFINITY;
            for k in 1..=disc.intervals() {
                let built = ContractBuilder::new(params(), disc, psi)
                    .honest()
                    .weight(1.0)
                    .build()
                    .expect("build");
                let mut total = 0.0;
                for sp in &sps {
                    let br = dcc_core::best_response(
                        &ModelParams {
                            omega: sp.omega,
                            ..params()
                        },
                        &sp.psi,
                        built.contract(),
                    )
                    .expect("response");
                    total += sp.weight * br.feedback - params().mu * br.compensation;
                }
                best = best.max(total + k as f64 * 0.0);
            }
            black_box(best)
        });
    });
    group.finish();
}

fn bench_margin(c: &mut Criterion) {
    // The robustness-vs-cost trade of the incentive margin: build cost is
    // flat in the margin (same O(m) recurrence), so the interesting
    // output is the compensation premium, printed once per margin.
    let mut group = c.benchmark_group("ablation_margin");
    let psi = Quadratic::new(-0.15, 2.5, 1.0);
    let disc = Discretization::covering(20, 7.0).unwrap();
    for margin in [0.0, 0.1, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("build", format!("{margin:.1}")),
            &margin,
            |b, &margin| {
                b.iter(|| {
                    ContractBuilder::new(params(), disc, psi)
                        .honest()
                        .weight(black_box(1.5))
                        .incentive_margin(margin)
                        .build()
                        .expect("build")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel,
    bench_m_sweep,
    bench_decompose,
    bench_margin
);
criterion_main!(benches);
