//! E5 bench: the Fig. 8(a) compensation-vs-bound panels.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcc_bench::bench_trace;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("fig8a");
    group.sample_size(10);
    for m in [10usize, 20, 40] {
        group.bench_with_input(BenchmarkId::new("panel", m), &m, |b, &m| {
            b.iter(|| {
                dcc_experiments::fig8a::run_on(black_box(&trace), &[m]).expect("fig8a")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
