//! Micro-benchmarks of the hot kernels: candidate construction, best
//! response, contract evaluation, components, trace generation.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcc_core::{best_response, build_candidate, Discretization, ModelParams};
use dcc_graph::{connected_components, Graph};
use dcc_numerics::Quadratic;
use dcc_trace::SyntheticConfig;
use std::hint::black_box;

fn bench_candidate(c: &mut Criterion) {
    let params = ModelParams {
        mu: 1.0,
        omega: 0.0,
        ..ModelParams::default()
    };
    let psi = Quadratic::new(-0.15, 2.5, 1.0);
    let mut group = c.benchmark_group("micro_candidate");
    for m in [10usize, 40, 160] {
        let disc = Discretization::covering(m, 7.0).unwrap();
        group.bench_with_input(BenchmarkId::new("build", m), &m, |b, &m| {
            b.iter(|| build_candidate(&params, &disc, &psi, black_box(m / 2)).expect("cand"));
        });
        let cand = build_candidate(&params, &disc, &psi, m / 2).unwrap();
        group.bench_with_input(BenchmarkId::new("best_response", m), &cand, |b, cand| {
            b.iter(|| best_response(&params, &psi, black_box(&cand.contract)).expect("br"));
        });
        group.bench_with_input(BenchmarkId::new("compensation", m), &cand, |b, cand| {
            b.iter(|| black_box(&cand.contract).compensation(black_box(7.3)));
        });
    }
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_graph");
    for n in [1_000usize, 100_000] {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            if i % 3 != 0 {
                g.add_edge(i, i + 1).unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::new("components", n), &g, |b, g| {
            b.iter(|| connected_components(black_box(g)));
        });
    }
    group.finish();
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_trace");
    group.sample_size(10);
    group.bench_function("generate_small", |b| {
        b.iter(|| SyntheticConfig::small(black_box(1)).generate());
    });
    group.finish();
}

criterion_group!(benches, bench_candidate, bench_graph, bench_trace_gen);
criterion_main!(benches);
