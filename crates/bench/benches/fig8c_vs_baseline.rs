//! E7 bench: the Fig. 8(c) strategy comparison (design + simulation).

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, Criterion};
use dcc_bench::bench_trace;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("fig8c");
    group.sample_size(10);
    group.bench_function("single_mu", |b| {
        b.iter(|| dcc_experiments::fig8c::run_on(black_box(&trace), &[1.0]).expect("fig8c"));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
