//! E6 bench: the Fig. 8(b) per-class compensation distributions.

// Benchmark harnesses are measurement code, not library surface;
// panicking on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, Criterion};
use dcc_bench::bench_trace;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("fig8b");
    group.sample_size(10);
    group.bench_function("three_mu_sweep", |b| {
        b.iter(|| {
            dcc_experiments::fig8b::run_on(
                black_box(&trace),
                &dcc_experiments::fig8b::DEFAULT_MUS,
            )
            .expect("fig8b")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
