//! Property tests cross-checking the two component implementations.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_graph::{connected_components, Bipartite, Graph, UnionFind};
use proptest::prelude::*;

proptest! {
    /// DFS components and union-find components agree on random graphs.
    #[test]
    fn dfs_equals_union_find(
        n in 1usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let mut g = Graph::new(n);
        let mut uf = UnionFind::new(n);
        for (u, v) in edges {
            let (u, v) = (u % n, v % n);
            g.add_edge(u, v).unwrap();
            uf.union(u, v);
        }
        let dfs = connected_components(&g);
        let ufc = uf.components();
        prop_assert_eq!(dfs, ufc);
    }

    /// Component vertex sets partition the vertex set.
    #[test]
    fn components_partition_vertices(
        n in 1usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..60),
    ) {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u % n, v % n).unwrap();
        }
        let comps = connected_components(&g);
        let mut all: Vec<usize> = comps.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// The path projection and the clique projection of any bipartite
    /// graph have identical connected components.
    #[test]
    fn projections_agree_on_components(
        workers in 1usize..20,
        products in 1usize..10,
        edges in proptest::collection::vec((0usize..20, 0usize..10), 0..60),
    ) {
        let mut b = Bipartite::new(workers, products);
        for (w, p) in edges {
            b.add_edge(w % workers, p % products).unwrap();
        }
        prop_assert_eq!(
            connected_components(&b.project_left()),
            connected_components(&b.project_left_clique())
        );
    }

    /// Streaming growth: interleaving `UnionFind::push` with unions over
    /// the elements known so far yields exactly the components of a
    /// from-scratch structure built over the final element count and the
    /// final edge set — the invariant `dcc-serve` relies on when newly
    /// suspected workers arrive mid-stream.
    #[test]
    fn streaming_pushes_equal_scratch_components(
        script in proptest::collection::vec((any::<bool>(), 0usize..64, 0usize..64), 1..120),
    ) {
        let mut streaming = UnionFind::new(0);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (grow, u, v) in script {
            if grow || streaming.is_empty() {
                streaming.push();
            } else {
                let n = streaming.len();
                let (u, v) = (u % n, v % n);
                streaming.union(u, v);
                edges.push((u, v));
            }
        }
        let mut scratch = UnionFind::new(streaming.len());
        for &(u, v) in &edges {
            scratch.union(u, v);
        }
        prop_assert_eq!(streaming.components(), scratch.components());
        prop_assert_eq!(streaming.component_count(), scratch.component_count());
    }

    /// Adding an edge never increases the number of components.
    #[test]
    fn adding_edges_monotone(
        n in 2usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30), 1..40),
    ) {
        let mut g = Graph::new(n);
        let mut prev = connected_components(&g).len();
        for (u, v) in edges {
            g.add_edge(u % n, v % n).unwrap();
            let cur = connected_components(&g).len();
            prop_assert!(cur <= prev);
            prev = cur;
        }
    }

    // ----------------------------------------------- churn invariances
    //
    // The adversarial generator (`dcc-trace`) splits and merges
    // communities mid-trace, so the union-find underneath detection sees
    // edge sets arriving in adversary-controlled orders with repeated
    // unions and late-joining sybil elements. These properties pin down
    // that none of that affects the resulting partition.

    /// Union order invariance: any permutation of the same edge set
    /// yields the same components.
    #[test]
    fn union_order_is_irrelevant(
        n in 1usize..48,
        edges in proptest::collection::vec((0usize..48, 0usize..48), 0..96),
        rot in 0usize..96,
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let mut forward = UnionFind::new(n);
        for &(u, v) in &edges {
            forward.union(u, v);
        }
        // Reversed order.
        let mut reversed = UnionFind::new(n);
        for &(u, v) in edges.iter().rev() {
            reversed.union(u, v);
        }
        prop_assert_eq!(forward.components(), reversed.components());
        // Rotated order (an arbitrary cyclic permutation).
        if !edges.is_empty() {
            let pivot = rot % edges.len();
            let mut rotated = UnionFind::new(n);
            for &(u, v) in edges[pivot..].iter().chain(&edges[..pivot]) {
                rotated.union(u, v);
            }
            prop_assert_eq!(forward.components(), rotated.components());
        }
    }

    /// Idempotent re-union: replaying any subset of already-applied
    /// edges (the adversary re-asserting existing collusion links)
    /// changes nothing — components, count, and pairwise connectivity.
    #[test]
    fn re_union_is_idempotent(
        n in 1usize..48,
        edges in proptest::collection::vec((0usize..48, 0usize..48), 1..64),
        replay_mask in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let mut uf = UnionFind::new(n);
        for &(u, v) in &edges {
            uf.union(u, v);
        }
        let before = uf.components();
        let count_before = uf.component_count();
        for (i, &(u, v)) in edges.iter().enumerate() {
            if replay_mask.get(i % replay_mask.len()).copied().unwrap_or(false) {
                uf.union(u, v);
                uf.union(v, u); // and with the endpoints swapped
            }
        }
        prop_assert_eq!(uf.components(), before);
        prop_assert_eq!(uf.component_count(), count_before);
    }

    /// Push-after-union stability: growing the structure (sybils joining
    /// after collusion edges already exist) leaves every existing
    /// component untouched and adds exactly the new singletons.
    #[test]
    fn push_after_union_preserves_existing_components(
        n in 1usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..60),
        growth in 1usize..12,
    ) {
        let mut uf = UnionFind::new(n);
        for (u, v) in edges {
            uf.union(u % n, v % n);
        }
        let before = uf.components();
        let count_before = uf.component_count();
        for _ in 0..growth {
            uf.push();
        }
        let after = uf.components();
        prop_assert_eq!(uf.len(), n + growth);
        prop_assert_eq!(uf.component_count(), count_before + growth);
        // Every pre-growth component survives verbatim...
        for comp in &before {
            prop_assert!(after.contains(comp), "component {:?} disturbed by push", comp);
        }
        // ...and each new element is its own singleton.
        for fresh in n..n + growth {
            prop_assert!(after.contains(&vec![fresh]));
        }
    }
}
