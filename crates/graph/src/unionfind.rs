/// A disjoint-set (union-find) structure with path compression and union
/// by rank.
///
/// Used as an independent second implementation of component discovery to
/// cross-check the DFS clustering of §IV-A in tests, and by the trace
/// generator to track campaign merges.
///
/// # Example
///
/// ```
/// use dcc_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` iff the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element {x} out of range");
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `x` and `y`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either element is out of range.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        match self.rank[rx].cmp(&self.rank[ry]) {
            std::cmp::Ordering::Less => self.parent[rx] = ry,
            std::cmp::Ordering::Greater => self.parent[ry] = rx,
            std::cmp::Ordering::Equal => {
                self.parent[ry] = rx;
                self.rank[rx] += 1;
            }
        }
        self.components -= 1;
        true
    }

    /// Appends one new singleton element and returns its index — the
    /// streaming growth operation: a service that discovers elements over
    /// time (e.g. newly suspected workers) extends the structure instead
    /// of rebuilding it.
    pub fn push(&mut self) -> usize {
        let x = self.parent.len();
        self.parent.push(x);
        self.rank.push(0);
        self.components += 1;
        x
    }

    /// `true` iff `x` and `y` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either element is out of range.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Groups elements by set, each group sorted, groups ordered by their
    /// smallest element — the same deterministic format as
    /// [`crate::connected_components`].
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        assert!(!uf.connected(0, 1));
        assert!(!uf.is_empty());
        assert_eq!(uf.len(), 3);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(1, 2));
    }

    #[test]
    fn components_deterministic_format() {
        let mut uf = UnionFind::new(5);
        uf.union(4, 2);
        uf.union(1, 3);
        assert_eq!(uf.components(), vec![vec![0], vec![1, 3], vec![2, 4]]);
    }

    #[test]
    fn long_chain_path_compression() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, n - 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn find_out_of_range_panics() {
        UnionFind::new(1).find(1);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
        assert!(uf.components().is_empty());
    }
}
