//! # dcc-graph
//!
//! Graph substrate for the `dyncontract` workspace.
//!
//! §IV-A of the paper reduces collusive-community discovery to connected
//! components of an *auxiliary graph*: malicious workers are vertices and
//! an edge joins two workers that target the same product. This crate
//! provides the undirected [`Graph`], an iterative depth-first-search
//! [`connected_components`], a [`UnionFind`] used to cross-check the DFS,
//! and the [`Bipartite`] worker↔product graph whose projection builds the
//! auxiliary graph in one pass.
//!
//! ## Example
//!
//! ```
//! use dcc_graph::{connected_components, Graph};
//!
//! let mut g = Graph::new(5);
//! g.add_edge(0, 1).unwrap();
//! g.add_edge(1, 2).unwrap();
//! g.add_edge(3, 4).unwrap();
//! let comps = connected_components(&g);
//! assert_eq!(comps.len(), 2);
//! assert_eq!(comps[0], vec![0, 1, 2]);
//! assert_eq!(comps[1], vec![3, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bipartite;
mod components;
mod error;
mod graph;
mod unionfind;

pub use bipartite::Bipartite;
pub use components::{component_sizes, connected_components};
pub use error::GraphError;
pub use graph::Graph;
pub use unionfind::UnionFind;
