use std::fmt;

/// Errors produced by graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex index was out of range.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph.
        len: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, len } => {
                write!(f, "vertex {vertex} out of range for graph with {len} vertices")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 9, len: 3 };
        assert_eq!(e.to_string(), "vertex 9 out of range for graph with 3 vertices");
    }
}
