use crate::GraphError;

/// A simple undirected graph over vertices `0..n` stored as adjacency
/// lists.
///
/// Parallel edges are deduplicated lazily by the algorithms that care
/// (components are insensitive to multiplicity); self-loops are permitted
/// but ignored by traversal.
///
/// # Example
///
/// ```
/// use dcc_graph::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 2).unwrap();
/// assert_eq!(g.degree(0).unwrap(), 1);
/// assert_eq!(g.neighbors(2).unwrap(), &[0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges added (self-loops count once).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if either endpoint is out
    /// of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        let len = self.adj.len();
        for w in [u, v] {
            if w >= len {
                return Err(GraphError::VertexOutOfRange { vertex: w, len });
            }
        }
        if u == v {
            self.adj[u].push(v);
        } else {
            self.adj[u].push(v);
            self.adj[v].push(u);
        }
        self.edges += 1;
        Ok(())
    }

    /// Adds the edge `{u, v}` only if not already present.
    ///
    /// Returns `true` if the edge was inserted.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if either endpoint is out
    /// of range.
    pub fn add_edge_unique(&mut self, u: usize, v: usize) -> Result<bool, GraphError> {
        let len = self.adj.len();
        for w in [u, v] {
            if w >= len {
                return Err(GraphError::VertexOutOfRange { vertex: w, len });
            }
        }
        if self.adj[u].contains(&v) {
            return Ok(false);
        }
        self.add_edge(u, v)?;
        Ok(true)
    }

    /// The neighbor list of `v`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> Result<&[usize], GraphError> {
        self.adj.get(v).map(|n| n.as_slice()).ok_or(GraphError::VertexOutOfRange {
            vertex: v,
            len: self.adj.len(),
        })
    }

    /// The degree of `v` (self-loops contribute 1).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if `v` is out of range.
    pub fn degree(&self, v: usize) -> Result<usize, GraphError> {
        Ok(self.neighbors(v)?.len())
    }

    /// `true` iff `u` and `v` are directly adjacent.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.get(u).map(|n| n.contains(&v)).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1).unwrap(), 2);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = Graph::new(2);
        assert!(g.add_edge(0, 2).is_err());
        assert!(g.add_edge(5, 0).is_err());
        assert!(g.neighbors(2).is_err());
        assert!(g.degree(9).is_err());
        assert!(!g.has_edge(9, 0));
    }

    #[test]
    fn self_loop_allowed_once() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1).unwrap();
        assert_eq!(g.degree(1).unwrap(), 1);
        assert!(g.has_edge(1, 1));
    }

    #[test]
    fn add_edge_unique_dedups() {
        let mut g = Graph::new(3);
        assert!(g.add_edge_unique(0, 1).unwrap());
        assert!(!g.add_edge_unique(0, 1).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0).unwrap(), 1);
    }
}
