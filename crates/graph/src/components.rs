use crate::Graph;

/// Finds the connected components of an undirected graph by iterative
/// depth-first search — the clustering step of §IV-A.
///
/// Components are returned in order of their smallest vertex, and the
/// vertices inside each component are sorted ascending, so the output is
/// deterministic.
///
/// # Example
///
/// ```
/// use dcc_graph::{connected_components, Graph};
///
/// let mut g = Graph::new(4);
/// g.add_edge(2, 3).unwrap();
/// assert_eq!(connected_components(&g), vec![vec![0], vec![1], vec![2, 3]]);
/// ```
pub fn connected_components(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.vertex_count();
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    let mut stack = Vec::new();

    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut component = Vec::new();
        visited[start] = true;
        stack.push(start);
        while let Some(v) = stack.pop() {
            component.push(v);
            for &w in g.neighbors(v).unwrap_or_default() {
                if !visited[w] {
                    visited[w] = true;
                    stack.push(w);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// The multiset of component sizes, sorted descending — the statistic
/// behind Table II's community-size distribution.
pub fn component_sizes(g: &Graph) -> Vec<usize> {
    let mut sizes: Vec<usize> = connected_components(g).iter().map(Vec::len).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_components() {
        assert!(connected_components(&Graph::new(0)).is_empty());
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let comps = connected_components(&Graph::new(3));
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn chain_is_one_component() {
        let mut g = Graph::new(5);
        for i in 0..4 {
            g.add_edge(i, i + 1).unwrap();
        }
        assert_eq!(connected_components(&g), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn two_triangles() {
        let mut g = Graph::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(u, v).unwrap();
        }
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn self_loops_do_not_merge() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0).unwrap();
        assert_eq!(connected_components(&g).len(), 2);
    }

    #[test]
    fn parallel_edges_harmless() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 1).unwrap();
        assert_eq!(connected_components(&g), vec![vec![0, 1]]);
    }

    #[test]
    fn sizes_sorted_descending() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(3, 4).unwrap();
        assert_eq!(component_sizes(&g), vec![3, 2, 1]);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // Iterative DFS must handle paths far deeper than the call stack.
        let n = 200_000;
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1).unwrap();
        }
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n);
    }
}
