use crate::{Graph, GraphError};

/// A bipartite graph between `left` vertices (workers) and `right`
/// vertices (products).
///
/// §IV-A's auxiliary graph connects two malicious workers iff they review
/// the same product; that is exactly the *left projection* of the
/// worker↔product bipartite graph, which [`Bipartite::project_left`]
/// computes without materializing all pairwise comparisons.
///
/// # Example
///
/// ```
/// use dcc_graph::{connected_components, Bipartite};
///
/// // Workers 0 and 1 both review product 0; worker 2 reviews product 1.
/// let mut b = Bipartite::new(3, 2);
/// b.add_edge(0, 0).unwrap();
/// b.add_edge(1, 0).unwrap();
/// b.add_edge(2, 1).unwrap();
/// let g = b.project_left();
/// assert!(g.has_edge(0, 1));
/// assert_eq!(connected_components(&g).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Bipartite {
    left: usize,
    right: usize,
    /// For each right vertex, the sorted list of left vertices touching it.
    right_adj: Vec<Vec<usize>>,
}

impl Bipartite {
    /// Creates an empty bipartite graph with `left` workers and `right`
    /// products.
    pub fn new(left: usize, right: usize) -> Self {
        Bipartite {
            left,
            right,
            right_adj: vec![Vec::new(); right],
        }
    }

    /// Number of left (worker) vertices.
    pub fn left_count(&self) -> usize {
        self.left
    }

    /// Number of right (product) vertices.
    pub fn right_count(&self) -> usize {
        self.right
    }

    /// Connects left vertex `l` to right vertex `r`. Duplicate edges are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if either side is out of
    /// range.
    pub fn add_edge(&mut self, l: usize, r: usize) -> Result<(), GraphError> {
        if l >= self.left {
            return Err(GraphError::VertexOutOfRange {
                vertex: l,
                len: self.left,
            });
        }
        if r >= self.right {
            return Err(GraphError::VertexOutOfRange {
                vertex: r,
                len: self.right,
            });
        }
        if !self.right_adj[r].contains(&l) {
            self.right_adj[r].push(l);
        }
        Ok(())
    }

    /// The left vertices attached to right vertex `r`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if `r` is out of range.
    pub fn left_of(&self, r: usize) -> Result<&[usize], GraphError> {
        self.right_adj
            .get(r)
            .map(|v| v.as_slice())
            .ok_or(GraphError::VertexOutOfRange {
                vertex: r,
                len: self.right,
            })
    }

    /// Projects onto the left side: the undirected graph over workers where
    /// two workers are adjacent iff they share at least one product.
    ///
    /// Each product contributes a path through its workers rather than a
    /// clique — connectivity (and hence the communities of §IV-A) is
    /// identical, but the projection stays linear in the input size instead
    /// of quadratic for popular products.
    pub fn project_left(&self) -> Graph {
        let mut g = Graph::new(self.left);
        for workers in &self.right_adj {
            for pair in workers.windows(2) {
                let ok = g.add_edge_unique(pair[0], pair[1]);
                debug_assert!(ok.is_ok(), "vertices validated on insert");
            }
        }
        g
    }

    /// Projects onto the left side as a full clique per product.
    ///
    /// Produces the literal auxiliary graph of the paper (every pair of
    /// co-reviewers connected). Use [`Bipartite::project_left`] unless the
    /// pairwise edges themselves matter (e.g. for partner counting).
    pub fn project_left_clique(&self) -> Graph {
        let mut g = Graph::new(self.left);
        for workers in &self.right_adj {
            for (i, &u) in workers.iter().enumerate() {
                for &v in &workers[i + 1..] {
                    let ok = g.add_edge_unique(u, v);
                    debug_assert!(ok.is_ok(), "vertices validated on insert");
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connected_components;

    #[test]
    fn construction_and_bounds() {
        let mut b = Bipartite::new(2, 2);
        assert_eq!(b.left_count(), 2);
        assert_eq!(b.right_count(), 2);
        assert!(b.add_edge(2, 0).is_err());
        assert!(b.add_edge(0, 2).is_err());
        assert!(b.left_of(5).is_err());
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut b = Bipartite::new(2, 1);
        b.add_edge(0, 0).unwrap();
        b.add_edge(0, 0).unwrap();
        assert_eq!(b.left_of(0).unwrap(), &[0]);
    }

    #[test]
    fn path_and_clique_projections_have_same_components() {
        let mut b = Bipartite::new(6, 3);
        // Product 0 reviewed by workers 0,1,2; product 1 by 2,3; product 2 by 5.
        for w in [0, 1, 2] {
            b.add_edge(w, 0).unwrap();
        }
        for w in [2, 3] {
            b.add_edge(w, 1).unwrap();
        }
        b.add_edge(5, 2).unwrap();

        let path = b.project_left();
        let clique = b.project_left_clique();
        assert_eq!(connected_components(&path), connected_components(&clique));
        assert_eq!(
            connected_components(&path),
            vec![vec![0, 1, 2, 3], vec![4], vec![5]]
        );
    }

    #[test]
    fn clique_projection_has_all_pairs() {
        let mut b = Bipartite::new(3, 1);
        for w in 0..3 {
            b.add_edge(w, 0).unwrap();
        }
        let g = b.project_left_clique();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn empty_projection() {
        let b = Bipartite::new(3, 0);
        let g = b.project_left();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(connected_components(&g).len(), 3);
    }
}
