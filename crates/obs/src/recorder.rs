//! The [`Recorder`] trait, the inert [`NoopRecorder`], and the cheap
//! clonable [`Metrics`] handle call sites hold.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A typed attribute value attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A boolean flag (e.g. `cached`).
    Bool(bool),
    /// An unsigned integer (ids, counts).
    U64(u64),
    /// A float (utilities, payments).
    F64(f64),
    /// A string (stage names, causes).
    Str(String),
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// The sink every metric funnels through.
///
/// Implementations must be cheap to call and must not panic; the
/// pipeline treats recording as infallible. `span_start`/`span_end` are
/// paired by the opaque id `span_start` returns.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Producers use this to skip
    /// attribute construction and clock reads entirely.
    fn enabled(&self) -> bool;

    /// Opens a span; the returned id is passed back to [`Recorder::span_end`].
    fn span_start(&self, name: &str, attrs: &[(&'static str, AttrValue)]) -> u64;

    /// Closes the span `id` with its measured wall-clock time.
    fn span_end(&self, id: u64, elapsed: Duration);

    /// Records an untimed point event.
    fn event(&self, name: &str, attrs: &[(&'static str, AttrValue)]);

    /// Adds `delta` to the counter `name`.
    fn add(&self, name: &str, delta: u64);

    /// Sets the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);

    /// Folds `value` into the histogram `name`.
    fn observe(&self, name: &str, value: f64);
}

/// The do-nothing recorder: every method is an empty inline body, so
/// instrumentation behind a [`Metrics::enabled`] check is free.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn span_start(&self, _name: &str, _attrs: &[(&'static str, AttrValue)]) -> u64 {
        0
    }

    #[inline(always)]
    fn span_end(&self, _id: u64, _elapsed: Duration) {}

    #[inline(always)]
    fn event(&self, _name: &str, _attrs: &[(&'static str, AttrValue)]) {}

    #[inline(always)]
    fn add(&self, _name: &str, _delta: u64) {}

    #[inline(always)]
    fn gauge(&self, _name: &str, _value: f64) {}

    #[inline(always)]
    fn observe(&self, _name: &str, _value: f64) {}
}

/// A cheap clonable handle to a shared [`Recorder`].
///
/// This is what travels through `EngineConfig`: `Default` is the noop
/// recorder, so instrumented code paths cost nothing unless a real
/// recorder is installed.
#[derive(Clone)]
pub struct Metrics {
    recorder: Arc<dyn Recorder>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::noop()
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.enabled() {
            f.write_str("Metrics(recording)")
        } else {
            f.write_str("Metrics(noop)")
        }
    }
}

impl Metrics {
    /// A handle over `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Metrics { recorder }
    }

    /// The inert handle (records nothing).
    pub fn noop() -> Self {
        Metrics {
            recorder: Arc::new(NoopRecorder),
        }
    }

    /// Whether the underlying recorder keeps anything. Check this before
    /// building attributes or reading clocks on hot paths.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Opens a timed span; the guard records the elapsed time on drop
    /// (or on [`Span::end`]). Disabled recorders never read the clock.
    pub fn span(&self, name: &str, attrs: &[(&'static str, AttrValue)]) -> Span<'_> {
        if !self.enabled() {
            return Span {
                metrics: self,
                id: 0,
                start: None,
            };
        }
        let id = self.recorder.span_start(name, attrs);
        Span {
            metrics: self,
            id,
            start: Some(Instant::now()),
        }
    }

    /// Records a span whose duration was measured elsewhere (e.g. on a
    /// worker thread) — opened and closed immediately with `elapsed`.
    pub fn span_at(&self, name: &str, attrs: &[(&'static str, AttrValue)], elapsed: Duration) {
        if self.enabled() {
            let id = self.recorder.span_start(name, attrs);
            self.recorder.span_end(id, elapsed);
        }
    }

    /// Records an untimed point event.
    pub fn event(&self, name: &str, attrs: &[(&'static str, AttrValue)]) {
        self.recorder.event(name, attrs);
    }

    /// Adds `delta` to the counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.recorder.add(name, delta);
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge(&self, name: &str, value: f64) {
        self.recorder.gauge(name, value);
    }

    /// Folds `value` into the histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.recorder.observe(name, value);
    }
}

/// An open span; records its monotonic elapsed time when dropped.
#[must_use = "a span records nothing until it is dropped or ended"]
pub struct Span<'a> {
    metrics: &'a Metrics,
    id: u64,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Closes the span explicitly (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.metrics.recorder.span_end(self.id, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let metrics = Metrics::noop();
        assert!(!metrics.enabled());
        let span = metrics.span("stage", &[("stage", "solve".into())]);
        metrics.add("c", 1);
        metrics.gauge("g", 2.0);
        metrics.observe("h", 3.0);
        metrics.event("e", &[]);
        span.end();
        assert_eq!(format!("{metrics:?}"), "Metrics(noop)");
    }

    #[test]
    fn default_is_noop() {
        assert!(!Metrics::default().enabled());
    }

    #[test]
    fn attr_conversions() {
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
        assert_eq!(AttrValue::from(3usize), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3u64), AttrValue::U64(3));
        assert_eq!(AttrValue::from(0.5), AttrValue::F64(0.5));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(AttrValue::from(String::from("y")), AttrValue::Str("y".into()));
    }
}
