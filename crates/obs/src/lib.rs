//! # dcc-obs — observability for the contract pipeline
//!
//! A lightweight, dependency-free tracing/metrics layer (std only):
//!
//! - **Spans** — named, attributed, monotonically timed intervals kept in
//!   a stack so nesting is recorded (`engine.run` → `stage` →
//!   `solve.subproblem`).
//! - **Counters** — monotone `u64` accumulators (`solve.degraded`, fault
//!   hits, …).
//! - **Gauges** — last-write-wins `f64` readings (`solve.pool`,
//!   `design.total_requester_utility`).
//! - **Histograms** — `count/sum/min/max` aggregates of `f64`
//!   observations (`solve.subproblem_us`).
//! - **Events** — untimed, attributed point records (`sim.round`,
//!   `design.degraded`).
//!
//! Everything funnels through the [`Recorder`] trait. Two
//! implementations ship: [`NoopRecorder`] (the default — every method is
//! an empty inline body, so an instrumented hot path costs one
//! `enabled()` check) and [`JsonRecorder`] (an in-memory store rendered
//! as deterministic JSON, schema [`SCHEMA_VERSION`]).
//!
//! Call sites hold a cheap clonable [`Metrics`] handle. The intended
//! pattern for zero overhead when disabled:
//!
//! ```
//! use dcc_obs::{AttrValue, JsonRecorder, Metrics};
//! use std::sync::Arc;
//!
//! fn solve(metrics: &Metrics) {
//!     if !metrics.enabled() {
//!         return; // take the uninstrumented path: no clocks, no attrs
//!     }
//!     let span = metrics.span("stage", &[("stage", AttrValue::from("solve"))]);
//!     metrics.add("solve.subproblems", 3);
//!     drop(span); // records the elapsed time
//! }
//!
//! let recorder = Arc::new(JsonRecorder::new());
//! let metrics = Metrics::new(recorder.clone());
//! solve(&metrics);
//! assert!(recorder.to_json().contains("\"solve.subproblems\":3"));
//! solve(&Metrics::noop()); // records nothing, costs (almost) nothing
//! ```
//!
//! ## Determinism
//!
//! [`JsonRecorder`] renders in **insertion order**, so a deterministic
//! call sequence yields byte-identical JSON — except wall-clock timings.
//! [`JsonRecorder::to_json_redacted`] zeroes every `elapsed_us` field and
//! every histogram whose name ends in `_us`, which is the redaction pass
//! the engine's metrics-determinism property tests compare under.
//!
//! Multi-threaded producers should **not** record from worker threads:
//! measure there, merge deterministically, then emit from one thread (see
//! `solve_subproblems_recorded` in `dcc-core` for the pattern, and
//! [`Metrics::span_at`] for recording a pre-measured duration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod recorder;

pub use json::{JsonRecorder, SCHEMA_VERSION};
pub use recorder::{AttrValue, Metrics, NoopRecorder, Recorder, Span};

/// Canonical metric and span names emitted by the `dcc` pipeline.
///
/// Kept in one place (and dependency-free) so producers (`dcc-core`,
/// `dcc-engine`) and consumers (`dcc metrics summarize`, tests) cannot
/// drift apart. See `docs/observability.md` for the full table.
pub mod names {
    /// Span: one full `Engine::run_to` invocation.
    pub const SPAN_ENGINE_RUN: &str = "engine.run";
    /// Span: one pipeline stage (attrs: `stage`, `cached`, `cause`).
    pub const SPAN_STAGE: &str = "stage";
    /// Span: one §IV-B subproblem solve (attrs: `id`, `iterations`,
    /// `degraded`), recorded post-merge with the worker-measured time.
    pub const SPAN_SUBPROBLEM: &str = "solve.subproblem";
    /// Span: materializing the trace from its configured source (attrs:
    /// `source`), recorded post-load with the measured time.
    pub const SPAN_TRACE_LOAD: &str = "trace.load";

    /// Event: one simulated round (attrs: `round`, `benefit`, `payment`,
    /// `u_req`).
    pub const EVENT_SIM_ROUND: &str = "sim.round";
    /// Event: one degraded subproblem in the assembled design (attrs:
    /// `subproblem`, `action`, `utility_delta`).
    pub const EVENT_DESIGN_DEGRADED: &str = "design.degraded";

    /// Counter: reviews ingested.
    pub const COUNTER_TRACE_REVIEWS: &str = "trace.reviews";
    /// Counter: reviewers ingested.
    pub const COUNTER_TRACE_REVIEWERS: &str = "trace.reviewers";
    /// Counter: workers the §IV detection suspects.
    pub const COUNTER_DETECT_SUSPECTED: &str = "detect.suspected";
    /// Counter: collusive communities found.
    pub const COUNTER_DETECT_COMMUNITIES: &str = "detect.communities";
    /// Counter: subproblems in the fitted decomposition.
    pub const COUNTER_FIT_SUBPROBLEMS: &str = "fit.subproblems";
    /// Counter: subproblems solved (degraded ones included).
    pub const COUNTER_SOLVE_SUBPROBLEMS: &str = "solve.subproblems";
    /// Counter: subproblems that degraded (any action).
    pub const COUNTER_SOLVE_DEGRADED: &str = "solve.degraded";
    /// Counter: degradations that fell back to a fixed payment.
    pub const COUNTER_SOLVE_DEGRADED_FALLBACK: &str = "solve.degraded.fallback";
    /// Counter: degradations that excluded the worker.
    pub const COUNTER_SOLVE_DEGRADED_SKIPPED: &str = "solve.degraded.skipped";
    /// Counter: per-worker contracts in the assembled design.
    pub const COUNTER_DESIGN_AGENTS: &str = "design.agents";
    /// Counter: rounds the simulate stage stepped this run.
    pub const COUNTER_SIM_ROUNDS: &str = "sim.rounds";
    /// Counter: fault events that fired (all kinds).
    pub const COUNTER_FAULTS_FIRED: &str = "sim.faults.fired";
    /// Counter: agent-dropout rounds that fired.
    pub const COUNTER_FAULTS_DROPPED: &str = "sim.faults.dropped";
    /// Counter: lost-feedback events that fired.
    pub const COUNTER_FAULTS_LOST: &str = "sim.faults.lost_feedback";
    /// Counter: corrupted-feedback events that fired.
    pub const COUNTER_FAULTS_CORRUPTED: &str = "sim.faults.corrupted_feedback";
    /// Counter: delayed-payment events that fired.
    pub const COUNTER_FAULTS_DELAYED: &str = "sim.faults.delayed_payment";

    /// Gauge: resolved worker-pool size of the solve stage.
    pub const GAUGE_SOLVE_POOL: &str = "solve.pool";
    /// Gauge: reviewers (workers) in the materialized trace.
    pub const GAUGE_TRACE_WORKERS: &str = "trace.workers";
    /// Gauge: the solved `Σ (w_i q_i − μ c_i)` (Eq. 7 objective).
    pub const GAUGE_DESIGN_UTILITY: &str = "design.total_requester_utility";
    /// Gauge: events in the configured fault plan.
    pub const GAUGE_FAULTS_SCHEDULED: &str = "sim.faults.scheduled";

    /// Histogram: per-subproblem solve time, microseconds (redacted by
    /// the determinism pass — the `_us` suffix marks it as a timing).
    pub const HIST_SUBPROBLEM_US: &str = "solve.subproblem_us";

    /// Span: one batch scenario (attrs: `id`, `trace`, `mu`,
    /// `budget_fraction`, `strategy`, `detect_cached`, `fit_cached`,
    /// `solve_cached`, `ok`), recorded post-merge with the
    /// worker-measured time.
    pub const SPAN_BATCH_SCENARIO: &str = "batch.scenario";
    /// Counter: scenarios the batch runner executed (failed included).
    pub const COUNTER_BATCH_SCENARIOS: &str = "batch.scenarios";
    /// Counter: scenarios that ended in an error record.
    pub const COUNTER_BATCH_FAILED: &str = "batch.scenarios.failed";
    /// Counter: trace materializations answered from the stage memo.
    pub const COUNTER_BATCH_TRACE_HIT: &str = "batch.cache.trace.hit";
    /// Counter: trace materializations that had to run.
    pub const COUNTER_BATCH_TRACE_MISS: &str = "batch.cache.trace.miss";
    /// Counter: scenarios whose detection came from the stage memo.
    pub const COUNTER_BATCH_DETECT_HIT: &str = "batch.cache.detect.hit";
    /// Counter: scenarios that had to run the detection pipeline.
    pub const COUNTER_BATCH_DETECT_MISS: &str = "batch.cache.detect.miss";
    /// Counter: scenarios whose fit came from the stage memo.
    pub const COUNTER_BATCH_FIT_HIT: &str = "batch.cache.fit.hit";
    /// Counter: scenarios that had to run the fit stage.
    pub const COUNTER_BATCH_FIT_MISS: &str = "batch.cache.fit.miss";
    /// Counter: scenarios whose solved design came from the stage memo.
    pub const COUNTER_BATCH_SOLVE_HIT: &str = "batch.cache.solve.hit";
    /// Counter: scenarios that had to run the solve/construct stages.
    pub const COUNTER_BATCH_SOLVE_MISS: &str = "batch.cache.solve.miss";
    /// Gauge: resolved scenario-level worker-pool size of the batch run.
    pub const GAUGE_BATCH_POOL: &str = "batch.pool";
    /// Gauge: scenario throughput of the batch run (redacted by the
    /// determinism pass — the `_per_sec` suffix marks it as a timing).
    pub const GAUGE_BATCH_SCENARIOS_PER_SEC: &str = "batch.scenarios_per_sec";
    /// Histogram: per-scenario wall time, microseconds (redacted by the
    /// determinism pass — the `_us` suffix marks it as a timing).
    pub const HIST_BATCH_SCENARIO_US: &str = "batch.scenario_us";

    /// Counter: supervised retry attempts beyond each scenario's first
    /// try, summed over the batch (recorded post-merge).
    pub const COUNTER_BATCH_RETRY_ATTEMPTS: &str = "batch.retry.attempts";
    /// Counter: scenarios that failed at least once and then succeeded
    /// on a supervised retry.
    pub const COUNTER_BATCH_RETRY_RECOVERED: &str = "batch.retry.recovered";
    /// Counter: scenarios quarantined after exhausting retries (all
    /// failure kinds).
    pub const COUNTER_BATCH_QUARANTINE_SCENARIOS: &str = "batch.quarantine.scenarios";
    /// Counter: quarantined scenarios whose final failure was a caught
    /// panic.
    pub const COUNTER_BATCH_QUARANTINE_PANICS: &str = "batch.quarantine.panics";
    /// Counter: quarantined scenarios that exhausted their logical
    /// work budget.
    pub const COUNTER_BATCH_QUARANTINE_BUDGET: &str = "batch.quarantine.budget_exhausted";
    /// Counter: scenarios restored from a `dcc-batch-ckpt/1` checkpoint
    /// instead of recomputed (0 for a fresh run).
    pub const COUNTER_BATCH_RESTORED: &str = "batch.checkpoint.restored";

    /// Span: one streaming round boundary recompute (attrs: `round`,
    /// `dirty_workers`, `dirty_products`).
    pub const SPAN_SERVE_ROUND: &str = "serve.round";
    /// Counter: events the streaming service ingested (all kinds).
    pub const COUNTER_SERVE_EVENTS: &str = "serve.events";
    /// Counter: round boundaries the streaming service recomputed at.
    pub const COUNTER_SERVE_ROUNDS: &str = "serve.rounds";
    /// Counter: workers marked dirty across all round recomputes.
    pub const COUNTER_SERVE_DIRTY_WORKERS: &str = "serve.dirty.workers";
    /// Counter: products marked dirty across all round recomputes.
    pub const COUNTER_SERVE_DIRTY_PRODUCTS: &str = "serve.dirty.products";
    /// Counter: subproblems re-solved because their inputs changed.
    pub const COUNTER_SERVE_SOLVE_RESOLVED: &str = "serve.solve.resolved";
    /// Counter: subproblems whose cached solution was reused unchanged.
    pub const COUNTER_SERVE_SOLVE_REUSED: &str = "serve.solve.reused";
    /// Counter: class effort-function refits forced by changed points.
    pub const COUNTER_SERVE_FIT_REFITS: &str = "serve.fit.refits";
    /// Counter: class effort-function fits reused from the last round.
    pub const COUNTER_SERVE_FIT_REUSED: &str = "serve.fit.reused";
    /// Counter: checkpoints the streaming service wrote.
    pub const COUNTER_SERVE_CKPT_SAVED: &str = "serve.checkpoint.saved";
    /// Counter: runs restored from a `dcc-serve-ckpt/1` checkpoint
    /// (0 or 1 per process).
    pub const COUNTER_SERVE_CKPT_RESTORED: &str = "serve.checkpoint.restored";
    /// Gauge: fraction of subproblems reused (not re-solved) over the
    /// run so far — the incremental-vs-full work ratio.
    pub const GAUGE_SERVE_INCREMENTAL_RATIO: &str = "serve.incremental_ratio";

    /// Counter: adversary plans applied to generated traces.
    pub const COUNTER_ADVERSARY_PLANS: &str = "adversary.plans";
    /// Counter: sybil workers injected across applied adversary plans.
    pub const COUNTER_ADVERSARY_SYBILS: &str = "adversary.sybils";
    /// Counter: community splits applied across adversary plans.
    pub const COUNTER_ADVERSARY_SPLITS: &str = "adversary.splits";
    /// Counter: community merges applied across adversary plans.
    pub const COUNTER_ADVERSARY_MERGES: &str = "adversary.merges";
    /// Counter: under-reporting windows applied across adversary plans.
    pub const COUNTER_ADVERSARY_UNDERREPORTS: &str = "adversary.underreports";
}
