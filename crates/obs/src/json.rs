//! [`JsonRecorder`] — an in-memory recorder rendered as deterministic
//! JSON, hand-rolled (the workspace is offline; no serde).

use crate::recorder::{AttrValue, Recorder};
use std::sync::Mutex;
use std::time::Duration;

/// Schema tag written into every document; `dcc metrics summarize`
/// refuses anything else.
pub const SCHEMA_VERSION: &str = "dcc-obs/1";

#[derive(Debug, Clone)]
struct SpanRec {
    id: u64,
    parent: Option<u64>,
    name: String,
    attrs: Vec<(String, AttrValue)>,
    elapsed_us: Option<u64>,
}

#[derive(Debug, Clone)]
struct EventRec {
    name: String,
    attrs: Vec<(String, AttrValue)>,
}

#[derive(Debug, Clone, Copy)]
struct Hist {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<SpanRec>,
    stack: Vec<u64>,
    events: Vec<EventRec>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, Hist)>,
}

/// Records everything in memory, in call order, and renders it as one
/// compact JSON document (see `docs/observability.md` for the schema).
///
/// Span nesting comes from an internal stack: a span opened while
/// another is open gets that span as `parent`. Counters, gauges and
/// histograms render in first-touch order, so a deterministic call
/// sequence yields byte-identical JSON up to wall-clock timings —
/// [`JsonRecorder::to_json_redacted`] zeroes those for byte comparison.
#[derive(Debug, Default)]
pub struct JsonRecorder {
    inner: Mutex<Inner>,
}

impl JsonRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        JsonRecorder::default()
    }

    /// Every critical section leaves `Inner` valid (each write is a
    /// single push or field update), so a lock poisoned by a panic on
    /// another thread degrades to "keep recording" instead of
    /// cascading the panic into the pipeline.
    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        let inner = self.locked();
        inner.spans.is_empty()
            && inner.events.is_empty()
            && inner.counters.is_empty()
            && inner.gauges.is_empty()
            && inner.hists.is_empty()
    }

    /// The current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.locked();
        inner
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The current value of gauge `name`, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let inner = self.locked();
        inner.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// How many spans named `name` were recorded.
    pub fn span_count(&self, name: &str) -> usize {
        let inner = self.locked();
        inner.spans.iter().filter(|s| s.name == name).count()
    }

    /// How many events named `name` were recorded.
    pub fn event_count(&self, name: &str) -> usize {
        let inner = self.locked();
        inner.events.iter().filter(|e| e.name == name).count()
    }

    /// Renders the full document, timings included.
    pub fn to_json(&self) -> String {
        self.render(false)
    }

    /// Renders the document with the timing redaction pass applied:
    /// every span's `elapsed_us` is zeroed, every histogram whose
    /// name ends in `_us` has its `sum`/`min`/`max` zeroed (`count` is
    /// deterministic and kept), and every gauge whose name ends in
    /// `_per_sec` is zeroed (throughput is a wall-clock derivative).
    /// Two runs of a deterministic pipeline produce byte-identical
    /// redacted documents.
    pub fn to_json_redacted(&self) -> String {
        self.render(true)
    }

    fn render(&self, redact: bool) -> String {
        let inner = self.locked();
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":");
        push_str_json(&mut out, SCHEMA_VERSION);
        out.push_str(",\"spans\":[");
        for (i, span) in inner.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            out.push_str(&span.id.to_string());
            out.push_str(",\"parent\":");
            match span.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":");
            push_str_json(&mut out, &span.name);
            out.push_str(",\"attrs\":");
            push_attrs(&mut out, &span.attrs);
            out.push_str(",\"elapsed_us\":");
            let us = if redact { 0 } else { span.elapsed_us.unwrap_or(0) };
            out.push_str(&us.to_string());
            out.push('}');
        }
        out.push_str("],\"events\":[");
        for (i, event) in inner.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_str_json(&mut out, &event.name);
            out.push_str(",\"attrs\":");
            push_attrs(&mut out, &event.attrs);
            out.push('}');
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_json(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_json(&mut out, name);
            out.push(':');
            let v = if redact && name.ends_with("_per_sec") { 0.0 } else { *value };
            push_f64_json(&mut out, v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in inner.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let timing = name.ends_with("_us");
            let zeroed = Hist {
                count: hist.count,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
            };
            let h = if redact && timing { &zeroed } else { hist };
            push_str_json(&mut out, name);
            out.push_str(":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            push_f64_json(&mut out, h.sum);
            out.push_str(",\"min\":");
            push_f64_json(&mut out, h.min);
            out.push_str(",\"max\":");
            push_f64_json(&mut out, h.max);
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

impl Recorder for JsonRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str, attrs: &[(&'static str, AttrValue)]) -> u64 {
        let mut inner = self.locked();
        let id = inner.spans.len() as u64 + 1;
        let parent = inner.stack.last().copied();
        inner.spans.push(SpanRec {
            id,
            parent,
            name: name.to_string(),
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
            elapsed_us: None,
        });
        inner.stack.push(id);
        id
    }

    fn span_end(&self, id: u64, elapsed: Duration) {
        let mut inner = self.locked();
        if id == 0 || id as usize > inner.spans.len() {
            return;
        }
        inner.spans[id as usize - 1].elapsed_us =
            Some(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        // Usually the top of the stack; tolerate out-of-order ends.
        if inner.stack.last() == Some(&id) {
            inner.stack.pop();
        } else {
            inner.stack.retain(|&open| open != id);
        }
    }

    fn event(&self, name: &str, attrs: &[(&'static str, AttrValue)]) {
        let mut inner = self.locked();
        inner.events.push(EventRec {
            name: name.to_string(),
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        });
    }

    fn add(&self, name: &str, delta: u64) {
        let mut inner = self.locked();
        if let Some((_, value)) = inner.counters.iter_mut().find(|(n, _)| n == name) {
            *value = value.saturating_add(delta);
        } else {
            inner.counters.push((name.to_string(), delta));
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        let mut inner = self.locked();
        if let Some((_, slot)) = inner.gauges.iter_mut().find(|(n, _)| n == name) {
            *slot = value;
        } else {
            inner.gauges.push((name.to_string(), value));
        }
    }

    fn observe(&self, name: &str, value: f64) {
        let mut inner = self.locked();
        if let Some((_, h)) = inner.hists.iter_mut().find(|(n, _)| n == name) {
            h.count += 1;
            h.sum += value;
            h.min = h.min.min(value);
            h.max = h.max.max(value);
        } else {
            inner.hists.push((
                name.to_string(),
                Hist {
                    count: 1,
                    sum: value,
                    min: value,
                    max: value,
                },
            ));
        }
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number — shortest round-trip form, with the
/// same non-finite convention as `dcc_faults::Json` (strings `"NaN"`,
/// `"Infinity"`, `"-Infinity"`).
fn push_f64_json(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v.is_infinite() {
        out.push_str(if v.is_sign_positive() { "\"Infinity\"" } else { "\"-Infinity\"" });
    } else {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` on integral floats prints no decimal point; that is still
        // a valid JSON number, so keep it.
    }
}

fn push_attrs(out: &mut String, attrs: &[(String, AttrValue)]) {
    out.push('{');
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_json(out, key);
        out.push(':');
        match value {
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            AttrValue::U64(u) => out.push_str(&u.to_string()),
            AttrValue::F64(f) => push_f64_json(out, *f),
            AttrValue::Str(s) => push_str_json(out, s),
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Metrics;
    use std::sync::Arc;

    fn recording() -> (Arc<JsonRecorder>, Metrics) {
        let recorder = Arc::new(JsonRecorder::new());
        let metrics = Metrics::new(recorder.clone());
        (recorder, metrics)
    }

    #[test]
    fn empty_document_has_all_sections() {
        let recorder = JsonRecorder::new();
        assert!(recorder.is_empty());
        let json = recorder.to_json();
        assert_eq!(
            json,
            "{\"schema\":\"dcc-obs/1\",\"spans\":[],\"events\":[],\
             \"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn spans_nest_via_the_stack() {
        let (recorder, metrics) = recording();
        {
            let outer = metrics.span("engine.run", &[]);
            {
                let inner = metrics.span("stage", &[("stage", "detect".into())]);
                inner.end();
            }
            outer.end();
        }
        let json = recorder.to_json();
        assert!(json.contains("\"id\":1,\"parent\":null,\"name\":\"engine.run\""));
        assert!(json.contains("\"id\":2,\"parent\":1,\"name\":\"stage\""));
        assert!(json.contains("\"attrs\":{\"stage\":\"detect\"}"));
        assert!(!recorder.is_empty());
        assert_eq!(recorder.span_count("stage"), 1);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let (recorder, metrics) = recording();
        metrics.add("c", 2);
        metrics.add("c", 3);
        metrics.gauge("g", 1.5);
        metrics.gauge("g", 2.5);
        assert_eq!(recorder.counter("c"), 5);
        assert_eq!(recorder.counter("missing"), 0);
        assert_eq!(recorder.gauge_value("g"), Some(2.5));
        let json = recorder.to_json();
        assert!(json.contains("\"counters\":{\"c\":5}"));
        assert!(json.contains("\"gauges\":{\"g\":2.5}"));
    }

    #[test]
    fn histograms_aggregate() {
        let (recorder, metrics) = recording();
        for v in [3.0, 1.0, 2.0] {
            metrics.observe("h", v);
        }
        let json = recorder.to_json();
        assert!(json.contains("\"h\":{\"count\":3,\"sum\":6,\"min\":1,\"max\":3}"));
    }

    #[test]
    fn redaction_zeroes_timings_only() {
        let (recorder, metrics) = recording();
        metrics.span_at(
            "solve.subproblem",
            &[("id", 7usize.into())],
            Duration::from_micros(1234),
        );
        metrics.observe("solve.subproblem_us", 1234.0);
        metrics.gauge("batch.scenarios_per_sec", 123.5);
        metrics.gauge("solve.pool", 4.0);
        metrics.observe("payments", 0.5);
        let raw = recorder.to_json();
        assert!(raw.contains("\"elapsed_us\":1234"));
        assert!(raw.contains("\"solve.subproblem_us\":{\"count\":1,\"sum\":1234"));
        let redacted = recorder.to_json_redacted();
        assert!(redacted.contains("\"elapsed_us\":0"));
        assert!(redacted.contains("\"solve.subproblem_us\":{\"count\":1,\"sum\":0,\"min\":0,\"max\":0}"));
        // Non-timing histograms keep their statistics.
        assert!(redacted.contains("\"payments\":{\"count\":1,\"sum\":0.5,\"min\":0.5,\"max\":0.5}"));
        // Throughput gauges are wall-clock derivatives: zeroed under
        // redaction, other gauges kept.
        assert!(raw.contains("\"batch.scenarios_per_sec\":123.5"));
        assert!(redacted.contains("\"batch.scenarios_per_sec\":0"));
        assert!(redacted.contains("\"solve.pool\":4"));
        // The deterministic attributes survive redaction.
        assert!(redacted.contains("\"attrs\":{\"id\":7}"));
    }

    #[test]
    fn events_record_attrs_in_order() {
        let (recorder, metrics) = recording();
        metrics.event(
            "sim.round",
            &[("round", 0usize.into()), ("u_req", 1.25.into())],
        );
        assert_eq!(recorder.event_count("sim.round"), 1);
        let json = recorder.to_json();
        assert!(json.contains(
            "\"events\":[{\"name\":\"sim.round\",\"attrs\":{\"round\":0,\"u_req\":1.25}}]"
        ));
    }

    #[test]
    fn strings_escape_and_nonfinite_floats_stringify() {
        let (recorder, metrics) = recording();
        metrics.event("e", &[("msg", "a\"b\\c\nd".into()), ("bad", f64::NAN.into())]);
        metrics.gauge("inf", f64::INFINITY);
        let json = recorder.to_json();
        assert!(json.contains("\"msg\":\"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"bad\":\"NaN\""));
        assert!(json.contains("\"inf\":\"Infinity\""));
    }

    #[test]
    fn identical_sequences_render_identically() {
        let run = || {
            let (recorder, metrics) = recording();
            let span = metrics.span("stage", &[("stage", "solve".into())]);
            metrics.add("solve.subproblems", 4);
            metrics.observe("solve.subproblem_us", 55.0);
            span.end();
            recorder.to_json_redacted()
        };
        assert_eq!(run(), run());
    }
}
