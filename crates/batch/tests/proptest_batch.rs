//! Determinism properties of the batch scheduler: for any pool size —
//! and for any failure policy, warm or cold memo — the pooled batch
//! run must be **bit-identical** to the sequential batch run. This is
//! the suite the nightly ThreadSanitizer job drives over the scenario
//! fan-out (`.github/workflows/scheduled.yml`).

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_batch::{
    BatchFaultPlan, BatchOptions, BatchReport, BatchRunner, FailureKind, FaultMode, FaultPoint,
    ScenarioFault, ScenarioGrid, SupervisorOptions,
};
use dcc_core::{FailurePolicy, SimulationConfig, StrategyKind};
use dcc_engine::PoolSize;
use dcc_obs::{JsonRecorder, Metrics};
use dcc_trace::{SyntheticConfig, TraceDataset};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

const SEEDS: [u64; 2] = [11, 52];

fn trace(seed: u64) -> TraceDataset {
    let mut synth = SyntheticConfig::small(seed);
    synth.n_honest = 14;
    synth.n_ncm = 5;
    synth.n_cm_target = 6;
    synth.n_rounds = 2;
    synth.n_products = 160;
    synth.generate()
}

/// A small mixed grid: two traces, three μs (one poisonous under
/// non-abort policies), two budget fractions, two strategies, short
/// simulation. 24 scenarios.
fn grid(poison: bool) -> ScenarioGrid {
    let mut grid = ScenarioGrid::for_trace(trace(SEEDS[0]), &[1.5, 1.0]);
    grid.traces.push(dcc_batch::TraceSpec {
        label: "second".to_string(),
        source: dcc_engine::TraceSource::Provided(trace(SEEDS[1])),
    });
    if poison {
        grid.mus.push(-1.0);
    }
    grid.budget_fractions = vec![0.5, 1.0];
    grid.strategies =
        vec![StrategyKind::DynamicContract, StrategyKind::FixedPayment { amount: 0.75 }];
    grid.sim = Some(SimulationConfig { rounds: 4, feedback_noise_sd: 0.25, seed: 9 });
    grid
}

/// Bit-exact string encoding of everything deterministic in a report:
/// scenario identities, cache flags, per-worker contracts (f64s via
/// `to_bits`), budget selections, and simulation utilities. Wall-clock
/// fields are deliberately excluded.
fn encode(report: &BatchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "stats {:?}", report.stats);
    for r in &report.records {
        let s = &r.scenario;
        let _ = write!(
            out,
            "#{} t{} mu={:016x} bf={:016x} strat={} d{} f{} s{} ",
            s.id,
            s.trace,
            s.mu.to_bits(),
            s.budget_fraction.to_bits(),
            dcc_batch::strategy_label(s.strategy),
            u8::from(r.detect_cached),
            u8::from(r.fit_cached),
            u8::from(r.solve_cached),
        );
        match (r.failure(), r.outcome()) {
            (Some(e), _) => {
                let _ = writeln!(out, "err={e}");
            }
            (None, None) => {
                let _ = writeln!(out, "restored");
            }
            (None, Some(o)) => {
                let _ = write!(
                    out,
                    "u={:016x} spend={:016x} funded={:?} ",
                    o.design.total_requester_utility.to_bits(),
                    o.full_spend.to_bits(),
                    o.budget.funded,
                );
                for a in &o.design.agents {
                    let _ = write!(
                        out,
                        "[{} {:016x} {:016x}]",
                        a.worker.0,
                        a.compensation.to_bits(),
                        a.induced_effort.to_bits(),
                    );
                }
                match &o.sim {
                    Some(sim) => {
                        let _ = write!(out, " sim={:016x}", sim.cumulative_requester_utility.to_bits());
                        for c in &sim.agent_compensation {
                            let _ = write!(out, ",{:016x}", c.to_bits());
                        }
                    }
                    None => {
                        let _ = write!(out, " sim=none");
                    }
                }
                let _ = writeln!(out);
            }
        }
    }
    out
}

fn reference(poison: bool) -> &'static String {
    static CLEAN: OnceLock<String> = OnceLock::new();
    static POISON: OnceLock<String> = OnceLock::new();
    let cell = if poison { &POISON } else { &CLEAN };
    cell.get_or_init(|| {
        let runner = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Sequential,
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        });
        encode(&runner.run(&grid(poison)).expect("sequential reference"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The batch scheduler is bit-identical at every pool size, with
    /// and without mid-batch scenario failures.
    #[test]
    fn batch_report_is_pool_invariant(pool in 2usize..=16, poison in any::<bool>()) {
        let runner = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Fixed(pool),
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        });
        let report = runner.run(&grid(poison)).expect("pooled batch run");
        prop_assert_eq!(&encode(&report), reference(poison));
    }

    /// A warm memo changes throughput, never results: rerunning the
    /// grid on the same runner reproduces the cold report bit-exactly
    /// (cache *flags* flip to hits, which the stats record).
    #[test]
    fn warm_memo_preserves_results(pool in 1usize..=8) {
        let runner = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Fixed(pool),
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        });
        let cold = runner.run(&grid(false)).expect("cold run");
        let warm = runner.run(&grid(false)).expect("warm run");
        prop_assert_eq!(warm.stats.detect.misses, 0);
        prop_assert_eq!(warm.stats.fit.misses, 0);
        prop_assert_eq!(warm.stats.solve.misses, 0);
        for (c, w) in cold.records.iter().zip(&warm.records) {
            let (c, w) = (c.outcome().unwrap(), w.outcome().unwrap());
            prop_assert_eq!(
                c.design.total_requester_utility.to_bits(),
                w.design.total_requester_utility.to_bits()
            );
            prop_assert_eq!(&c.budget.funded, &w.budget.funded);
        }
    }

    /// The redacted metrics document is pool-size-independent: all
    /// recording happens post-merge in input order, and the timing
    /// redaction zeroes span durations, `_us` histograms, and
    /// `_per_sec` gauges.
    #[test]
    fn redacted_batch_metrics_are_pool_invariant(pool in 2usize..=8) {
        let render = |pool: PoolSize| {
            let recorder = Arc::new(JsonRecorder::new());
            let runner = BatchRunner::with_options(BatchOptions {
                pool,
                policy: FailurePolicy::Skip,
                metrics: Metrics::new(recorder.clone()),
            });
            runner.run(&grid(false)).expect("metered batch run");
            recorder.to_json_redacted()
        };
        // batch.pool differs by construction; compare after fixing it.
        let seq = render(PoolSize::Sequential).replace("\"batch.pool\":1", "\"batch.pool\":X");
        let par = render(PoolSize::Fixed(pool))
            .replace(&format!("\"batch.pool\":{pool}"), "\"batch.pool\":X");
        prop_assert_eq!(seq, par);
    }

    /// A scenario whose solve stage panics *inside* the shared slot
    /// leaves no partial `StageMemo` entry at any pool size: the
    /// poisoned solve key is absent, shared detect/fit state still
    /// lands, and every sibling is bit-identical to the sequential
    /// unfaulted reference.
    #[test]
    fn panicking_scenario_leaves_no_partial_memo_entry(pool in 1usize..=16) {
        // Simple μ-sweep grid: each scenario owns a unique solve key,
        // so the in-stage panic deterministically fires in scenario
        // 1's own slot while detect/fit are shared with siblings.
        let grid = ScenarioGrid::for_trace(trace(SEEDS[0]), &[1.5, 1.0, 0.7]);
        let sup = SupervisorOptions {
            faults: BatchFaultPlan::new().with_fault(1, ScenarioFault {
                point: FaultPoint::Solve,
                mode: FaultMode::PanicInStage,
                fails_before: usize::MAX,
            }),
            ..SupervisorOptions::default()
        };
        let runner = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Fixed(pool),
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        });
        let report = runner
            .run_supervised(&grid, &grid.scenarios(), &sup)
            .expect("supervised run")
            .into_report()
            .expect("completes");
        prop_assert_eq!(report.failed(), 1);
        prop_assert_eq!(
            report.records[1].failure().expect("quarantined").kind,
            FailureKind::Panic
        );
        // Memo contents: 1 trace, 1 detect, 1 fit, and only the two
        // healthy solves — the panicked computation must not leave a
        // poisoned entry behind.
        let (traces, detects, fits, solves) = runner.memo().len();
        prop_assert_eq!((traces, detects, fits, solves), (1, 1, 1, 2));
        // Siblings are bit-identical to the sequential unfaulted run.
        let clean = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Sequential,
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        })
        .run(&grid)
        .expect("clean sequential run");
        for (f, c) in report.records.iter().zip(&clean.records) {
            if f.scenario.id == 1 {
                continue;
            }
            let (f, c) = (f.summary().expect("sibling ok"), c.summary().expect("clean ok"));
            prop_assert_eq!(f, c);
        }
    }
}
