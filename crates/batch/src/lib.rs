//! # dcc-batch
//!
//! Deterministic multi-scenario batch scheduler for the dyncontract
//! engine — the first scale-out layer of the codebase.
//!
//! A [`ScenarioGrid`] describes a cartesian sweep (traces × μ values ×
//! budget fractions × strategies) plus the shared detection, design,
//! and simulation configuration. The [`BatchRunner`] fans the expanded
//! scenario list across a bounded `std::thread::scope` worker pool and
//! merges results back **in input order**, so batched output is
//! bit-identical to running every scenario serially through
//! [`dcc_engine::Engine`] — the property `tests/differential.rs`
//! proves across pool sizes 1–16.
//!
//! The throughput win comes from the [`StageMemo`]: a content-addressed
//! cache for the expensive Detect and Fit stage outputs, keyed on a
//! trace fingerprint plus the stage configuration. A 16-point μ-sweep
//! detects and fits once and re-solves 16 times, exactly like a serial
//! [`dcc_engine::RoundContext`] μ-sweep — but the memo is shared
//! *across* scenarios, traces, and runner invocations (warm reruns skip
//! straight to the solve).
//!
//! Every scenario executes under **supervision**
//! ([`BatchRunner::run_supervised`]): panics are caught and isolated
//! (a poisoned scenario can neither wedge nor contaminate the shared
//! memo), transient failures retry on the deterministic
//! `dcc-faults` backoff schedule, an optional logical work-budget
//! bounds each scenario, and terminal failures are quarantined into a
//! typed [`QuarantineReport`]. With a [`CheckpointConfig`] the runner
//! writes versioned `dcc-batch-ckpt/1` snapshots and can resume an
//! interrupted sweep with output byte-identical to an uninterrupted
//! run at every pool size — see `docs/batch.md` and
//! `docs/robustness.md`.
//!
//! ```
//! use dcc_batch::{BatchRunner, ScenarioGrid};
//! use dcc_trace::SyntheticConfig;
//!
//! # fn main() -> Result<(), dcc_batch::BatchError> {
//! let mut cfg = SyntheticConfig::small(7);
//! cfg.n_honest = 12;
//! cfg.n_ncm = 4;
//! cfg.n_cm_target = 4;
//! cfg.n_products = 80;
//! cfg.n_rounds = 2;
//! let grid = ScenarioGrid::for_trace(cfg.generate(), &[1.5, 1.0]);
//! let report = BatchRunner::new().run(&grid)?;
//! assert_eq!(report.records.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ckpt;
mod grid;
mod memo;
mod runner;
mod supervisor;

pub use ckpt::{AgentSummary, ScenarioSummary, SimSummary, CKPT_SCHEMA};
pub use grid::{parse_strategy, strategy_label, Scenario, ScenarioGrid, TraceSpec, GRID_SCHEMA};
pub use memo::{CacheStats, MemoStats, StageMemo};
pub use runner::{
    BatchError, BatchOptions, BatchReport, BatchRunner, ScenarioOutcome, ScenarioRecord,
    ScenarioResult,
};
pub use supervisor::{
    BatchFaultPlan, BatchOutcome, CheckpointConfig, FailureKind, FaultMode, FaultPoint,
    QuarantineEntry, QuarantineReport, ScenarioFailure, ScenarioFault, SupervisorOptions,
};
