//! # dcc-batch
//!
//! Deterministic multi-scenario batch scheduler for the dyncontract
//! engine — the first scale-out layer of the codebase.
//!
//! A [`ScenarioGrid`] describes a cartesian sweep (traces × μ values ×
//! budget fractions × strategies) plus the shared detection, design,
//! and simulation configuration. The [`BatchRunner`] fans the expanded
//! scenario list across a bounded `std::thread::scope` worker pool and
//! merges results back **in input order**, so batched output is
//! bit-identical to running every scenario serially through
//! [`dcc_engine::Engine`] — the property `tests/differential.rs`
//! proves across pool sizes 1–16.
//!
//! The throughput win comes from the [`StageMemo`]: a content-addressed
//! cache for the expensive Detect and Fit stage outputs, keyed on a
//! trace fingerprint plus the stage configuration. A 16-point μ-sweep
//! detects and fits once and re-solves 16 times, exactly like a serial
//! [`dcc_engine::RoundContext`] μ-sweep — but the memo is shared
//! *across* scenarios, traces, and runner invocations (warm reruns skip
//! straight to the solve).
//!
//! ```
//! use dcc_batch::{BatchRunner, ScenarioGrid};
//! use dcc_trace::SyntheticConfig;
//!
//! # fn main() -> Result<(), dcc_batch::BatchError> {
//! let mut cfg = SyntheticConfig::small(7);
//! cfg.n_honest = 12;
//! cfg.n_ncm = 4;
//! cfg.n_cm_target = 4;
//! cfg.n_products = 80;
//! cfg.n_rounds = 2;
//! let grid = ScenarioGrid::for_trace(cfg.generate(), &[1.5, 1.0]);
//! let report = BatchRunner::new().run(&grid)?;
//! assert_eq!(report.records.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod memo;
mod runner;

pub use grid::{parse_strategy, strategy_label, Scenario, ScenarioGrid, TraceSpec, GRID_SCHEMA};
pub use memo::{CacheStats, MemoStats, StageMemo};
pub use runner::{
    BatchError, BatchOptions, BatchReport, BatchRunner, ScenarioOutcome, ScenarioRecord,
};
