//! Scenario grids: the cartesian sweep description the batch runner
//! expands and executes.
//!
//! A grid is (traces × μ values × budget fractions × strategies) plus
//! the shared detection/design/simulation configuration. The JSON form
//! (`dcc-batch/1`, see `docs/batch.md`) is what `dcc batch` consumes;
//! the Rust form is what the experiments build directly.

use crate::BatchError;
use dcc_core::{CollusionProofParams, DesignConfig, SimulationConfig, StrategyKind};
use dcc_detect::PipelineConfig;
use dcc_engine::TraceSource;
use dcc_faults::Json;
use dcc_trace::{SyntheticConfig, TraceDataset};
use std::path::PathBuf;

/// Schema identifier accepted in the grid spec's optional `schema`
/// field.
pub const GRID_SCHEMA: &str = "dcc-batch/1";

/// One trace the grid sweeps over, with a stable display label.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Label used in per-scenario metrics and CLI output.
    pub label: String,
    /// Where the trace comes from.
    pub source: TraceSource,
}

/// A multi-scenario sweep: every combination of trace × μ × budget
/// fraction × strategy becomes one [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Traces to sweep (outermost axis).
    pub traces: Vec<TraceSpec>,
    /// Unit-cost values μ to sweep.
    pub mus: Vec<f64>,
    /// Budget fractions of the full designed spend to sweep.
    pub budget_fractions: Vec<f64>,
    /// §V strategies to sweep (innermost axis).
    pub strategies: Vec<StrategyKind>,
    /// Repeated-game configuration; `None` runs design-only scenarios
    /// (the engine stops after contract construction).
    pub sim: Option<SimulationConfig>,
    /// Shared design configuration; each scenario substitutes its own
    /// μ into `design.params.mu`.
    pub design: DesignConfig,
    /// Shared detection-pipeline configuration.
    pub pipeline: PipelineConfig,
}

/// One expanded grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Dense index in grid-expansion order (trace-major, strategy-minor).
    pub id: usize,
    /// Index into [`ScenarioGrid::traces`].
    pub trace: usize,
    /// Unit cost μ for this scenario.
    pub mu: f64,
    /// Fraction of the full designed spend available as budget.
    pub budget_fraction: f64,
    /// §V strategy the simulate stage plays.
    pub strategy: StrategyKind,
}

impl ScenarioGrid {
    /// A design-only μ-sweep over one in-memory trace: budget fraction
    /// 1.0, dynamic contracts, no simulation, default design/pipeline.
    pub fn for_trace(trace: TraceDataset, mus: &[f64]) -> Self {
        ScenarioGrid {
            traces: vec![TraceSpec {
                label: "trace".to_string(),
                source: TraceSource::Provided(trace),
            }],
            mus: mus.to_vec(),
            budget_fractions: vec![1.0],
            strategies: vec![StrategyKind::DynamicContract],
            sim: None,
            design: DesignConfig::default(),
            pipeline: PipelineConfig::default(),
        }
    }

    /// Expands the grid into scenarios in deterministic order:
    /// trace-major, then μ, then budget fraction, then strategy.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(
            self.traces.len() * self.mus.len() * self.budget_fractions.len()
                * self.strategies.len(),
        );
        let mut id = 0usize;
        for trace in 0..self.traces.len() {
            for &mu in &self.mus {
                for &budget_fraction in &self.budget_fractions {
                    for &strategy in &self.strategies {
                        out.push(Scenario { id, trace, mu, budget_fraction, strategy });
                        id += 1;
                    }
                }
            }
        }
        out
    }

    /// Structural validation with `GridSpec.<field>` error naming (the
    /// same style as [`DesignConfig::validate`]).
    ///
    /// Deliberately does **not** check μ signs: a non-positive μ is a
    /// *runtime* scenario failure handled by the batch
    /// [`dcc_core::FailurePolicy`], exactly as a serial engine run
    /// would fail it.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::Spec`] naming the offending field.
    pub fn validate(&self) -> Result<(), BatchError> {
        if self.traces.is_empty() {
            return Err(spec("GridSpec.traces must be a non-empty array"));
        }
        if self.mus.is_empty() {
            return Err(spec("GridSpec.mus must be a non-empty array"));
        }
        for (i, mu) in self.mus.iter().enumerate() {
            if !mu.is_finite() {
                return Err(spec(format!("GridSpec.mus[{i}] must be finite, got {mu}")));
            }
        }
        if self.budget_fractions.is_empty() {
            return Err(spec("GridSpec.budget_fractions must be a non-empty array"));
        }
        for (i, f) in self.budget_fractions.iter().enumerate() {
            if !(f.is_finite() && *f >= 0.0) {
                return Err(spec(format!(
                    "GridSpec.budget_fractions[{i}] must be a nonnegative finite number, got {f}"
                )));
            }
        }
        if self.strategies.is_empty() {
            return Err(spec("GridSpec.strategies must be a non-empty array"));
        }
        if let Some(sim) = &self.sim {
            if sim.rounds == 0 {
                return Err(spec("GridSpec.sim.rounds must be >= 1, got 0"));
            }
            if !(sim.feedback_noise_sd.is_finite() && sim.feedback_noise_sd >= 0.0) {
                return Err(spec(format!(
                    "GridSpec.sim.noise must be a nonnegative finite number, got {}",
                    sim.feedback_noise_sd
                )));
            }
        }
        // The shared design carries a placeholder μ (each scenario
        // substitutes its own), so this checks only the μ-independent
        // fields; the error keeps the DesignConfig field naming under a
        // GridSpec.design prefix.
        let mut design = self.design;
        design.params.mu = 1.0;
        design
            .validate()
            .map_err(|e| spec(format!("GridSpec.design: {e}")))?;
        Ok(())
    }

    /// Parses a `dcc-batch/1` grid spec JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::Spec`] for malformed JSON, unknown fields,
    /// or field values that fail [`ScenarioGrid::validate`].
    pub fn parse(text: &str) -> Result<Self, BatchError> {
        let doc = Json::parse(text).map_err(|e| spec(format!("GridSpec is not valid JSON: {e}")))?;
        ScenarioGrid::from_json(&doc)
    }

    /// Builds a grid from an already-parsed JSON document (see
    /// [`ScenarioGrid::parse`]).
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::Spec`] naming the offending field.
    pub fn from_json(doc: &Json) -> Result<Self, BatchError> {
        let members = match doc {
            Json::Obj(members) => members,
            _ => return Err(spec("GridSpec must be a JSON object")),
        };
        for (key, _) in members {
            match key.as_str() {
                "schema" | "traces" | "mus" | "budget_fractions" | "strategies" | "sim"
                | "design" => {}
                other => {
                    return Err(spec(format!("GridSpec has unknown field \"{other}\"")));
                }
            }
        }
        if let Some(schema) = doc.get("schema") {
            match schema.as_str() {
                Some(s) if s == GRID_SCHEMA => {}
                Some(s) => {
                    return Err(spec(format!(
                        "GridSpec.schema must be \"{GRID_SCHEMA}\", got \"{s}\""
                    )));
                }
                None => return Err(spec("GridSpec.schema must be a string")),
            }
        }

        let traces = parse_traces(doc)?;
        let mus = parse_numbers(doc, "mus", &[])?;
        if mus.is_empty() {
            return Err(spec("GridSpec.mus must be a non-empty array of numbers"));
        }
        let budget_fractions = parse_numbers(doc, "budget_fractions", &[1.0])?;
        let strategies = parse_strategies(doc)?;
        let sim = parse_sim(doc)?;
        let design = parse_design(doc)?;

        let grid = ScenarioGrid {
            traces,
            mus,
            budget_fractions,
            strategies,
            sim,
            design,
            pipeline: PipelineConfig::default(),
        };
        grid.validate()?;
        Ok(grid)
    }
}

/// Round-trippable CLI/metrics label for a strategy: `dynamic`,
/// `exclude`, `fixed:<amount>`, or
/// `collusion-proof[:<base>:<slope>:<tolerance>]` (matching
/// [`parse_strategy`]; the bare form carries the default parameters).
pub fn strategy_label(strategy: StrategyKind) -> String {
    match strategy {
        StrategyKind::DynamicContract => "dynamic".to_string(),
        StrategyKind::ExcludeMalicious => "exclude".to_string(),
        StrategyKind::FixedPayment { amount } => format!("fixed:{amount}"),
        StrategyKind::CollusionProof { params } => {
            if params == CollusionProofParams::default() {
                "collusion-proof".to_string()
            } else {
                format!(
                    "collusion-proof:{}:{}:{}",
                    params.base, params.slope, params.tolerance
                )
            }
        }
    }
}

/// Parses a strategy label (`dynamic`, `exclude`, `fixed:<amount>`,
/// `collusion-proof[:<base>:<slope>:<tolerance>]`).
///
/// # Errors
///
/// Returns [`BatchError::Spec`] for an unknown label, a `fixed:` amount
/// that is not a nonnegative finite number, or collusion-proof
/// parameters outside their domain.
pub fn parse_strategy(label: &str) -> Result<StrategyKind, BatchError> {
    match label {
        "dynamic" => Ok(StrategyKind::DynamicContract),
        "exclude" => Ok(StrategyKind::ExcludeMalicious),
        "collusion-proof" => Ok(StrategyKind::CollusionProof {
            params: CollusionProofParams::default(),
        }),
        other => {
            if let Some(rest) = other.strip_prefix("collusion-proof:") {
                let parts: Vec<&str> = rest.split(':').collect();
                let parsed: Option<Vec<f64>> =
                    parts.iter().map(|p| p.parse::<f64>().ok()).collect();
                return match parsed.as_deref() {
                    Some([base, slope, tolerance]) if parts.len() == 3 => {
                        let params = CollusionProofParams {
                            base: *base,
                            slope: *slope,
                            tolerance: *tolerance,
                        };
                        params.validate().map_err(|e| spec(e.to_string()))?;
                        Ok(StrategyKind::CollusionProof { params })
                    }
                    _ => Err(spec(format!(
                        "strategy \"collusion-proof:<base>:<slope>:<tolerance>\" needs three \
                         numbers, got \"{rest}\""
                    ))),
                };
            }
            match other.strip_prefix("fixed:") {
                Some(amount) => match amount.parse::<f64>() {
                    Ok(a) if a.is_finite() && a >= 0.0 => {
                        Ok(StrategyKind::FixedPayment { amount: a })
                    }
                    _ => Err(spec(format!(
                        "strategy \"fixed:<amount>\" needs a nonnegative finite amount, \
                         got \"{amount}\""
                    ))),
                },
                None => Err(spec(format!(
                    "strategy must be \"dynamic\", \"exclude\", \"fixed:<amount>\", or \
                     \"collusion-proof[:<base>:<slope>:<tolerance>]\", got \"{other}\""
                ))),
            }
        }
    }
}

fn spec(message: impl Into<String>) -> BatchError {
    BatchError::Spec(message.into())
}

/// Seeds arrive as JSON numbers; checkpoint files string-encode u64s,
/// so accept both forms.
fn as_seed(v: &Json) -> Option<u64> {
    v.as_idx().map(|i| i as u64).or_else(|| v.as_u64())
}

fn parse_traces(doc: &Json) -> Result<Vec<TraceSpec>, BatchError> {
    let entries = doc
        .get("traces")
        .and_then(Json::as_arr)
        .ok_or_else(|| spec("GridSpec.traces must be a non-empty array"))?;
    if entries.is_empty() {
        return Err(spec("GridSpec.traces must be a non-empty array"));
    }
    let mut out = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let members = match entry {
            Json::Obj(members) => members,
            _ => return Err(spec(format!("GridSpec.traces[{i}] must be an object"))),
        };
        for (key, _) in members {
            match key.as_str() {
                "label" | "csv" | "col" | "scale" | "seed" => {}
                other => {
                    return Err(spec(format!(
                        "GridSpec.traces[{i}] has unknown field \"{other}\""
                    )));
                }
            }
        }
        let label = match entry.get("label") {
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| spec(format!("GridSpec.traces[{i}].label must be a string")))?
                    .to_string(),
            ),
            None => None,
        };
        let (source, default_label) = match (entry.get("csv"), entry.get("col"), entry.get("scale"))
        {
            (Some(csv), None, None) => {
                let dir = csv
                    .as_str()
                    .ok_or_else(|| spec(format!("GridSpec.traces[{i}].csv must be a string")))?;
                (TraceSource::CsvDir(PathBuf::from(dir)), dir.to_string())
            }
            (None, Some(col), None) => {
                let path = col
                    .as_str()
                    .ok_or_else(|| spec(format!("GridSpec.traces[{i}].col must be a string")))?;
                (TraceSource::Columnar(PathBuf::from(path)), path.to_string())
            }
            (None, None, Some(scale)) => {
                let seed = match entry.get("seed") {
                    Some(v) => as_seed(v).ok_or_else(|| {
                        spec(format!("GridSpec.traces[{i}].seed must be a nonnegative integer"))
                    })?,
                    None => 42,
                };
                let scale = scale.as_str().unwrap_or("");
                let config = match scale {
                    "small" => SyntheticConfig::small(seed),
                    "paper" => SyntheticConfig::paper_scale(seed),
                    other => {
                        return Err(spec(format!(
                            "GridSpec.traces[{i}].scale must be \"small\" or \"paper\", got \"{other}\""
                        )));
                    }
                };
                (TraceSource::Synthetic(config), format!("{scale}-{seed}"))
            }
            _ => {
                return Err(spec(format!(
                    "GridSpec.traces[{i}] must set exactly one of \"csv\", \"col\", or \"scale\""
                )));
            }
        };
        out.push(TraceSpec { label: label.unwrap_or(default_label), source });
    }
    Ok(out)
}

fn parse_numbers(doc: &Json, field: &str, default: &[f64]) -> Result<Vec<f64>, BatchError> {
    let Some(value) = doc.get(field) else {
        return Ok(default.to_vec());
    };
    let items = value
        .as_arr()
        .ok_or_else(|| spec(format!("GridSpec.{field} must be an array of numbers")))?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let x = item
            .as_f64()
            .ok_or_else(|| spec(format!("GridSpec.{field}[{i}] must be a number")))?;
        out.push(x);
    }
    Ok(out)
}

fn parse_strategies(doc: &Json) -> Result<Vec<StrategyKind>, BatchError> {
    let Some(value) = doc.get("strategies") else {
        return Ok(vec![StrategyKind::DynamicContract]);
    };
    let items = value
        .as_arr()
        .ok_or_else(|| spec("GridSpec.strategies must be an array of strategy labels"))?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let label = item
            .as_str()
            .ok_or_else(|| spec(format!("GridSpec.strategies[{i}] must be a string")))?;
        out.push(parse_strategy(label).map_err(|e| match e {
            BatchError::Spec(msg) => spec(format!("GridSpec.strategies[{i}]: {msg}")),
            other => other,
        })?);
    }
    Ok(out)
}

fn parse_sim(doc: &Json) -> Result<Option<SimulationConfig>, BatchError> {
    let Some(value) = doc.get("sim") else {
        return Ok(None);
    };
    let members = match value {
        Json::Obj(members) => members,
        _ => return Err(spec("GridSpec.sim must be an object")),
    };
    for (key, _) in members {
        match key.as_str() {
            "rounds" | "noise" | "seed" => {}
            other => {
                return Err(spec(format!("GridSpec.sim has unknown field \"{other}\"")));
            }
        }
    }
    let mut sim = SimulationConfig::default();
    if let Some(rounds) = value.get("rounds") {
        sim.rounds = rounds
            .as_idx()
            .filter(|r| *r >= 1)
            .ok_or_else(|| spec("GridSpec.sim.rounds must be an integer >= 1"))?;
    }
    if let Some(noise) = value.get("noise") {
        sim.feedback_noise_sd = noise
            .as_f64()
            .filter(|x| x.is_finite() && *x >= 0.0)
            .ok_or_else(|| spec("GridSpec.sim.noise must be a nonnegative finite number"))?;
    }
    if let Some(seed) = value.get("seed") {
        sim.seed = as_seed(seed)
            .ok_or_else(|| spec("GridSpec.sim.seed must be a nonnegative integer"))?;
    }
    Ok(Some(sim))
}

fn parse_design(doc: &Json) -> Result<DesignConfig, BatchError> {
    let mut design = DesignConfig::default();
    let Some(value) = doc.get("design") else {
        return Ok(design);
    };
    let members = match value {
        Json::Obj(members) => members,
        _ => return Err(spec("GridSpec.design must be an object")),
    };
    for (key, _) in members {
        match key.as_str() {
            "omega" | "beta" | "intervals" | "effort_quantile" | "per_worker_fit_min_reviews" => {}
            other => {
                return Err(spec(format!("GridSpec.design has unknown field \"{other}\"")));
            }
        }
    }
    if let Some(omega) = value.get("omega") {
        design.params.omega = omega
            .as_f64()
            .ok_or_else(|| spec("GridSpec.design.omega must be a number"))?;
    }
    if let Some(beta) = value.get("beta") {
        design.params.beta = beta
            .as_f64()
            .ok_or_else(|| spec("GridSpec.design.beta must be a number"))?;
    }
    if let Some(intervals) = value.get("intervals") {
        design.intervals = intervals
            .as_idx()
            .ok_or_else(|| spec("GridSpec.design.intervals must be a nonnegative integer"))?;
    }
    if let Some(q) = value.get("effort_quantile") {
        design.effort_quantile = q
            .as_f64()
            .ok_or_else(|| spec("GridSpec.design.effort_quantile must be a number"))?;
    }
    if let Some(min) = value.get("per_worker_fit_min_reviews") {
        design.per_worker_fit_min_reviews = Some(min.as_idx().ok_or_else(|| {
            spec("GridSpec.design.per_worker_fit_min_reviews must be a nonnegative integer")
        })?);
    }
    Ok(design)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

    use super::*;

    fn minimal() -> String {
        r#"{
            "schema": "dcc-batch/1",
            "traces": [{"scale": "small", "seed": 42}],
            "mus": [1.5, 1.0]
        }"#
        .to_string()
    }

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let grid = ScenarioGrid::parse(&minimal()).expect("minimal spec");
        assert_eq!(grid.traces.len(), 1);
        assert_eq!(grid.traces[0].label, "small-42");
        assert_eq!(grid.mus, vec![1.5, 1.0]);
        assert_eq!(grid.budget_fractions, vec![1.0]);
        assert_eq!(grid.strategies, vec![StrategyKind::DynamicContract]);
        assert!(grid.sim.is_none());
    }

    #[test]
    fn expansion_order_is_trace_major_strategy_minor() {
        let mut grid = ScenarioGrid::parse(&minimal()).expect("minimal spec");
        grid.budget_fractions = vec![0.5, 1.0];
        grid.strategies = vec![StrategyKind::DynamicContract, StrategyKind::ExcludeMalicious];
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 2 * 2 * 2);
        assert_eq!(scenarios[0].id, 0);
        assert_eq!(scenarios[0].strategy, StrategyKind::DynamicContract);
        assert_eq!(scenarios[1].strategy, StrategyKind::ExcludeMalicious);
        assert!((scenarios[1].budget_fraction - 0.5).abs() < 1e-15);
        assert!((scenarios[2].budget_fraction - 1.0).abs() < 1e-15);
        assert!((scenarios[4].mu - 1.0).abs() < 1e-15);
        assert_eq!(scenarios[7].id, 7);
    }

    #[test]
    fn unknown_top_level_field_is_named() {
        let err = ScenarioGrid::parse(r#"{"traces": [], "mu": [1.0]}"#).unwrap_err();
        assert!(err.to_string().contains("GridSpec has unknown field \"mu\""), "{err}");
    }

    #[test]
    fn missing_mus_is_a_spec_error() {
        let err =
            ScenarioGrid::parse(r#"{"traces": [{"scale": "small", "seed": 1}]}"#).unwrap_err();
        assert!(err.to_string().contains("GridSpec.mus"), "{err}");
    }

    #[test]
    fn bad_schema_is_named() {
        let err = ScenarioGrid::parse(r#"{"schema": "dcc-batch/9", "traces": [], "mus": [1.0]}"#)
            .unwrap_err();
        assert!(err.to_string().contains("GridSpec.schema"), "{err}");
    }

    #[test]
    fn bad_strategy_is_named_with_index() {
        let spec = r#"{
            "traces": [{"scale": "small", "seed": 1}],
            "mus": [1.0],
            "strategies": ["dynamic", "bogus"]
        }"#;
        let err = ScenarioGrid::parse(spec).unwrap_err();
        assert!(err.to_string().contains("GridSpec.strategies[1]"), "{err}");
    }

    #[test]
    fn fixed_strategy_parses_amount() {
        let got = parse_strategy("fixed:1.25").expect("fixed strategy");
        match got {
            StrategyKind::FixedPayment { amount } => assert!((amount - 1.25).abs() < 1e-15),
            other => panic!("expected FixedPayment, got {other:?}"),
        }
        assert!(parse_strategy("fixed:nan").is_err());
        assert!(parse_strategy("fixed:-1").is_err());
    }

    #[test]
    fn negative_mu_passes_the_spec() {
        // μ sign is a runtime failure (FailurePolicy territory), not a
        // spec failure — the CLI abort test depends on this.
        let spec = r#"{
            "traces": [{"scale": "small", "seed": 1}],
            "mus": [1.0, -1.0]
        }"#;
        assert!(ScenarioGrid::parse(spec).is_ok());
    }

    #[test]
    fn trace_entry_needs_exactly_one_source() {
        let both = r#"{"traces": [{"csv": "x", "scale": "small"}], "mus": [1.0]}"#;
        let neither = r#"{"traces": [{"label": "x"}], "mus": [1.0]}"#;
        for bad in [both, neither] {
            let err = ScenarioGrid::parse(bad).unwrap_err();
            assert!(err.to_string().contains("GridSpec.traces[0]"), "{err}");
        }
    }

    #[test]
    fn sim_block_overrides_defaults() {
        let spec = r#"{
            "traces": [{"scale": "small", "seed": 1}],
            "mus": [1.0],
            "sim": {"rounds": 3, "noise": 0.0, "seed": 9}
        }"#;
        let grid = ScenarioGrid::parse(spec).expect("sim spec");
        let sim = grid.sim.expect("sim present");
        assert_eq!(sim.rounds, 3);
        assert_eq!(sim.seed, 9);
        let err = ScenarioGrid::parse(
            r#"{"traces": [{"scale": "small", "seed": 1}], "mus": [1.0], "sim": {"rounds": 0}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("GridSpec.sim.rounds"), "{err}");
    }

    #[test]
    fn design_overrides_are_validated() {
        let err = ScenarioGrid::parse(
            r#"{"traces": [{"scale": "small", "seed": 1}], "mus": [1.0], "design": {"intervals": 0}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("GridSpec.design"), "{err}");
    }

    #[test]
    fn strategy_labels_roundtrip() {
        for label in ["dynamic", "exclude", "fixed:2"] {
            let strategy = parse_strategy(label).expect("parse");
            assert_eq!(strategy_label(strategy), label);
        }
    }
}
