//! The deterministic, supervised batch scheduler.
//!
//! Scenarios fan out over a bounded `std::thread::scope` pool pulling
//! from an atomic work queue; results land in per-index slots and are
//! merged back **in input order**, so the report (and the redacted
//! metrics document) is bit-identical for every pool size — the same
//! contract `solve_subproblems_pooled` gives the solve stage, lifted to
//! whole scenarios.
//!
//! Cross-scenario reuse goes through the shared [`StageMemo`]: each
//! distinct (trace, pipeline) pair runs detection once, each distinct
//! (trace, pipeline, fit-config) triple fits once, and each distinct
//! (trace, pipeline, fit-config, design-config) quadruple — μ included,
//! budget fraction and strategy excluded — solves once, no matter how
//! many scenarios or how many threads ask for it. In-flight
//! deduplication uses per-key [`Slot`]s: two workers never compute the
//! same detection concurrently, and a *panicking* computation resets
//! its slot instead of wedging it, so a poisoned scenario can neither
//! block nor contaminate its siblings (values reach the memo only from
//! successfully computed slots).
//!
//! Every scenario runs under supervision
//! ([`BatchRunner::run_supervised`]): `catch_unwind` panic isolation,
//! the deterministic retry schedule of
//! [`dcc_faults::retry_with_backoff_on`], an optional logical
//! work-budget, and quarantine into [`BatchReport::quarantine`] when
//! retries exhaust. With a [`CheckpointConfig`] the runner snapshots
//! partial results (`dcc-batch-ckpt/1`) and can resume an interrupted
//! sweep with output byte-identical to an uninterrupted run.
//!
//! Cache accounting is *deterministic by convention*: a scenario is
//! counted as cached when the memo already held the key at run start
//! or a lower-id scenario shares it — i.e. what a serial execution in
//! scenario order would have reused. Under a parallel pool a high-id
//! scenario may physically race ahead and compute a value its flag
//! calls a hit; the flags describe the serial schedule, not thread
//! timing, which keeps the metrics document pool-size-independent —
//! and, because the accounting pass covers restored scenarios too,
//! resume-independent.

use crate::ckpt::{parse_checkpoint, CkptEntry, CkptPayload, CkptWriter, ScenarioSummary};
use crate::grid::{strategy_label, Scenario, ScenarioGrid, TraceSpec};
use crate::memo::{
    fit_fingerprint, pipeline_fingerprint, solve_fingerprint, trace_fingerprint, DetectKey, FitKey,
    Fnv, MemoStats, SolveKey, StageMemo,
};
use crate::supervisor::{
    panic_message, supervise_attempts, AttemptError, BatchFaultPlan, BatchOutcome, FailureKind,
    FaultPoint, QuarantineEntry, QuarantineReport, ScenarioFailure, Slot, SupervisorOptions,
    WorkBudget,
};
use dcc_core::{
    select_within_budget, BudgetedSelection, ContractDesign, DesignPrep, FailurePolicy,
    SimulationOutcome,
};
use dcc_detect::{run_pipeline, DetectionResult};
use dcc_engine::{
    Engine, EngineConfig, EngineSimOutcome, PoolSize, RoundContext, StageKind, TraceSource,
};
use dcc_obs::{names as obs, AttrValue, Metrics};
use dcc_trace::{read_trace_columnar, read_trace_csv, TraceDataset};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
// dcc-lint: allow(wall-clock, reason = "per-scenario durations are measured here and published through dcc-obs spans, redacted in deterministic output")
use std::time::{Duration, Instant};

/// Batch-layer failure.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// The grid spec is structurally invalid (exit code 2 territory).
    Spec(String),
    /// A scenario failed under [`FailurePolicy::Abort`].
    Scenario {
        /// Id of the first failing scenario in input order.
        id: usize,
        /// The underlying engine/core error message.
        message: String,
    },
    /// A checkpoint could not be read, validated, or written.
    Checkpoint(String),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Spec(msg) | BatchError::Checkpoint(msg) => write!(f, "{msg}"),
            BatchError::Scenario { id, message } => {
                write!(f, "scenario {id} failed: {message}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Scheduler options, orthogonal to the grid itself.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Scenario-level worker pool. Inside a scenario the solve stage
    /// runs sequentially — parallelism comes from scenario fan-out, so
    /// the two pools never multiply.
    pub pool: PoolSize,
    /// Batch-level failure policy: [`FailurePolicy::Abort`] stops at
    /// the first failing scenario (in input order); the other policies
    /// record the failure and keep going. Per-subproblem degradation
    /// inside a scenario is governed separately by
    /// `ScenarioGrid::design.failure_policy`.
    pub policy: FailurePolicy,
    /// Observability sink; all recording happens post-merge in input
    /// order, so the redacted document is pool-size-independent.
    pub metrics: Metrics,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            pool: PoolSize::Auto,
            policy: FailurePolicy::Abort,
            metrics: Metrics::noop(),
        }
    }
}

/// Everything one successful scenario produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The assembled contract design at this scenario's μ.
    pub design: ContractDesign,
    /// Budget-constrained funding selection at
    /// `budget_fraction × full_spend`.
    pub budget: BudgetedSelection,
    /// Total designed spend at fraction 1.0 (the budget baseline).
    pub full_spend: f64,
    /// Repeated-game outcome; `None` for design-only grids.
    pub sim: Option<SimulationOutcome>,
    /// The (possibly memo-shared) detection result the design used.
    pub detection: Arc<DetectionResult>,
}

/// How a successful scenario's results are held: computed in full this
/// run, or restored (canonical summary only) from a checkpoint.
#[derive(Debug, Clone)]
pub enum ScenarioResult {
    /// Computed this run; the full outcome is available.
    Computed(ScenarioOutcome),
    /// Restored from a `dcc-batch-ckpt/1` checkpoint; only the
    /// canonical [`ScenarioSummary`] survives a process boundary.
    Restored(ScenarioSummary),
}

/// One scenario's merged result.
#[derive(Debug, Clone)]
pub struct ScenarioRecord {
    /// The grid point this record answers.
    pub scenario: Scenario,
    /// The outcome (computed or restored), or the terminal failure
    /// (present in the report only under non-abort policies).
    pub result: Result<ScenarioResult, ScenarioFailure>,
    /// Supervised attempts performed (1 = first try succeeded; for a
    /// restored record, the attempt count of the original run).
    pub attempts: usize,
    /// Whether the serial schedule would have reused the detection
    /// (see the module docs on deterministic cache accounting).
    pub detect_cached: bool,
    /// Whether the serial schedule would have reused the fit.
    pub fit_cached: bool,
    /// Whether the serial schedule would have reused the solved design
    /// (same trace, pipeline, and design config — μ included).
    pub solve_cached: bool,
    /// Worker-measured wall time (redacted in deterministic output;
    /// zero for restored records).
    pub elapsed: Duration,
}

impl ScenarioRecord {
    /// The full computed outcome; `None` for failed *or restored*
    /// records.
    pub fn outcome(&self) -> Option<&ScenarioOutcome> {
        match &self.result {
            Ok(ScenarioResult::Computed(outcome)) => Some(outcome),
            _ => None,
        }
    }

    /// The canonical output summary — derived from the outcome when
    /// computed, carried verbatim when restored. This is the surface
    /// renderers should consume: it is bit-identical either way.
    pub fn summary(&self) -> Option<ScenarioSummary> {
        match &self.result {
            Ok(ScenarioResult::Computed(outcome)) => Some(ScenarioSummary::of(outcome)),
            Ok(ScenarioResult::Restored(summary)) => Some(summary.clone()),
            Err(_) => None,
        }
    }

    /// The terminal failure, if the scenario was quarantined.
    pub fn failure(&self) -> Option<&ScenarioFailure> {
        self.result.as_ref().err()
    }

    /// Whether this record was restored from a checkpoint.
    pub fn restored(&self) -> bool {
        matches!(self.result, Ok(ScenarioResult::Restored(_)))
    }

    /// The full outcome, or a [`dcc_core::CoreError`] describing why
    /// it is unavailable (failure, or checkpoint-restored summary).
    ///
    /// # Errors
    ///
    /// [`dcc_core::CoreError::InvalidInput`] with the failure message,
    /// or a hint to rerun without `--resume` for restored records.
    pub fn require_outcome(&self) -> Result<&ScenarioOutcome, dcc_core::CoreError> {
        match &self.result {
            Ok(ScenarioResult::Computed(outcome)) => Ok(outcome),
            Ok(ScenarioResult::Restored(_)) => Err(dcc_core::CoreError::InvalidInput(format!(
                "scenario {} was restored from a checkpoint (summary only); \
                 rerun without --resume for the full outcome",
                self.scenario.id
            ))),
            Err(failure) => Err(dcc_core::CoreError::InvalidInput(failure.to_string())),
        }
    }
}

/// The merged output of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-scenario records, in input (grid-expansion) order.
    pub records: Vec<ScenarioRecord>,
    /// Deterministic cache accounting for this run (covers restored
    /// scenarios too, so it is resume-invariant).
    pub stats: MemoStats,
    /// Scenarios that exhausted supervision, in input order.
    pub quarantine: QuarantineReport,
    /// Scenarios restored from a checkpoint instead of recomputed.
    pub restored: usize,
    /// Total wall time (not part of deterministic output).
    pub elapsed: Duration,
}

impl BatchReport {
    /// Records that ended in an error.
    pub fn failed(&self) -> usize {
        self.records.iter().filter(|r| r.result.is_err()).count()
    }
}

/// The deterministic multi-scenario scheduler.
#[derive(Debug, Default)]
pub struct BatchRunner {
    memo: Arc<StageMemo>,
    options: BatchOptions,
}

impl BatchRunner {
    /// A runner with default options and a cold memo.
    pub fn new() -> Self {
        BatchRunner::default()
    }

    /// A runner with the given options and a cold memo.
    pub fn with_options(options: BatchOptions) -> Self {
        BatchRunner { memo: Arc::new(StageMemo::new()), options }
    }

    /// A runner sharing an existing memo (warm reruns, cross-grid
    /// reuse).
    pub fn with_memo(memo: Arc<StageMemo>, options: BatchOptions) -> Self {
        BatchRunner { memo, options }
    }

    /// The shared stage memo.
    pub fn memo(&self) -> &Arc<StageMemo> {
        &self.memo
    }

    /// Expands and runs the full grid.
    ///
    /// # Errors
    ///
    /// [`BatchError::Spec`] if the grid fails validation;
    /// [`BatchError::Scenario`] if a scenario fails under
    /// [`FailurePolicy::Abort`].
    pub fn run(&self, grid: &ScenarioGrid) -> Result<BatchReport, BatchError> {
        self.run_scenarios(grid, &grid.scenarios())
    }

    /// Runs an explicit scenario list against the grid's shared
    /// configuration (the experiments use this for non-cartesian
    /// sweeps). Records come back in the given order.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchRunner::run`]; additionally rejects a
    /// scenario whose `trace` index is out of bounds.
    pub fn run_scenarios(
        &self,
        grid: &ScenarioGrid,
        scenarios: &[Scenario],
    ) -> Result<BatchReport, BatchError> {
        match self.run_supervised(grid, scenarios, &SupervisorOptions::default())? {
            BatchOutcome::Completed(report) => Ok(report),
            // Unreachable: the default options set no kill threshold.
            BatchOutcome::Killed { completed, total, .. } => Err(BatchError::Checkpoint(format!(
                "batch killed at {completed}/{total} without a kill threshold"
            ))),
        }
    }

    /// Runs a scenario list under full supervision: panic isolation,
    /// deterministic retries, work budgets, quarantine, and (when
    /// configured) `dcc-batch-ckpt/1` checkpointing with kill/resume.
    ///
    /// A resumed run's report — records, summaries, failures, cache
    /// flags, stats — is byte-identical to an uninterrupted run at
    /// every pool size; see `docs/batch.md`.
    ///
    /// # Errors
    ///
    /// [`BatchError::Spec`] for invalid grids or option combinations,
    /// [`BatchError::Scenario`] under [`FailurePolicy::Abort`],
    /// [`BatchError::Checkpoint`] for unreadable, mismatched, or
    /// unwritable checkpoints.
    pub fn run_supervised(
        &self,
        grid: &ScenarioGrid,
        scenarios: &[Scenario],
        sup: &SupervisorOptions,
    ) -> Result<BatchOutcome, BatchError> {
        grid.validate()?;
        for s in scenarios {
            if s.trace >= grid.traces.len() {
                return Err(BatchError::Spec(format!(
                    "scenario {} references trace {} but GridSpec.traces has {} entries",
                    s.id,
                    s.trace,
                    grid.traces.len()
                )));
            }
        }
        if sup.resume && sup.checkpoint.is_none() {
            return Err(BatchError::Spec(
                "resume requires a checkpoint path".to_string(),
            ));
        }
        if sup.kill_after.is_some() && sup.checkpoint.is_none() {
            return Err(BatchError::Spec(
                "kill_after requires a checkpoint path".to_string(),
            ));
        }
        // dcc-lint: allow(wall-clock, reason = "total batch wall time, published as a redacted throughput gauge")
        let started = Instant::now();

        let mut stats = MemoStats::default();
        let traces = self.resolve_traces(grid, scenarios, &mut stats)?;

        let pipeline_fp = pipeline_fingerprint(&grid.pipeline);
        let fit_fp = fit_fingerprint(&grid.design);
        let grid_fp = grid_fingerprint(grid, scenarios, &traces, pipeline_fp, fit_fp);
        let n = scenarios.len();

        // Checkpoint restore happens up front: restored indices skip
        // execution entirely but still flow through the accounting
        // pass below, which keeps the cache flags resume-invariant.
        let restored: BTreeMap<usize, CkptEntry> = match (&sup.checkpoint, sup.resume) {
            (Some(config), true) => {
                let text = std::fs::read_to_string(&config.path).map_err(|e| {
                    BatchError::Checkpoint(format!(
                        "cannot read checkpoint {}: {e}",
                        config.path.display()
                    ))
                })?;
                parse_checkpoint(&text, grid_fp, n).map_err(BatchError::Checkpoint)?
            }
            _ => BTreeMap::new(),
        };
        let writer = sup.checkpoint.as_ref().map(|config| {
            CkptWriter::new(&config.path, config.every, grid_fp, n, restored.clone())
        });

        // Per-key in-flight slots, pre-seeded from the persistent memo.
        // Cache flags are derived from the serial schedule (memo hit at
        // run start, or a lower-id scenario shares the key).
        let mut detect_slots: BTreeMap<DetectKey, DetectSlot> = BTreeMap::new();
        let mut fit_slots: BTreeMap<FitKey, FitSlot> = BTreeMap::new();
        let mut solve_slots: BTreeMap<SolveKey, SolveSlot> = BTreeMap::new();
        let mut detect_flags = Vec::with_capacity(n);
        let mut fit_flags = Vec::with_capacity(n);
        let mut solve_flags = Vec::with_capacity(n);
        for s in scenarios {
            let Some(Some((_, trace_fp))) = traces.get(s.trace) else {
                continue;
            };
            let dk: DetectKey = (*trace_fp, pipeline_fp);
            let fk: FitKey = (*trace_fp, pipeline_fp, fit_fp);
            let sk: SolveKey = (*trace_fp, pipeline_fp, fit_fp, scenario_solve_fp(grid, s));
            let detect_hit = match detect_slots.entry(dk) {
                std::collections::btree_map::Entry::Occupied(_) => true,
                std::collections::btree_map::Entry::Vacant(v) => match self.memo.get_detect(&dk) {
                    Some(value) => {
                        v.insert(Slot::seeded(value));
                        true
                    }
                    None => {
                        v.insert(Slot::new());
                        false
                    }
                },
            };
            let fit_hit = match fit_slots.entry(fk) {
                std::collections::btree_map::Entry::Occupied(_) => true,
                std::collections::btree_map::Entry::Vacant(v) => match self.memo.get_fit(&fk) {
                    Some(value) => {
                        v.insert(Slot::seeded(value));
                        true
                    }
                    None => {
                        v.insert(Slot::new());
                        false
                    }
                },
            };
            let solve_hit = match solve_slots.entry(sk) {
                std::collections::btree_map::Entry::Occupied(_) => true,
                std::collections::btree_map::Entry::Vacant(v) => match self.memo.get_solve(&sk) {
                    Some(value) => {
                        v.insert(Slot::seeded(value));
                        true
                    }
                    None => {
                        v.insert(Slot::new());
                        false
                    }
                },
            };
            detect_flags.push(detect_hit);
            fit_flags.push(fit_hit);
            solve_flags.push(solve_hit);
            stats.detect.record(detect_hit);
            stats.fit.record(fit_hit);
            stats.solve.record(solve_hit);
        }

        let workers = resolved_pool(self.options.pool, n);
        let slots: Vec<Mutex<Option<ScenarioRecord>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let fresh_done = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);

        let job = |i: usize, scenario: &Scenario| -> Option<ScenarioRecord> {
            let flags = (
                detect_flags.get(i).copied().unwrap_or(false),
                fit_flags.get(i).copied().unwrap_or(false),
                solve_flags.get(i).copied().unwrap_or(false),
            );
            if let Some(entry) = restored.get(&i) {
                let result = match &entry.payload {
                    CkptPayload::Summary(summary) => {
                        Ok(ScenarioResult::Restored(summary.clone()))
                    }
                    CkptPayload::Failure(failure) => Err(failure.clone()),
                };
                return Some(ScenarioRecord {
                    scenario: *scenario,
                    result,
                    attempts: entry.attempts,
                    detect_cached: flags.0,
                    fit_cached: flags.1,
                    solve_cached: flags.2,
                    elapsed: Duration::ZERO,
                });
            }
            let (trace, trace_fp) = traces.get(scenario.trace)?.as_ref()?;
            let dk: DetectKey = (*trace_fp, pipeline_fp);
            let fk: FitKey = (*trace_fp, pipeline_fp, fit_fp);
            let sk: SolveKey = (*trace_fp, pipeline_fp, fit_fp, scenario_solve_fp(grid, scenario));
            let detect_slot = detect_slots.get(&dk)?;
            let fit_slot = fit_slots.get(&fk)?;
            let solve_slot = solve_slots.get(&sk)?;
            // dcc-lint: allow(wall-clock, reason = "worker-measured scenario duration, recorded post-merge and redacted in deterministic output")
            let t0 = Instant::now();
            let (result, attempts) = supervise_attempts(scenario.id, sup.max_retries, |attempt| {
                run_attempt(
                    grid,
                    scenario,
                    trace,
                    detect_slot,
                    fit_slot,
                    solve_slot,
                    &sup.faults,
                    attempt,
                    sup.scenario_budget,
                )
            });
            Some(ScenarioRecord {
                scenario: *scenario,
                result: result.map(ScenarioResult::Computed),
                attempts,
                detect_cached: flags.0,
                fit_cached: flags.1,
                solve_cached: flags.2,
                elapsed: t0.elapsed(),
            })
        };
        // Stores one finished record: snapshot to the checkpoint, count
        // fresh completions toward the kill threshold, park the record
        // for the in-order merge.
        let complete = |i: usize, record: ScenarioRecord| {
            let fresh = !restored.contains_key(&i);
            if fresh {
                if let (Some(writer), Some(entry)) = (&writer, ckpt_entry_of(&record)) {
                    writer.record(i, entry);
                }
            }
            if let Some(slot) = slots.get(i) {
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(record);
            }
            if fresh {
                let done = fresh_done.fetch_add(1, Ordering::Relaxed) + 1;
                if sup.kill_after.is_some_and(|k| done >= k) {
                    stop.store(true, Ordering::Relaxed);
                }
            }
        };

        if workers <= 1 {
            for (i, scenario) in scenarios.iter().enumerate() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(record) = job(i, scenario) {
                    complete(i, record);
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let Some(scenario) = scenarios.get(i) else { break };
                        if let Some(record) = job(i, scenario) {
                            complete(i, record);
                        }
                    });
                }
            });
        }

        // Publish freshly computed values into the persistent memo so a
        // later run (or a shared runner) starts warm. Only `Ready`
        // slots publish — a slot whose computation panicked is `Empty`
        // again, so a poisoned scenario can never reach the memo.
        for (key, slot) in &detect_slots {
            if let Some(value) = slot.peek() {
                if self.memo.get_detect(key).is_none() {
                    self.memo.insert_detect(*key, value);
                }
            }
        }
        for (key, slot) in &fit_slots {
            if let Some(value) = slot.peek() {
                if self.memo.get_fit(key).is_none() {
                    self.memo.insert_fit(*key, value);
                }
            }
        }
        for (key, slot) in &solve_slots {
            if let Some(value) = slot.peek() {
                if self.memo.get_solve(key).is_none() {
                    self.memo.insert_solve(*key, value);
                }
            }
        }

        if stop.load(Ordering::Relaxed) {
            // Killed at the threshold: flush what completed and report
            // where to resume from. (`stop` is only ever set when a
            // kill threshold — and therefore a checkpoint — is set.)
            let Some(writer) = &writer else {
                return Err(BatchError::Checkpoint(
                    "batch killed without a checkpoint writer".to_string(),
                ));
            };
            writer.flush();
            if let Some(error) = writer.take_error() {
                return Err(BatchError::Checkpoint(error));
            }
            let checkpoint = sup
                .checkpoint
                .as_ref()
                .map(|c| c.path.clone())
                .unwrap_or_default();
            return Ok(BatchOutcome::Killed {
                completed: writer.completed(),
                total: n,
                checkpoint,
            });
        }

        // In-order merge.
        let mut records = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(record) => records.push(record),
                None => {
                    // Unreachable by construction (every index is
                    // visited and every trace index was validated), but
                    // a lost slot must not silently shrink the report.
                    records.push(ScenarioRecord {
                        scenario: scenarios.get(i).copied().unwrap_or(Scenario {
                            id: i,
                            trace: 0,
                            mu: f64::NAN,
                            budget_fraction: f64::NAN,
                            strategy: dcc_core::StrategyKind::DynamicContract,
                        }),
                        result: Err(ScenarioFailure {
                            kind: FailureKind::Error,
                            message: "scenario produced no record".to_string(),
                            attempts: 0,
                        }),
                        attempts: 0,
                        detect_cached: false,
                        fit_cached: false,
                        solve_cached: false,
                        elapsed: Duration::ZERO,
                    });
                }
            }
        }

        // A completed checkpointed run leaves a *full* snapshot behind,
        // so resuming from it trivially reproduces the whole report.
        if let Some(writer) = &writer {
            writer.flush();
            if let Some(error) = writer.take_error() {
                return Err(BatchError::Checkpoint(error));
            }
        }

        if matches!(self.options.policy, FailurePolicy::Abort) {
            if let Some(failed) = records.iter().find(|r| r.result.is_err()) {
                let message = failed.failure().map(ScenarioFailure::to_string).unwrap_or_default();
                return Err(BatchError::Scenario { id: failed.scenario.id, message });
            }
        }

        let quarantine = QuarantineReport {
            entries: records
                .iter()
                .filter_map(|r| {
                    r.failure().map(|f| QuarantineEntry {
                        scenario: r.scenario.id,
                        kind: f.kind,
                        attempts: f.attempts,
                        message: f.message.clone(),
                    })
                })
                .collect(),
        };
        let restored_count = records.iter().filter(|r| r.restored()).count();
        let report = BatchReport {
            records,
            stats,
            quarantine,
            restored: restored_count,
            elapsed: started.elapsed(),
        };
        self.record_metrics(grid, &report, workers);
        Ok(BatchOutcome::Completed(report))
    }

    /// Materializes every trace the scenario list references, counting
    /// memo hits/misses per distinct trace spec.
    fn resolve_traces(
        &self,
        grid: &ScenarioGrid,
        scenarios: &[Scenario],
        stats: &mut MemoStats,
    ) -> Result<Vec<ResolvedTrace>, BatchError> {
        let mut used = vec![false; grid.traces.len()];
        for s in scenarios {
            if let Some(flag) = used.get_mut(s.trace) {
                *flag = true;
            }
        }
        let mut out = Vec::with_capacity(grid.traces.len());
        for (i, spec) in grid.traces.iter().enumerate() {
            if !used.get(i).copied().unwrap_or(false) {
                // Unused trace index: never materialized, never read.
                out.push(None);
                continue;
            }
            out.push(Some(self.resolve_trace(spec, stats)?));
        }
        Ok(out)
    }

    fn resolve_trace(
        &self,
        spec: &TraceSpec,
        stats: &mut MemoStats,
    ) -> Result<(Arc<TraceDataset>, u64), BatchError> {
        match &spec.source {
            TraceSource::Provided(trace) => {
                // Content-addressed: the fingerprint *is* the key, so
                // the memo only deduplicates the Arc (and the stats
                // record whether detection/fit state already exists).
                let fp = trace_fingerprint(trace);
                let key = format!("provided:{fp:016x}");
                match self.memo.get_trace(&key) {
                    Some(entry) => {
                        stats.trace.record(true);
                        Ok(entry)
                    }
                    None => {
                        stats.trace.record(false);
                        let arc = Arc::new(trace.clone());
                        self.memo.insert_trace(key, Arc::clone(&arc), fp);
                        Ok((arc, fp))
                    }
                }
            }
            TraceSource::Synthetic(config) => {
                let key = format!("synthetic:{config:?}");
                self.resolve_keyed(&key, stats, || Ok(config.generate()))
            }
            // The memo assumes a CSV directory is immutable for the
            // memo's lifetime (docs/batch.md).
            TraceSource::CsvDir(dir) => {
                let key = format!("csv:{}", dir.display());
                let dir = dir.clone();
                self.resolve_keyed(&key, stats, move || {
                    read_trace_csv(&dir).map_err(|e| {
                        BatchError::Spec(format!("cannot read trace {}: {e}", dir.display()))
                    })
                })
            }
            // Same immutability contract as CsvDir: the columnar file
            // must not change while the memo is alive.
            TraceSource::Columnar(path) => {
                let key = format!("col:{}", path.display());
                let path = path.clone();
                self.resolve_keyed(&key, stats, move || {
                    read_trace_columnar(&path)
                        .and_then(|col| col.to_dataset())
                        .map_err(|e| {
                            BatchError::Spec(format!("cannot read trace {}: {e}", path.display()))
                        })
                })
            }
        }
    }

    fn resolve_keyed(
        &self,
        key: &str,
        stats: &mut MemoStats,
        materialize: impl FnOnce() -> Result<TraceDataset, BatchError>,
    ) -> Result<(Arc<TraceDataset>, u64), BatchError> {
        match self.memo.get_trace(key) {
            Some(entry) => {
                stats.trace.record(true);
                Ok(entry)
            }
            None => {
                stats.trace.record(false);
                let trace = Arc::new(materialize()?);
                let fp = trace_fingerprint(&trace);
                self.memo.insert_trace(key.to_string(), Arc::clone(&trace), fp);
                Ok((trace, fp))
            }
        }
    }

    /// Post-merge metrics, in input order (pool-size-independent).
    fn record_metrics(&self, grid: &ScenarioGrid, report: &BatchReport, workers: usize) {
        let metrics = &self.options.metrics;
        if !metrics.enabled() {
            return;
        }
        for record in &report.records {
            let s = &record.scenario;
            let label = grid
                .traces
                .get(s.trace)
                .map(|t| t.label.clone())
                .unwrap_or_default();
            metrics.span_at(
                obs::SPAN_BATCH_SCENARIO,
                &[
                    ("id", s.id.into()),
                    ("trace", AttrValue::from(label)),
                    ("mu", s.mu.into()),
                    ("budget_fraction", s.budget_fraction.into()),
                    ("strategy", AttrValue::from(strategy_label(s.strategy))),
                    ("detect_cached", record.detect_cached.into()),
                    ("fit_cached", record.fit_cached.into()),
                    ("solve_cached", record.solve_cached.into()),
                    ("ok", record.result.is_ok().into()),
                ],
                record.elapsed,
            );
            metrics.observe(obs::HIST_BATCH_SCENARIO_US, record.elapsed.as_micros() as f64);
        }
        metrics.add(obs::COUNTER_BATCH_SCENARIOS, report.records.len() as u64);
        metrics.add(obs::COUNTER_BATCH_FAILED, report.failed() as u64);
        metrics.add(obs::COUNTER_BATCH_TRACE_HIT, report.stats.trace.hits);
        metrics.add(obs::COUNTER_BATCH_TRACE_MISS, report.stats.trace.misses);
        metrics.add(obs::COUNTER_BATCH_DETECT_HIT, report.stats.detect.hits);
        metrics.add(obs::COUNTER_BATCH_DETECT_MISS, report.stats.detect.misses);
        metrics.add(obs::COUNTER_BATCH_FIT_HIT, report.stats.fit.hits);
        metrics.add(obs::COUNTER_BATCH_FIT_MISS, report.stats.fit.misses);
        metrics.add(obs::COUNTER_BATCH_SOLVE_HIT, report.stats.solve.hits);
        metrics.add(obs::COUNTER_BATCH_SOLVE_MISS, report.stats.solve.misses);
        let retries: u64 = report
            .records
            .iter()
            .map(|r| r.attempts.saturating_sub(1) as u64)
            .sum();
        let recovered = report
            .records
            .iter()
            .filter(|r| r.attempts > 1 && r.result.is_ok())
            .count();
        metrics.add(obs::COUNTER_BATCH_RETRY_ATTEMPTS, retries);
        metrics.add(obs::COUNTER_BATCH_RETRY_RECOVERED, recovered as u64);
        metrics.add(obs::COUNTER_BATCH_QUARANTINE_SCENARIOS, report.quarantine.len() as u64);
        metrics.add(
            obs::COUNTER_BATCH_QUARANTINE_PANICS,
            report.quarantine.count_of(FailureKind::Panic) as u64,
        );
        metrics.add(
            obs::COUNTER_BATCH_QUARANTINE_BUDGET,
            report.quarantine.count_of(FailureKind::BudgetExhausted) as u64,
        );
        metrics.add(obs::COUNTER_BATCH_RESTORED, report.restored as u64);
        metrics.gauge(obs::GAUGE_BATCH_POOL, workers as f64);
        let secs = report.elapsed.as_secs_f64();
        let per_sec = if secs > 0.0 { report.records.len() as f64 / secs } else { 0.0 };
        metrics.gauge(obs::GAUGE_BATCH_SCENARIOS_PER_SEC, per_sec);
    }
}

type DetectSlot = Slot<Arc<DetectionResult>>;
type FitSlot = Slot<Result<Arc<DesignPrep>, String>>;
type SolveSlot = Slot<Result<Arc<ContractDesign>, String>>;
/// A materialized trace plus its content fingerprint; `None` for a
/// grid trace index no scenario references.
type ResolvedTrace = Option<(Arc<TraceDataset>, u64)>;

/// Solve fingerprint of one scenario: the grid's shared design config
/// specialized to the scenario's μ (the only per-scenario design
/// field — budget fraction and strategy act after the solve).
fn scenario_solve_fp(grid: &ScenarioGrid, scenario: &Scenario) -> u64 {
    let mut design = grid.design;
    design.params.mu = scenario.mu;
    solve_fingerprint(&design)
}

/// Fingerprint of the *whole run*: every scenario's grid point, its
/// trace content, and the shared pipeline/fit/solve/sim configuration.
/// A `dcc-batch-ckpt/1` checkpoint is only valid against the exact run
/// that wrote it, so restored results can never silently mix grids.
fn grid_fingerprint(
    grid: &ScenarioGrid,
    scenarios: &[Scenario],
    traces: &[ResolvedTrace],
    pipeline_fp: u64,
    fit_fp: u64,
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(pipeline_fp);
    h.write_u64(fit_fp);
    h.write_bytes(format!("{:?}", grid.sim).as_bytes());
    h.write_usize(scenarios.len());
    for s in scenarios {
        h.write_usize(s.id);
        h.write_usize(s.trace);
        if let Some(Some((_, trace_fp))) = traces.get(s.trace) {
            h.write_u64(*trace_fp);
        }
        h.write_f64(s.mu);
        h.write_f64(s.budget_fraction);
        h.write_bytes(strategy_label(s.strategy).as_bytes());
        h.write_u64(scenario_solve_fp(grid, s));
    }
    h.finish()
}

/// The checkpoint entry a freshly completed record contributes;
/// `None` for restored records (already in the writer's seed set).
fn ckpt_entry_of(record: &ScenarioRecord) -> Option<CkptEntry> {
    match &record.result {
        Ok(ScenarioResult::Computed(outcome)) => Some(CkptEntry {
            attempts: record.attempts,
            payload: CkptPayload::Summary(ScenarioSummary::of(outcome)),
        }),
        Ok(ScenarioResult::Restored(_)) => None,
        Err(failure) => Some(CkptEntry {
            attempts: record.attempts,
            payload: CkptPayload::Failure(failure.clone()),
        }),
    }
}

fn resolved_pool(pool: PoolSize, n: usize) -> usize {
    let p = pool.resolve().min(n);
    if p == 0 {
        1
    } else {
        p
    }
}

/// Runs one supervised attempt of a scenario against pre-resolved
/// shared state, reproducing a serial engine run bit-exactly: the
/// pre-seeded detection and fit are the same values `Engine::run_to`
/// would compute, and the solve / construct / simulate stages run
/// through the engine itself.
///
/// The whole attempt runs under `catch_unwind`, and each stage charges
/// its *data-derived* work cost **before** consulting the shared slot
/// — so work-budget exhaustion and fault injection are deterministic
/// and pool-invariant regardless of which sibling physically computes
/// a shared stage.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    grid: &ScenarioGrid,
    scenario: &Scenario,
    trace: &Arc<TraceDataset>,
    detect_slot: &DetectSlot,
    fit_slot: &FitSlot,
    solve_slot: &SolveSlot,
    faults: &BatchFaultPlan,
    attempt: usize,
    budget_units: Option<u64>,
) -> Result<ScenarioOutcome, AttemptError> {
    let body = || -> Result<ScenarioOutcome, AttemptError> {
        let mut budget = WorkBudget::new(budget_units);
        let mut design = grid.design;
        design.params.mu = scenario.mu;
        // Fail exactly where (and with exactly the message) a fresh
        // engine run would: prepare_design validates the config before
        // fitting.
        design
            .validate()
            .map_err(|e| AttemptError::Error(e.to_string()))?;

        let reviews = trace.reviews().len() as u64;
        budget.charge("detect", reviews)?;
        faults.fire_at(scenario.id, attempt, FaultPoint::Detect)?;
        let detection = detect_slot
            .get_or_compute(|| {
                faults.fire_in_stage(scenario.id, attempt, FaultPoint::Detect);
                Arc::new(run_pipeline(trace, grid.pipeline))
            })
            .map_err(AttemptError::Panic)?;

        budget.charge("fit", reviews)?;
        faults.fire_at(scenario.id, attempt, FaultPoint::Fit)?;
        let prep = fit_slot
            .get_or_compute(|| {
                faults.fire_in_stage(scenario.id, attempt, FaultPoint::Fit);
                dcc_core::prepare_design(trace, &detection, &design)
                    .map(Arc::new)
                    .map_err(|e| e.to_string())
            })
            .map_err(AttemptError::Panic)?
            .map_err(AttemptError::Error)?;

        budget.charge(
            "solve",
            (prep.subproblems.len() as u64).saturating_mul(design.intervals as u64),
        )?;
        faults.fire_at(scenario.id, attempt, FaultPoint::Solve)?;

        // The source is a placeholder: trace/detection/prep (and, on a
        // solve-memo hit, the solved design) are pre-seeded in stage
        // order — each setter invalidates only later stages — so the
        // skipped stages never run and ingest never reads the source.
        let make_ctx = || {
            let mut config = EngineConfig::for_source(TraceSource::CsvDir(PathBuf::new()));
            config.pipeline = grid.pipeline;
            config.design = design;
            config.pool = PoolSize::Sequential;
            config.strategy = scenario.strategy;
            if let Some(sim) = grid.sim {
                config.sim = sim;
            }
            let mut ctx = RoundContext::new(config);
            ctx.set_trace((**trace).clone());
            ctx.set_detection((*detection).clone());
            ctx.set_prep((*prep).clone());
            ctx
        };

        let designed = solve_slot
            .get_or_compute(|| {
                faults.fire_in_stage(scenario.id, attempt, FaultPoint::Solve);
                let mut ctx = make_ctx();
                Engine::new()
                    .run_to(&mut ctx, StageKind::ConstructContracts)
                    .map_err(|e| e.to_string())?;
                ctx.design().map(|d| Arc::new(d.clone())).map_err(|e| e.to_string())
            })
            .map_err(AttemptError::Panic)?
            .map_err(AttemptError::Error)?;

        let full_spend: f64 = designed
            .solution
            .solutions
            .iter()
            .map(|s| s.built.compensation())
            .sum();
        let selection =
            select_within_budget(&designed.solution, scenario.budget_fraction * full_spend)
                .map_err(|e| AttemptError::Error(e.to_string()))?;
        let sim = if let Some(sim_config) = grid.sim {
            budget.charge(
                "simulate",
                (sim_config.rounds as u64).saturating_mul(designed.agents.len() as u64),
            )?;
            faults.fire_at(scenario.id, attempt, FaultPoint::Simulate)?;
            let mut ctx = make_ctx();
            ctx.set_solution(designed.solution.clone(), designed.degradation.clone());
            ctx.set_design((*designed).clone());
            Engine::new()
                .run_to(&mut ctx, StageKind::Simulate)
                .map_err(|e| AttemptError::Error(e.to_string()))?;
            match ctx
                .sim_outcome()
                .map_err(|e| AttemptError::Error(e.to_string()))?
            {
                EngineSimOutcome::Completed { outcome, .. } => Some(outcome.clone()),
                EngineSimOutcome::Killed { at_round, .. } => {
                    return Err(AttemptError::Error(format!(
                        "scenario simulation killed at round {at_round}"
                    )));
                }
            }
        } else {
            None
        };

        Ok(ScenarioOutcome {
            design: (*designed).clone(),
            budget: selection,
            full_spend,
            sim,
            detection,
        })
    };
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(result) => result,
        Err(payload) => Err(AttemptError::Panic(panic_message(payload.as_ref()))),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

    use super::*;
    use crate::supervisor::{CheckpointConfig, FaultMode, ScenarioFault};
    use dcc_core::StrategyKind;
    use dcc_trace::SyntheticConfig;

    fn tiny(seed: u64) -> TraceDataset {
        let mut cfg = SyntheticConfig::small(seed);
        cfg.n_honest = 12;
        cfg.n_ncm = 4;
        cfg.n_cm_target = 5;
        cfg.n_products = 80;
        cfg.n_rounds = 2;
        cfg.generate()
    }

    fn temp_ckpt(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dcc-batch-runner-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join("batch.ckpt")
    }

    /// Canonical byte encoding of a report's deterministic surface.
    fn encode(report: &BatchReport) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "stats {:?}", report.stats);
        for r in &report.records {
            let _ = write!(
                out,
                "#{} a{} d{} f{} s{} ",
                r.scenario.id,
                r.attempts,
                u8::from(r.detect_cached),
                u8::from(r.fit_cached),
                u8::from(r.solve_cached)
            );
            match (r.summary(), r.failure()) {
                (Some(s), _) => {
                    let _ = write!(
                        out,
                        "u={:016x} spend={:016x} funded={:?} ",
                        s.total_requester_utility.to_bits(),
                        s.spend.to_bits(),
                        s.funded
                    );
                    for a in &s.agents {
                        let _ = write!(
                            out,
                            "[{} {:016x} {:016x}]",
                            a.worker,
                            a.compensation.to_bits(),
                            a.induced_effort.to_bits()
                        );
                    }
                    let _ = writeln!(out);
                }
                (None, Some(f)) => {
                    let _ = writeln!(out, "err={f}");
                }
                (None, None) => {
                    let _ = writeln!(out, "lost");
                }
            }
        }
        for q in &report.quarantine.entries {
            let _ = writeln!(
                out,
                "quarantine #{} {} a{} {}",
                q.scenario,
                q.kind.label(),
                q.attempts,
                q.message
            );
        }
        out
    }

    #[test]
    fn mu_sweep_detects_and_fits_once() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0, 0.5]);
        let runner = BatchRunner::new();
        let report = runner.run(&grid).expect("batch run");
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.stats.detect.misses, 1);
        assert_eq!(report.stats.detect.hits, 2);
        assert_eq!(report.stats.fit.misses, 1);
        assert_eq!(report.stats.fit.hits, 2);
        // Three distinct μs: every solve is a miss.
        assert_eq!(report.stats.solve.misses, 3);
        assert_eq!(report.stats.solve.hits, 0);
        assert_eq!(report.failed(), 0);
        assert!(report.quarantine.is_empty());
        assert!(report.records.iter().all(|r| r.attempts == 1));
        // First scenario computes, the rest reuse (serial-schedule
        // accounting).
        assert!(!report.records[0].detect_cached);
        assert!(report.records[1].detect_cached && report.records[2].detect_cached);
    }

    #[test]
    fn warm_rerun_is_all_hits() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0]);
        let runner = BatchRunner::new();
        runner.run(&grid).expect("cold run");
        let warm = runner.run(&grid).expect("warm run");
        assert_eq!(warm.stats.detect.misses, 0);
        assert_eq!(warm.stats.fit.misses, 0);
        assert_eq!(warm.stats.solve.misses, 0);
        assert_eq!(warm.stats.trace.misses, 0);
        assert!(warm
            .records
            .iter()
            .all(|r| r.detect_cached && r.fit_cached && r.solve_cached));
    }

    #[test]
    fn budget_axis_shares_one_solve() {
        // Same μ, three budget fractions: the design solves once and
        // each scenario carries its own budget selection.
        let mut grid = ScenarioGrid::for_trace(tiny(3), &[1.5]);
        grid.budget_fractions = vec![0.25, 0.5, 1.0];
        let report = BatchRunner::new().run(&grid).expect("batch run");
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.stats.solve.misses, 1);
        assert_eq!(report.stats.solve.hits, 2);
        let spends: Vec<f64> = report
            .records
            .iter()
            .map(|r| r.outcome().unwrap().budget.spend)
            .collect();
        assert!(spends[0] <= spends[1] && spends[1] <= spends[2]);
    }

    #[test]
    fn abort_policy_stops_on_poison_mu() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, -1.0, 1.0]);
        let err = BatchRunner::new().run(&grid).unwrap_err();
        match err {
            BatchError::Scenario { id, message } => {
                assert_eq!(id, 1);
                assert!(message.contains("mu must be positive"), "{message}");
            }
            other => panic!("expected Scenario error, got {other:?}"),
        }
    }

    #[test]
    fn skip_policy_itemizes_failures() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, -1.0, 1.0]);
        let runner = BatchRunner::with_options(BatchOptions {
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        });
        let report = runner.run(&grid).expect("skip run");
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.failed(), 1);
        assert!(report.records[0].result.is_ok());
        assert!(report.records[1].result.is_err());
        assert!(report.records[2].result.is_ok());
        // Deterministic errors are quarantined on the first attempt —
        // no retry budget is spent on them.
        assert_eq!(report.quarantine.len(), 1);
        assert_eq!(report.quarantine.entries[0].scenario, 1);
        assert_eq!(report.quarantine.entries[0].kind, FailureKind::Error);
        assert_eq!(report.quarantine.entries[0].attempts, 1);
    }

    #[test]
    fn pool_size_does_not_change_results() {
        let mut grid = ScenarioGrid::for_trace(tiny(5), &[2.0, 1.5, 1.0, 0.75]);
        grid.budget_fractions = vec![0.5, 1.0];
        let serial = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Sequential,
            ..BatchOptions::default()
        })
        .run(&grid)
        .expect("serial");
        let pooled = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Fixed(8),
            ..BatchOptions::default()
        })
        .run(&grid)
        .expect("pooled");
        assert_eq!(serial.records.len(), pooled.records.len());
        for (a, b) in serial.records.iter().zip(&pooled.records) {
            let (a, b) = (a.outcome().unwrap(), b.outcome().unwrap());
            assert_eq!(
                a.design.total_requester_utility.to_bits(),
                b.design.total_requester_utility.to_bits()
            );
            assert_eq!(a.budget.funded, b.budget.funded);
            assert_eq!(a.budget.spend.to_bits(), b.budget.spend.to_bits());
        }
        assert_eq!(serial.stats, pooled.stats);
    }

    #[test]
    fn run_scenarios_accepts_custom_lists_and_checks_bounds() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5]);
        let runner = BatchRunner::new();
        let custom = vec![Scenario {
            id: 0,
            trace: 0,
            mu: 1.25,
            budget_fraction: 1.0,
            strategy: StrategyKind::DynamicContract,
        }];
        let report = runner.run_scenarios(&grid, &custom).expect("custom list");
        assert_eq!(report.records.len(), 1);
        let bad = vec![Scenario { trace: 7, ..custom[0] }];
        assert!(matches!(runner.run_scenarios(&grid, &bad), Err(BatchError::Spec(_))));
    }

    #[test]
    fn provided_traces_are_content_addressed() {
        // Two grids with content-identical Provided traces share
        // detection state even though the values are distinct clones.
        let a = ScenarioGrid::for_trace(tiny(9), &[1.5]);
        let b = ScenarioGrid::for_trace(tiny(9), &[1.0]);
        let runner = BatchRunner::new();
        runner.run(&a).expect("first grid");
        let second = runner.run(&b).expect("second grid");
        assert_eq!(second.stats.trace.hits, 1);
        assert_eq!(second.stats.detect.misses, 0, "detection must be shared");
        assert_eq!(second.stats.fit.misses, 0, "fit must be shared");
    }

    #[test]
    fn injected_panic_is_contained_and_siblings_complete() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0, 0.5]);
        let sup = SupervisorOptions {
            faults: BatchFaultPlan::new().with_fault(
                1,
                ScenarioFault {
                    point: FaultPoint::Solve,
                    mode: FaultMode::Panic,
                    fails_before: usize::MAX,
                },
            ),
            ..SupervisorOptions::default()
        };
        let runner = BatchRunner::with_options(BatchOptions {
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        });
        let report = runner
            .run_supervised(&grid, &grid.scenarios(), &sup)
            .expect("supervised run")
            .into_report()
            .expect("completed");
        assert_eq!(report.failed(), 1);
        assert!(report.records[0].result.is_ok());
        assert!(report.records[2].result.is_ok());
        let failure = report.records[1].failure().expect("quarantined");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(failure.message.contains("injected fault"), "{}", failure.message);
        assert_eq!(report.quarantine.len(), 1);
        assert_eq!(report.quarantine.count_of(FailureKind::Panic), 1);
    }

    #[test]
    fn transient_faults_recover_via_retry() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0]);
        let sup = SupervisorOptions {
            max_retries: 2,
            faults: BatchFaultPlan::new().with_fault(
                0,
                ScenarioFault {
                    point: FaultPoint::Fit,
                    mode: FaultMode::TransientError,
                    fails_before: 2,
                },
            ),
            ..SupervisorOptions::default()
        };
        let runner = BatchRunner::new();
        let report = runner
            .run_supervised(&grid, &grid.scenarios(), &sup)
            .expect("supervised run")
            .into_report()
            .expect("completed");
        assert_eq!(report.failed(), 0);
        assert_eq!(report.records[0].attempts, 3, "two injected failures, then success");
        assert_eq!(report.records[1].attempts, 1);
        // The recovered scenario's outputs equal an unfaulted run's.
        let clean = BatchRunner::new().run(&grid).expect("clean run");
        assert_eq!(
            report.records[0].summary().unwrap(),
            clean.records[0].summary().unwrap()
        );
    }

    #[test]
    fn retry_exhaustion_quarantines_deterministically() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0]);
        let sup = SupervisorOptions {
            max_retries: 1,
            faults: BatchFaultPlan::new().with_fault(
                1,
                ScenarioFault {
                    point: FaultPoint::Detect,
                    mode: FaultMode::TransientError,
                    fails_before: usize::MAX,
                },
            ),
            ..SupervisorOptions::default()
        };
        let runner = BatchRunner::with_options(BatchOptions {
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        });
        let run = || {
            runner
                .run_supervised(&grid, &grid.scenarios(), &sup)
                .expect("supervised run")
                .into_report()
                .expect("completed")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.records[1].attempts, 2, "1 try + 1 retry");
        assert_eq!(a.quarantine, b.quarantine, "quarantine must be deterministic");
        assert!(a.records[1]
            .failure()
            .expect("quarantined")
            .to_string()
            .contains("after 2 attempts"));
    }

    #[test]
    fn work_budget_exhaustion_is_typed_and_deterministic() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0]);
        let sup = SupervisorOptions {
            scenario_budget: Some(1), // far below one detect charge
            ..SupervisorOptions::default()
        };
        let runner = BatchRunner::with_options(BatchOptions {
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        });
        let report = runner
            .run_supervised(&grid, &grid.scenarios(), &sup)
            .expect("supervised run")
            .into_report()
            .expect("completed");
        assert_eq!(report.failed(), 2);
        for r in &report.records {
            let f = r.failure().expect("budget-exhausted");
            assert_eq!(f.kind, FailureKind::BudgetExhausted);
            assert_eq!(r.attempts, 1, "budget exhaustion must not retry");
            assert!(f.message.contains("before detect"), "{}", f.message);
        }
        assert_eq!(report.quarantine.count_of(FailureKind::BudgetExhausted), 2);
    }

    #[test]
    fn panicking_scenario_never_poisons_the_memo() {
        // The poisoned scenario's μ (and thus its solve key) is
        // unique, so the in-stage panic deterministically fires in its
        // own slot; detection/fit keys are shared with healthy
        // siblings and must still land in the memo.
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0, 0.5]);
        let sup = SupervisorOptions {
            faults: BatchFaultPlan::new().with_fault(
                1,
                ScenarioFault {
                    point: FaultPoint::Solve,
                    mode: FaultMode::PanicInStage,
                    fails_before: usize::MAX,
                },
            ),
            ..SupervisorOptions::default()
        };
        let runner = BatchRunner::with_options(BatchOptions {
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        });
        let report = runner
            .run_supervised(&grid, &grid.scenarios(), &sup)
            .expect("supervised run")
            .into_report()
            .expect("completed");
        assert_eq!(report.failed(), 1);
        assert_eq!(report.records[1].failure().expect("quarantined").kind, FailureKind::Panic);
        // Memo state: trace + detect + fit + the two healthy solves.
        let (traces, detects, fits, solves) = runner.memo().len();
        assert_eq!((traces, detects, fits), (1, 1, 1));
        assert_eq!(solves, 2, "the poisoned solve must not be memoized");
        // A rerun without the fault computes the poisoned solve fresh
        // and agrees with a fully clean runner bit-for-bit.
        let healed = runner
            .run_supervised(&grid, &grid.scenarios(), &SupervisorOptions::default())
            .expect("healed run")
            .into_report()
            .expect("completed");
        let clean = BatchRunner::new().run(&grid).expect("clean run");
        for (h, c) in healed.records.iter().zip(&clean.records) {
            assert_eq!(h.summary().unwrap(), c.summary().unwrap());
        }
    }

    #[test]
    fn kill_and_resume_reproduce_the_uninterrupted_report() {
        let mut grid = ScenarioGrid::for_trace(tiny(7), &[2.0, 1.5, 1.0, -1.0]);
        grid.budget_fractions = vec![0.5, 1.0];
        let scenarios = grid.scenarios();
        let path = temp_ckpt("kill-resume");
        let full = BatchRunner::with_options(BatchOptions {
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        })
        .run(&grid)
        .expect("uninterrupted");
        for kill_at in [2, 5] {
            let _ = std::fs::remove_file(&path);
            let killed = BatchRunner::with_options(BatchOptions {
                policy: FailurePolicy::Skip,
                ..BatchOptions::default()
            })
            .run_supervised(
                &grid,
                &scenarios,
                &SupervisorOptions {
                    kill_after: Some(kill_at),
                    checkpoint: Some(CheckpointConfig::new(&path)),
                    ..SupervisorOptions::default()
                },
            )
            .expect("killed run");
            match killed {
                BatchOutcome::Killed { completed, total, .. } => {
                    assert!(completed >= kill_at, "{completed} >= {kill_at}");
                    assert_eq!(total, scenarios.len());
                }
                BatchOutcome::Completed(_) => panic!("run must be killed at {kill_at}"),
            }
            let resumed = BatchRunner::with_options(BatchOptions {
                policy: FailurePolicy::Skip,
                ..BatchOptions::default()
            })
            .run_supervised(
                &grid,
                &scenarios,
                &SupervisorOptions {
                    checkpoint: Some(CheckpointConfig::new(&path)),
                    resume: true,
                    ..SupervisorOptions::default()
                },
            )
            .expect("resumed run")
            .into_report()
            .expect("completed");
            assert!(resumed.restored >= kill_at.min(scenarios.len()));
            assert_eq!(
                encode(&resumed),
                encode(&full),
                "resumed report must be byte-identical (kill at {kill_at})"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_checkpoints_are_rejected() {
        let grid_a = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0]);
        let grid_b = ScenarioGrid::for_trace(tiny(4), &[1.5, 1.0]);
        let path = temp_ckpt("mismatch");
        let _ = std::fs::remove_file(&path);
        // Complete run of grid A leaves a full checkpoint behind.
        let outcome = BatchRunner::new()
            .run_supervised(
                &grid_a,
                &grid_a.scenarios(),
                &SupervisorOptions {
                    checkpoint: Some(CheckpointConfig::new(&path)),
                    ..SupervisorOptions::default()
                },
            )
            .expect("checkpointed run");
        assert!(matches!(outcome, BatchOutcome::Completed(_)));
        // Resuming grid B from grid A's checkpoint must fail loudly.
        let err = BatchRunner::new()
            .run_supervised(
                &grid_b,
                &grid_b.scenarios(),
                &SupervisorOptions {
                    checkpoint: Some(CheckpointConfig::new(&path)),
                    resume: true,
                    ..SupervisorOptions::default()
                },
            )
            .unwrap_err();
        assert!(
            matches!(&err, BatchError::Checkpoint(m) if m.contains("fingerprint")),
            "{err:?}"
        );
        // Resume without a checkpoint path is a spec error; kill
        // without a checkpoint likewise.
        let no_path = BatchRunner::new()
            .run_supervised(
                &grid_a,
                &grid_a.scenarios(),
                &SupervisorOptions { resume: true, ..SupervisorOptions::default() },
            )
            .unwrap_err();
        assert!(matches!(no_path, BatchError::Spec(_)));
        let no_ckpt = BatchRunner::new()
            .run_supervised(
                &grid_a,
                &grid_a.scenarios(),
                &SupervisorOptions { kill_after: Some(1), ..SupervisorOptions::default() },
            )
            .unwrap_err();
        assert!(matches!(no_ckpt, BatchError::Spec(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quarantined_failures_survive_resume_byte_identically() {
        // A quarantined panic lands in the checkpoint and is restored
        // with kind/attempts/message intact.
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0, 0.5]);
        let scenarios = grid.scenarios();
        let path = temp_ckpt("quarantine-resume");
        let _ = std::fs::remove_file(&path);
        let sup_faulty = |resume: bool, kill: Option<usize>| SupervisorOptions {
            max_retries: 1,
            kill_after: kill,
            checkpoint: Some(CheckpointConfig::new(&path)),
            resume,
            faults: BatchFaultPlan::new().with_fault(
                0,
                ScenarioFault {
                    point: FaultPoint::Detect,
                    mode: FaultMode::Panic,
                    fails_before: usize::MAX,
                },
            ),
            ..SupervisorOptions::default()
        };
        let options = || BatchOptions {
            pool: PoolSize::Sequential,
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        };
        let full = BatchRunner::with_options(options())
            .run_supervised(&grid, &scenarios, &SupervisorOptions {
                max_retries: 1,
                faults: sup_faulty(false, None).faults.clone(),
                ..SupervisorOptions::default()
            })
            .expect("full faulty run")
            .into_report()
            .expect("completed");
        let killed = BatchRunner::with_options(options())
            .run_supervised(&grid, &scenarios, &sup_faulty(false, Some(2)))
            .expect("killed run");
        assert!(matches!(killed, BatchOutcome::Killed { .. }));
        let resumed = BatchRunner::with_options(options())
            .run_supervised(&grid, &scenarios, &sup_faulty(true, None))
            .expect("resumed run")
            .into_report()
            .expect("completed");
        assert_eq!(encode(&resumed), encode(&full));
        assert_eq!(resumed.quarantine, full.quarantine);
        let _ = std::fs::remove_file(&path);
    }
}
