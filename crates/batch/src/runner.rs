//! The deterministic batch scheduler.
//!
//! Scenarios fan out over a bounded `std::thread::scope` pool pulling
//! from an atomic work queue; results land in per-index slots and are
//! merged back **in input order**, so the report (and the redacted
//! metrics document) is bit-identical for every pool size — the same
//! contract `solve_subproblems_pooled` gives the solve stage, lifted to
//! whole scenarios.
//!
//! Cross-scenario reuse goes through the shared [`StageMemo`]: each
//! distinct (trace, pipeline) pair runs detection once, each distinct
//! (trace, pipeline, fit-config) triple fits once, and each distinct
//! (trace, pipeline, fit-config, design-config) quadruple — μ included,
//! budget fraction and strategy excluded — solves once, no matter how
//! many scenarios or how many threads ask for it. In-flight
//! deduplication uses per-key `OnceLock` slots, so two workers never
//! compute the same detection concurrently.
//!
//! Cache accounting is *deterministic by convention*: a scenario is
//! counted as cached when the memo already held the key at run start
//! or a lower-id scenario shares it — i.e. what a serial execution in
//! scenario order would have reused. Under a parallel pool a high-id
//! scenario may physically race ahead and compute a value its flag
//! calls a hit; the flags describe the serial schedule, not thread
//! timing, which keeps the metrics document pool-size-independent.

use crate::grid::{strategy_label, Scenario, ScenarioGrid, TraceSpec};
use crate::memo::{
    fit_fingerprint, pipeline_fingerprint, solve_fingerprint, trace_fingerprint, DetectKey,
    FitKey, MemoStats, SolveKey, StageMemo,
};
use dcc_core::{
    select_within_budget, BudgetedSelection, ContractDesign, DesignPrep, FailurePolicy,
    SimulationOutcome,
};
use dcc_detect::{run_pipeline, DetectionResult};
use dcc_engine::{
    Engine, EngineConfig, EngineSimOutcome, PoolSize, RoundContext, StageKind, TraceSource,
};
use dcc_obs::{names as obs, AttrValue, Metrics};
use dcc_trace::{read_trace_csv, TraceDataset};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread;
// dcc-lint: allow(wall-clock, reason = "per-scenario durations are measured here and published through dcc-obs spans, redacted in deterministic output")
use std::time::{Duration, Instant};

/// Batch-layer failure.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// The grid spec is structurally invalid (exit code 2 territory).
    Spec(String),
    /// A scenario failed under [`FailurePolicy::Abort`].
    Scenario {
        /// Id of the first failing scenario in input order.
        id: usize,
        /// The underlying engine/core error message.
        message: String,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Spec(msg) => write!(f, "{msg}"),
            BatchError::Scenario { id, message } => {
                write!(f, "scenario {id} failed: {message}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Scheduler options, orthogonal to the grid itself.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Scenario-level worker pool. Inside a scenario the solve stage
    /// runs sequentially — parallelism comes from scenario fan-out, so
    /// the two pools never multiply.
    pub pool: PoolSize,
    /// Batch-level failure policy: [`FailurePolicy::Abort`] stops at
    /// the first failing scenario (in input order); the other policies
    /// record the failure and keep going. Per-subproblem degradation
    /// inside a scenario is governed separately by
    /// `ScenarioGrid::design.failure_policy`.
    pub policy: FailurePolicy,
    /// Observability sink; all recording happens post-merge in input
    /// order, so the redacted document is pool-size-independent.
    pub metrics: Metrics,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            pool: PoolSize::Auto,
            policy: FailurePolicy::Abort,
            metrics: Metrics::noop(),
        }
    }
}

/// Everything one successful scenario produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The assembled contract design at this scenario's μ.
    pub design: ContractDesign,
    /// Budget-constrained funding selection at
    /// `budget_fraction × full_spend`.
    pub budget: BudgetedSelection,
    /// Total designed spend at fraction 1.0 (the budget baseline).
    pub full_spend: f64,
    /// Repeated-game outcome; `None` for design-only grids.
    pub sim: Option<SimulationOutcome>,
    /// The (possibly memo-shared) detection result the design used.
    pub detection: Arc<DetectionResult>,
}

/// One scenario's merged result.
#[derive(Debug, Clone)]
pub struct ScenarioRecord {
    /// The grid point this record answers.
    pub scenario: Scenario,
    /// The outcome, or the engine/core error message (present only
    /// under non-abort policies).
    pub result: Result<ScenarioOutcome, String>,
    /// Whether the serial schedule would have reused the detection
    /// (see the module docs on deterministic cache accounting).
    pub detect_cached: bool,
    /// Whether the serial schedule would have reused the fit.
    pub fit_cached: bool,
    /// Whether the serial schedule would have reused the solved design
    /// (same trace, pipeline, and design config — μ included).
    pub solve_cached: bool,
    /// Worker-measured wall time (redacted in deterministic output).
    pub elapsed: Duration,
}

/// The merged output of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-scenario records, in input (grid-expansion) order.
    pub records: Vec<ScenarioRecord>,
    /// Deterministic cache accounting for this run.
    pub stats: MemoStats,
    /// Total wall time (not part of deterministic output).
    pub elapsed: Duration,
}

impl BatchReport {
    /// Records that ended in an error.
    pub fn failed(&self) -> usize {
        self.records.iter().filter(|r| r.result.is_err()).count()
    }
}

/// The deterministic multi-scenario scheduler.
#[derive(Debug, Default)]
pub struct BatchRunner {
    memo: Arc<StageMemo>,
    options: BatchOptions,
}

impl BatchRunner {
    /// A runner with default options and a cold memo.
    pub fn new() -> Self {
        BatchRunner::default()
    }

    /// A runner with the given options and a cold memo.
    pub fn with_options(options: BatchOptions) -> Self {
        BatchRunner { memo: Arc::new(StageMemo::new()), options }
    }

    /// A runner sharing an existing memo (warm reruns, cross-grid
    /// reuse).
    pub fn with_memo(memo: Arc<StageMemo>, options: BatchOptions) -> Self {
        BatchRunner { memo, options }
    }

    /// The shared stage memo.
    pub fn memo(&self) -> &Arc<StageMemo> {
        &self.memo
    }

    /// Expands and runs the full grid.
    ///
    /// # Errors
    ///
    /// [`BatchError::Spec`] if the grid fails validation;
    /// [`BatchError::Scenario`] if a scenario fails under
    /// [`FailurePolicy::Abort`].
    pub fn run(&self, grid: &ScenarioGrid) -> Result<BatchReport, BatchError> {
        self.run_scenarios(grid, &grid.scenarios())
    }

    /// Runs an explicit scenario list against the grid's shared
    /// configuration (the experiments use this for non-cartesian
    /// sweeps). Records come back in the given order.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchRunner::run`]; additionally rejects a
    /// scenario whose `trace` index is out of bounds.
    pub fn run_scenarios(
        &self,
        grid: &ScenarioGrid,
        scenarios: &[Scenario],
    ) -> Result<BatchReport, BatchError> {
        grid.validate()?;
        for s in scenarios {
            if s.trace >= grid.traces.len() {
                return Err(BatchError::Spec(format!(
                    "scenario {} references trace {} but GridSpec.traces has {} entries",
                    s.id,
                    s.trace,
                    grid.traces.len()
                )));
            }
        }
        // dcc-lint: allow(wall-clock, reason = "total batch wall time, published as a redacted throughput gauge")
        let started = Instant::now();

        let mut stats = MemoStats::default();
        let traces = self.resolve_traces(grid, scenarios, &mut stats)?;

        let pipeline_fp = pipeline_fingerprint(&grid.pipeline);
        let fit_fp = fit_fingerprint(&grid.design);

        // Per-key in-flight slots, pre-seeded from the persistent memo.
        // Cache flags are derived from the serial schedule (memo hit at
        // run start, or a lower-id scenario shares the key).
        let mut detect_slots: BTreeMap<DetectKey, OnceLock<Arc<DetectionResult>>> = BTreeMap::new();
        let mut fit_slots: BTreeMap<FitKey, FitSlot> = BTreeMap::new();
        let mut solve_slots: BTreeMap<SolveKey, SolveSlot> = BTreeMap::new();
        let mut detect_flags = Vec::with_capacity(scenarios.len());
        let mut fit_flags = Vec::with_capacity(scenarios.len());
        let mut solve_flags = Vec::with_capacity(scenarios.len());
        for s in scenarios {
            let Some(Some((_, trace_fp))) = traces.get(s.trace) else {
                continue;
            };
            let dk: DetectKey = (*trace_fp, pipeline_fp);
            let fk: FitKey = (*trace_fp, pipeline_fp, fit_fp);
            let sk: SolveKey = (*trace_fp, pipeline_fp, fit_fp, scenario_solve_fp(grid, s));
            let detect_hit = match detect_slots.entry(dk) {
                std::collections::btree_map::Entry::Occupied(_) => true,
                std::collections::btree_map::Entry::Vacant(v) => {
                    let slot = OnceLock::new();
                    let seeded = match self.memo.get_detect(&dk) {
                        Some(value) => {
                            let _ = slot.set(value);
                            true
                        }
                        None => false,
                    };
                    v.insert(slot);
                    seeded
                }
            };
            let fit_hit = match fit_slots.entry(fk) {
                std::collections::btree_map::Entry::Occupied(_) => true,
                std::collections::btree_map::Entry::Vacant(v) => {
                    let slot = OnceLock::new();
                    let seeded = match self.memo.get_fit(&fk) {
                        Some(value) => {
                            let _ = slot.set(value);
                            true
                        }
                        None => false,
                    };
                    v.insert(slot);
                    seeded
                }
            };
            let solve_hit = match solve_slots.entry(sk) {
                std::collections::btree_map::Entry::Occupied(_) => true,
                std::collections::btree_map::Entry::Vacant(v) => {
                    let slot = OnceLock::new();
                    let seeded = match self.memo.get_solve(&sk) {
                        Some(value) => {
                            let _ = slot.set(value);
                            true
                        }
                        None => false,
                    };
                    v.insert(slot);
                    seeded
                }
            };
            detect_flags.push(detect_hit);
            fit_flags.push(fit_hit);
            solve_flags.push(solve_hit);
            stats.detect.record(detect_hit);
            stats.fit.record(fit_hit);
            stats.solve.record(solve_hit);
        }

        let n = scenarios.len();
        let workers = resolved_pool(self.options.pool, n);
        let slots: Vec<Mutex<Option<ScenarioRecord>>> = (0..n).map(|_| Mutex::new(None)).collect();

        let job = |i: usize, scenario: &Scenario| -> Option<ScenarioRecord> {
            let (trace, trace_fp) = traces.get(scenario.trace)?.as_ref()?;
            let dk: DetectKey = (*trace_fp, pipeline_fp);
            let fk: FitKey = (*trace_fp, pipeline_fp, fit_fp);
            let sk: SolveKey = (*trace_fp, pipeline_fp, fit_fp, scenario_solve_fp(grid, scenario));
            let detect_slot = detect_slots.get(&dk)?;
            let fit_slot = fit_slots.get(&fk)?;
            let solve_slot = solve_slots.get(&sk)?;
            // dcc-lint: allow(wall-clock, reason = "worker-measured scenario duration, recorded post-merge and redacted in deterministic output")
            let t0 = Instant::now();
            let result = run_scenario(grid, scenario, trace, detect_slot, fit_slot, solve_slot);
            Some(ScenarioRecord {
                scenario: *scenario,
                result,
                detect_cached: detect_flags.get(i).copied().unwrap_or(false),
                fit_cached: fit_flags.get(i).copied().unwrap_or(false),
                solve_cached: solve_flags.get(i).copied().unwrap_or(false),
                elapsed: t0.elapsed(),
            })
        };

        if workers <= 1 {
            for (i, scenario) in scenarios.iter().enumerate() {
                if let (Some(slot), Some(record)) = (slots.get(i), job(i, scenario)) {
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(record);
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let Some(scenario) = scenarios.get(i) else { break };
                        if let (Some(slot), Some(record)) = (slots.get(i), job(i, scenario)) {
                            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(record);
                        }
                    });
                }
            });
        }

        // Publish freshly computed values into the persistent memo so a
        // later run (or a shared runner) starts warm.
        for (key, slot) in &detect_slots {
            if let Some(value) = slot.get() {
                if self.memo.get_detect(key).is_none() {
                    self.memo.insert_detect(*key, Arc::clone(value));
                }
            }
        }
        for (key, slot) in &fit_slots {
            if let Some(value) = slot.get() {
                if self.memo.get_fit(key).is_none() {
                    self.memo.insert_fit(*key, value.clone());
                }
            }
        }
        for (key, slot) in &solve_slots {
            if let Some(value) = slot.get() {
                if self.memo.get_solve(key).is_none() {
                    self.memo.insert_solve(*key, value.clone());
                }
            }
        }

        // In-order merge.
        let mut records = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(record) => records.push(record),
                None => {
                    // Unreachable by construction (every index is
                    // visited and every trace index was validated), but
                    // a lost slot must not silently shrink the report.
                    records.push(ScenarioRecord {
                        scenario: scenarios.get(i).copied().unwrap_or(Scenario {
                            id: i,
                            trace: 0,
                            mu: f64::NAN,
                            budget_fraction: f64::NAN,
                            strategy: dcc_core::StrategyKind::DynamicContract,
                        }),
                        result: Err("scenario produced no record".to_string()),
                        detect_cached: false,
                        fit_cached: false,
                        solve_cached: false,
                        elapsed: Duration::ZERO,
                    });
                }
            }
        }

        if matches!(self.options.policy, FailurePolicy::Abort) {
            if let Some(failed) = records.iter().find(|r| r.result.is_err()) {
                let message = match &failed.result {
                    Err(m) => m.clone(),
                    Ok(_) => String::new(),
                };
                return Err(BatchError::Scenario { id: failed.scenario.id, message });
            }
        }

        let report = BatchReport { records, stats, elapsed: started.elapsed() };
        self.record_metrics(grid, &report, workers);
        Ok(report)
    }

    /// Materializes every trace the scenario list references, counting
    /// memo hits/misses per distinct trace spec.
    fn resolve_traces(
        &self,
        grid: &ScenarioGrid,
        scenarios: &[Scenario],
        stats: &mut MemoStats,
    ) -> Result<Vec<ResolvedTrace>, BatchError> {
        let mut used = vec![false; grid.traces.len()];
        for s in scenarios {
            if let Some(flag) = used.get_mut(s.trace) {
                *flag = true;
            }
        }
        let mut out = Vec::with_capacity(grid.traces.len());
        for (i, spec) in grid.traces.iter().enumerate() {
            if !used.get(i).copied().unwrap_or(false) {
                // Unused trace index: never materialized, never read.
                out.push(None);
                continue;
            }
            out.push(Some(self.resolve_trace(spec, stats)?));
        }
        Ok(out)
    }

    fn resolve_trace(
        &self,
        spec: &TraceSpec,
        stats: &mut MemoStats,
    ) -> Result<(Arc<TraceDataset>, u64), BatchError> {
        match &spec.source {
            TraceSource::Provided(trace) => {
                // Content-addressed: the fingerprint *is* the key, so
                // the memo only deduplicates the Arc (and the stats
                // record whether detection/fit state already exists).
                let fp = trace_fingerprint(trace);
                let key = format!("provided:{fp:016x}");
                match self.memo.get_trace(&key) {
                    Some(entry) => {
                        stats.trace.record(true);
                        Ok(entry)
                    }
                    None => {
                        stats.trace.record(false);
                        let arc = Arc::new(trace.clone());
                        self.memo.insert_trace(key, Arc::clone(&arc), fp);
                        Ok((arc, fp))
                    }
                }
            }
            TraceSource::Synthetic(config) => {
                let key = format!("synthetic:{config:?}");
                self.resolve_keyed(&key, stats, || Ok(config.generate()))
            }
            // The memo assumes a CSV directory is immutable for the
            // memo's lifetime (docs/batch.md).
            TraceSource::CsvDir(dir) => {
                let key = format!("csv:{}", dir.display());
                let dir = dir.clone();
                self.resolve_keyed(&key, stats, move || {
                    read_trace_csv(&dir).map_err(|e| {
                        BatchError::Spec(format!("cannot read trace {}: {e}", dir.display()))
                    })
                })
            }
        }
    }

    fn resolve_keyed(
        &self,
        key: &str,
        stats: &mut MemoStats,
        materialize: impl FnOnce() -> Result<TraceDataset, BatchError>,
    ) -> Result<(Arc<TraceDataset>, u64), BatchError> {
        match self.memo.get_trace(key) {
            Some(entry) => {
                stats.trace.record(true);
                Ok(entry)
            }
            None => {
                stats.trace.record(false);
                let trace = Arc::new(materialize()?);
                let fp = trace_fingerprint(&trace);
                self.memo.insert_trace(key.to_string(), Arc::clone(&trace), fp);
                Ok((trace, fp))
            }
        }
    }

    /// Post-merge metrics, in input order (pool-size-independent).
    fn record_metrics(&self, grid: &ScenarioGrid, report: &BatchReport, workers: usize) {
        let metrics = &self.options.metrics;
        if !metrics.enabled() {
            return;
        }
        for record in &report.records {
            let s = &record.scenario;
            let label = grid
                .traces
                .get(s.trace)
                .map(|t| t.label.clone())
                .unwrap_or_default();
            metrics.span_at(
                obs::SPAN_BATCH_SCENARIO,
                &[
                    ("id", s.id.into()),
                    ("trace", AttrValue::from(label)),
                    ("mu", s.mu.into()),
                    ("budget_fraction", s.budget_fraction.into()),
                    ("strategy", AttrValue::from(strategy_label(s.strategy))),
                    ("detect_cached", record.detect_cached.into()),
                    ("fit_cached", record.fit_cached.into()),
                    ("solve_cached", record.solve_cached.into()),
                    ("ok", record.result.is_ok().into()),
                ],
                record.elapsed,
            );
            metrics.observe(obs::HIST_BATCH_SCENARIO_US, record.elapsed.as_micros() as f64);
        }
        metrics.add(obs::COUNTER_BATCH_SCENARIOS, report.records.len() as u64);
        metrics.add(obs::COUNTER_BATCH_FAILED, report.failed() as u64);
        metrics.add(obs::COUNTER_BATCH_TRACE_HIT, report.stats.trace.hits);
        metrics.add(obs::COUNTER_BATCH_TRACE_MISS, report.stats.trace.misses);
        metrics.add(obs::COUNTER_BATCH_DETECT_HIT, report.stats.detect.hits);
        metrics.add(obs::COUNTER_BATCH_DETECT_MISS, report.stats.detect.misses);
        metrics.add(obs::COUNTER_BATCH_FIT_HIT, report.stats.fit.hits);
        metrics.add(obs::COUNTER_BATCH_FIT_MISS, report.stats.fit.misses);
        metrics.add(obs::COUNTER_BATCH_SOLVE_HIT, report.stats.solve.hits);
        metrics.add(obs::COUNTER_BATCH_SOLVE_MISS, report.stats.solve.misses);
        metrics.gauge(obs::GAUGE_BATCH_POOL, workers as f64);
        let secs = report.elapsed.as_secs_f64();
        let per_sec = if secs > 0.0 { report.records.len() as f64 / secs } else { 0.0 };
        metrics.gauge(obs::GAUGE_BATCH_SCENARIOS_PER_SEC, per_sec);
    }
}

type FitSlot = OnceLock<Result<Arc<DesignPrep>, String>>;
type SolveSlot = OnceLock<Result<Arc<ContractDesign>, String>>;
/// A materialized trace plus its content fingerprint; `None` for a
/// grid trace index no scenario references.
type ResolvedTrace = Option<(Arc<TraceDataset>, u64)>;

/// Solve fingerprint of one scenario: the grid's shared design config
/// specialized to the scenario's μ (the only per-scenario design
/// field — budget fraction and strategy act after the solve).
fn scenario_solve_fp(grid: &ScenarioGrid, scenario: &Scenario) -> u64 {
    let mut design = grid.design;
    design.params.mu = scenario.mu;
    solve_fingerprint(&design)
}

fn resolved_pool(pool: PoolSize, n: usize) -> usize {
    let p = pool.resolve().min(n);
    if p == 0 {
        1
    } else {
        p
    }
}

/// Runs one scenario against pre-resolved shared state, reproducing a
/// serial engine run bit-exactly: the pre-seeded detection and fit are
/// the same values `Engine::run_to` would compute, and the solve /
/// construct / simulate stages run through the engine itself.
fn run_scenario(
    grid: &ScenarioGrid,
    scenario: &Scenario,
    trace: &Arc<TraceDataset>,
    detect_slot: &OnceLock<Arc<DetectionResult>>,
    fit_slot: &FitSlot,
    solve_slot: &SolveSlot,
) -> Result<ScenarioOutcome, String> {
    let mut design = grid.design;
    design.params.mu = scenario.mu;
    // Fail exactly where (and with exactly the message) a fresh engine
    // run would: prepare_design validates the config before fitting.
    design.validate().map_err(|e| e.to_string())?;

    let detection = Arc::clone(
        detect_slot.get_or_init(|| Arc::new(run_pipeline(trace, grid.pipeline))),
    );
    let prep = fit_slot
        .get_or_init(|| {
            dcc_core::prepare_design(trace, &detection, &design)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        })
        .clone()?;

    // The source is a placeholder: trace/detection/prep (and, on a
    // solve-memo hit, the solved design) are pre-seeded in stage order
    // — each setter invalidates only later stages — so the skipped
    // stages never run and the ingest stage never reads the source.
    let make_ctx = || {
        let mut config = EngineConfig::for_source(TraceSource::CsvDir(PathBuf::new()));
        config.pipeline = grid.pipeline;
        config.design = design;
        config.pool = PoolSize::Sequential;
        config.strategy = scenario.strategy;
        if let Some(sim) = grid.sim {
            config.sim = sim;
        }
        let mut ctx = RoundContext::new(config);
        ctx.set_trace((**trace).clone());
        ctx.set_detection((*detection).clone());
        ctx.set_prep((*prep).clone());
        ctx
    };

    let designed = solve_slot
        .get_or_init(|| {
            let mut ctx = make_ctx();
            Engine::new()
                .run_to(&mut ctx, StageKind::ConstructContracts)
                .map_err(|e| e.to_string())?;
            ctx.design().map(|d| Arc::new(d.clone())).map_err(|e| e.to_string())
        })
        .clone()?;

    let full_spend: f64 = designed
        .solution
        .solutions
        .iter()
        .map(|s| s.built.compensation())
        .sum();
    let budget = select_within_budget(&designed.solution, scenario.budget_fraction * full_spend)
        .map_err(|e| e.to_string())?;
    let sim = if grid.sim.is_some() {
        let mut ctx = make_ctx();
        ctx.set_solution(designed.solution.clone(), designed.degradation.clone());
        ctx.set_design((*designed).clone());
        Engine::new().run_to(&mut ctx, StageKind::Simulate).map_err(|e| e.to_string())?;
        match ctx.sim_outcome().map_err(|e| e.to_string())? {
            EngineSimOutcome::Completed { outcome, .. } => Some(outcome.clone()),
            EngineSimOutcome::Killed { at_round, .. } => {
                return Err(format!("scenario simulation killed at round {at_round}"));
            }
        }
    } else {
        None
    };

    Ok(ScenarioOutcome { design: (*designed).clone(), budget, full_spend, sim, detection })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

    use super::*;
    use dcc_core::StrategyKind;
    use dcc_trace::SyntheticConfig;

    fn tiny(seed: u64) -> TraceDataset {
        let mut cfg = SyntheticConfig::small(seed);
        cfg.n_honest = 12;
        cfg.n_ncm = 4;
        cfg.n_cm_target = 5;
        cfg.n_products = 80;
        cfg.n_rounds = 2;
        cfg.generate()
    }

    #[test]
    fn mu_sweep_detects_and_fits_once() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0, 0.5]);
        let runner = BatchRunner::new();
        let report = runner.run(&grid).expect("batch run");
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.stats.detect.misses, 1);
        assert_eq!(report.stats.detect.hits, 2);
        assert_eq!(report.stats.fit.misses, 1);
        assert_eq!(report.stats.fit.hits, 2);
        // Three distinct μs: every solve is a miss.
        assert_eq!(report.stats.solve.misses, 3);
        assert_eq!(report.stats.solve.hits, 0);
        assert_eq!(report.failed(), 0);
        // First scenario computes, the rest reuse (serial-schedule
        // accounting).
        assert!(!report.records[0].detect_cached);
        assert!(report.records[1].detect_cached && report.records[2].detect_cached);
    }

    #[test]
    fn warm_rerun_is_all_hits() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, 1.0]);
        let runner = BatchRunner::new();
        runner.run(&grid).expect("cold run");
        let warm = runner.run(&grid).expect("warm run");
        assert_eq!(warm.stats.detect.misses, 0);
        assert_eq!(warm.stats.fit.misses, 0);
        assert_eq!(warm.stats.solve.misses, 0);
        assert_eq!(warm.stats.trace.misses, 0);
        assert!(warm
            .records
            .iter()
            .all(|r| r.detect_cached && r.fit_cached && r.solve_cached));
    }

    #[test]
    fn budget_axis_shares_one_solve() {
        // Same μ, three budget fractions: the design solves once and
        // each scenario carries its own budget selection.
        let mut grid = ScenarioGrid::for_trace(tiny(3), &[1.5]);
        grid.budget_fractions = vec![0.25, 0.5, 1.0];
        let report = BatchRunner::new().run(&grid).expect("batch run");
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.stats.solve.misses, 1);
        assert_eq!(report.stats.solve.hits, 2);
        let spends: Vec<f64> = report
            .records
            .iter()
            .map(|r| r.result.as_ref().unwrap().budget.spend)
            .collect();
        assert!(spends[0] <= spends[1] && spends[1] <= spends[2]);
    }

    #[test]
    fn abort_policy_stops_on_poison_mu() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, -1.0, 1.0]);
        let err = BatchRunner::new().run(&grid).unwrap_err();
        match err {
            BatchError::Scenario { id, message } => {
                assert_eq!(id, 1);
                assert!(message.contains("mu must be positive"), "{message}");
            }
            other => panic!("expected Scenario error, got {other:?}"),
        }
    }

    #[test]
    fn skip_policy_itemizes_failures() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5, -1.0, 1.0]);
        let runner = BatchRunner::with_options(BatchOptions {
            policy: FailurePolicy::Skip,
            ..BatchOptions::default()
        });
        let report = runner.run(&grid).expect("skip run");
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.failed(), 1);
        assert!(report.records[0].result.is_ok());
        assert!(report.records[1].result.is_err());
        assert!(report.records[2].result.is_ok());
    }

    #[test]
    fn pool_size_does_not_change_results() {
        let mut grid = ScenarioGrid::for_trace(tiny(5), &[2.0, 1.5, 1.0, 0.75]);
        grid.budget_fractions = vec![0.5, 1.0];
        let serial = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Sequential,
            ..BatchOptions::default()
        })
        .run(&grid)
        .expect("serial");
        let pooled = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Fixed(8),
            ..BatchOptions::default()
        })
        .run(&grid)
        .expect("pooled");
        assert_eq!(serial.records.len(), pooled.records.len());
        for (a, b) in serial.records.iter().zip(&pooled.records) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(
                a.design.total_requester_utility.to_bits(),
                b.design.total_requester_utility.to_bits()
            );
            assert_eq!(a.budget.funded, b.budget.funded);
            assert_eq!(a.budget.spend.to_bits(), b.budget.spend.to_bits());
        }
        assert_eq!(serial.stats, pooled.stats);
    }

    #[test]
    fn run_scenarios_accepts_custom_lists_and_checks_bounds() {
        let grid = ScenarioGrid::for_trace(tiny(3), &[1.5]);
        let runner = BatchRunner::new();
        let custom = vec![Scenario {
            id: 0,
            trace: 0,
            mu: 1.25,
            budget_fraction: 1.0,
            strategy: StrategyKind::DynamicContract,
        }];
        let report = runner.run_scenarios(&grid, &custom).expect("custom list");
        assert_eq!(report.records.len(), 1);
        let bad = vec![Scenario { trace: 7, ..custom[0] }];
        assert!(matches!(runner.run_scenarios(&grid, &bad), Err(BatchError::Spec(_))));
    }

    #[test]
    fn provided_traces_are_content_addressed() {
        // Two grids with content-identical Provided traces share
        // detection state even though the values are distinct clones.
        let a = ScenarioGrid::for_trace(tiny(9), &[1.5]);
        let b = ScenarioGrid::for_trace(tiny(9), &[1.0]);
        let runner = BatchRunner::new();
        runner.run(&a).expect("first grid");
        let second = runner.run(&b).expect("second grid");
        assert_eq!(second.stats.trace.hits, 1);
        assert_eq!(second.stats.detect.misses, 0, "detection must be shared");
        assert_eq!(second.stats.fit.misses, 0, "fit must be shared");
    }
}
