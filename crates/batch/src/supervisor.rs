//! Scenario supervision: panic isolation, deterministic retry,
//! work-budget enforcement, and quarantine.
//!
//! The batch runner executes untrusted-ish scenario pipelines on shared
//! worker threads over a shared [`crate::StageMemo`]. This module
//! provides the machinery that keeps one poisoned scenario from taking
//! the sweep down with it:
//!
//! - [`Slot`] — a compute-once cell like `OnceLock`, except a panicking
//!   initializer *resets* the cell instead of wedging it, so a waiting
//!   sibling retries the computation itself and a panic can never leave
//!   a partial value behind (memo-poisoning guarantee).
//! - [`supervise_attempts`] — wraps scenario execution in the
//!   deterministic retry schedule of [`dcc_faults::retry_with_backoff_on`];
//!   panics and injected transient errors retry, deterministic pipeline
//!   errors and budget exhaustion fail fast.
//! - [`WorkBudget`] — a *logical* per-scenario timeout: stages charge
//!   data-derived work units up front, so the budget is deterministic
//!   and pool-invariant (a wall-clock timeout would be neither, and the
//!   workspace lint forbids wall clocks outside `dcc-obs` anyway).
//! - [`BatchFaultPlan`] — deterministic fault injection for tests and
//!   chaos runs: panic, transient error, or in-stage panic at a chosen
//!   pipeline point of a chosen scenario, for its first *k* attempts.
//! - [`QuarantineReport`] — the typed record of scenarios that
//!   exhausted their retries, surfaced through
//!   [`crate::BatchReport::quarantine`].

use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Condvar, Mutex, PoisonError};

use dcc_faults::{retry_with_backoff_on, RetryError, RetryPolicy};

use crate::runner::BatchReport;

/// Options of a supervised batch run (see
/// [`crate::BatchRunner::run_supervised`]).
#[derive(Debug, Clone, Default)]
pub struct SupervisorOptions {
    /// Retries granted to each scenario beyond its first attempt. Only
    /// panics and injected transient errors retry; deterministic
    /// pipeline errors fail fast.
    pub max_retries: usize,
    /// Logical work-budget per scenario attempt, in data-derived work
    /// units (reviews for detect/fit, subproblems × intervals for
    /// solve, rounds × agents for simulate). `None` disables the check.
    pub scenario_budget: Option<u64>,
    /// Stop pulling new scenarios once this many *fresh* (non-restored)
    /// scenarios completed, flush the checkpoint, and return
    /// [`BatchOutcome::Killed`]. Requires [`SupervisorOptions::checkpoint`].
    pub kill_after: Option<usize>,
    /// Periodic partial-results checkpointing (`dcc-batch-ckpt/1`).
    pub checkpoint: Option<CheckpointConfig>,
    /// Restore completed scenarios from the checkpoint file before
    /// running; restored scenarios are not recomputed. Requires
    /// [`SupervisorOptions::checkpoint`].
    pub resume: bool,
    /// Deterministic fault injection (tests and chaos runs only).
    pub faults: BatchFaultPlan,
}

/// Where and how often a supervised run snapshots partial results.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file path (written atomically: temp file + rename).
    pub path: PathBuf,
    /// Flush after this many fresh scenario completions (min 1).
    pub every: usize,
}

impl CheckpointConfig {
    /// A checkpoint at `path` flushed after every completion.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig { path: path.into(), every: 1 }
    }
}

/// What a supervised batch run produced.
#[derive(Debug)]
pub enum BatchOutcome {
    /// Every scenario ran (or was restored); the full report.
    Completed(BatchReport),
    /// The run stopped early at the configured kill threshold.
    Killed {
        /// Scenarios with results in the checkpoint (restored included;
        /// may exceed the threshold by in-flight completions).
        completed: usize,
        /// Scenarios in the grid.
        total: usize,
        /// Where the partial results were saved.
        checkpoint: PathBuf,
    },
}

impl BatchOutcome {
    /// The completed report, if the run was not killed.
    pub fn into_report(self) -> Option<BatchReport> {
        match self {
            BatchOutcome::Completed(report) => Some(report),
            BatchOutcome::Killed { .. } => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Failures and quarantine
// ---------------------------------------------------------------------------

/// Why a quarantined scenario failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The final attempt panicked (caught by the supervisor).
    Panic,
    /// The final attempt returned a pipeline error.
    Error,
    /// The attempt exceeded its logical work budget.
    BudgetExhausted,
}

impl FailureKind {
    /// Stable label used by the checkpoint format and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Error => "error",
            FailureKind::BudgetExhausted => "budget-exhausted",
        }
    }

    /// Parses a [`FailureKind::label`].
    pub(crate) fn parse(label: &str) -> Option<FailureKind> {
        match label {
            "panic" => Some(FailureKind::Panic),
            "error" => Some(FailureKind::Error),
            "budget-exhausted" => Some(FailureKind::BudgetExhausted),
            _ => None,
        }
    }
}

/// The terminal failure of a supervised scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioFailure {
    /// What went wrong on the final attempt.
    pub kind: FailureKind,
    /// The pipeline error, panic message, or budget diagnostic.
    pub message: String,
    /// Attempts performed (1 = failed on the first try with no retry
    /// budget left).
    pub attempts: usize,
}

impl std::fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FailureKind::Panic => write!(f, "panicked: {}", self.message)?,
            FailureKind::Error | FailureKind::BudgetExhausted => {
                write!(f, "{}", self.message)?;
            }
        }
        if self.attempts > 1 {
            write!(f, " (after {} attempts)", self.attempts)?;
        }
        Ok(())
    }
}

/// One quarantined scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Scenario id within the grid.
    pub scenario: usize,
    /// Final failure kind.
    pub kind: FailureKind,
    /// Attempts performed before quarantine.
    pub attempts: usize,
    /// Final failure message.
    pub message: String,
}

/// Scenarios that exhausted supervision and were isolated from the
/// rest of the sweep, in input (scenario-id) order — deterministic at
/// every pool size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Quarantined scenarios in scenario-id order.
    pub entries: Vec<QuarantineEntry>,
}

impl QuarantineReport {
    /// Number of quarantined scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Quarantined scenarios whose final failure was the given kind.
    pub fn count_of(&self, kind: FailureKind) -> usize {
        self.entries.iter().filter(|e| e.kind == kind).count()
    }
}

// ---------------------------------------------------------------------------
// Attempt plumbing
// ---------------------------------------------------------------------------

/// What one supervised attempt can report. Panics and transients are
/// retryable; pipeline errors and budget exhaustion are terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum AttemptError {
    /// The attempt panicked; the supervisor caught it at the scenario
    /// boundary (or a [`Slot`] caught it at a stage boundary).
    Panic(String),
    /// An injected transient failure (chaos/testing only).
    Transient(String),
    /// A deterministic pipeline error — retrying cannot help.
    Error(String),
    /// The logical work budget ran out before the named stage.
    Budget {
        /// Work units the attempt had consumed including the stage
        /// that tripped the budget.
        needed: u64,
        /// The configured budget.
        budget: u64,
        /// The stage whose admission charge tripped the budget.
        stage: &'static str,
    },
}

impl AttemptError {
    pub(crate) fn retryable(e: &AttemptError) -> bool {
        matches!(e, AttemptError::Panic(_) | AttemptError::Transient(_))
    }

    fn into_failure(self, attempts: usize) -> ScenarioFailure {
        match self {
            AttemptError::Panic(message) => ScenarioFailure {
                kind: FailureKind::Panic,
                message,
                attempts,
            },
            AttemptError::Transient(message) | AttemptError::Error(message) => ScenarioFailure {
                kind: FailureKind::Error,
                message,
                attempts,
            },
            AttemptError::Budget { needed, budget, stage } => ScenarioFailure {
                kind: FailureKind::BudgetExhausted,
                message: format!(
                    "work budget exhausted before {stage}: \
                     needs {needed} logical units, budget {budget}"
                ),
                attempts,
            },
        }
    }
}

/// Runs `attempt` under the deterministic retry schedule: panics and
/// transient errors retry up to `max_retries` extra times, anything
/// else fails fast. Returns the result plus attempts performed. The
/// jitter stream is seeded per scenario so retry behaviour is a pure
/// function of `(scenario_id, max_retries)` — never of thread timing.
pub(crate) fn supervise_attempts<T>(
    scenario_id: usize,
    max_retries: usize,
    mut attempt: impl FnMut(usize) -> Result<T, AttemptError>,
) -> (Result<T, ScenarioFailure>, usize) {
    let policy = RetryPolicy {
        max_attempts: max_retries.saturating_add(1),
        seed: scenario_id as u64,
        ..RetryPolicy::default()
    };
    let mut index = 0usize;
    let result = retry_with_backoff_on(policy, AttemptError::retryable, |_strength| {
        let i = index;
        index += 1;
        attempt(i)
    });
    match result {
        Ok(outcome) => (Ok(outcome.value), outcome.attempts),
        Err(RetryError::Exhausted { attempts, last }) => {
            (Err(last.into_failure(attempts)), attempts)
        }
        Err(RetryError::Fatal { attempts, error }) => {
            (Err(error.into_failure(attempts)), attempts)
        }
    }
}

/// Renders a caught panic payload (the `Box<dyn Any>` from
/// `catch_unwind`) as a human-readable message.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

// ---------------------------------------------------------------------------
// Logical work budget
// ---------------------------------------------------------------------------

/// A logical per-attempt work meter. Stages charge *data-derived* costs
/// before running (regardless of memo state), so exhaustion is
/// deterministic, pool-invariant, and resume-invariant — unlike any
/// wall-clock timeout.
#[derive(Debug)]
pub(crate) struct WorkBudget {
    budget: Option<u64>,
    used: u64,
}

impl WorkBudget {
    pub(crate) fn new(budget: Option<u64>) -> Self {
        WorkBudget { budget, used: 0 }
    }

    /// Charges `units` for the named stage; errs with
    /// [`AttemptError::Budget`] once the running total exceeds the
    /// budget.
    pub(crate) fn charge(&mut self, stage: &'static str, units: u64) -> Result<(), AttemptError> {
        self.used = self.used.saturating_add(units);
        match self.budget {
            Some(budget) if self.used > budget => Err(AttemptError::Budget {
                needed: self.used,
                budget,
                stage,
            }),
            _ => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Pipeline point a scenario fault fires at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Before/inside the detection stage.
    Detect,
    /// Before/inside the ψ-fit stage.
    Fit,
    /// Before/inside the solve/construct stage.
    Solve,
    /// Before the simulation stage.
    Simulate,
}

/// How an injected scenario fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic at the scenario level, *before* consulting the shared
    /// stage slot — deterministic and pool-invariant.
    Panic,
    /// Return a retryable transient error at the scenario level.
    TransientError,
    /// Panic *inside* the shared stage computation, exercising the
    /// [`Slot`] recovery path. Deterministic only when the faulted
    /// scenario's stage key is unique in the grid (otherwise a sibling
    /// may compute the stage first and the fault never fires).
    PanicInStage,
}

/// One scheduled fault: scenario attempts `0..fails_before` fail at
/// `point` with `mode`; later attempts run clean (so retries recover).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioFault {
    /// Where in the pipeline the fault fires.
    pub point: FaultPoint,
    /// How the fault manifests.
    pub mode: FaultMode,
    /// Attempts that fail (e.g. `1` = first attempt only; `usize::MAX`
    /// = every attempt, forcing quarantine).
    pub fails_before: usize,
}

/// A deterministic schedule of per-scenario faults for tests and chaos
/// runs. All targeting is by scenario id, so the schedule is a pure
/// function of the grid — never of thread timing.
#[derive(Debug, Clone, Default)]
pub struct BatchFaultPlan {
    faults: BTreeMap<usize, ScenarioFault>,
}

impl BatchFaultPlan {
    /// An empty plan (no faults fire).
    pub fn new() -> Self {
        BatchFaultPlan::default()
    }

    /// Schedules `fault` for the scenario with the given id.
    #[must_use]
    pub fn with_fault(mut self, scenario: usize, fault: ScenarioFault) -> Self {
        self.faults.insert(scenario, fault);
        self
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn armed(&self, scenario: usize, attempt: usize, point: FaultPoint) -> Option<&ScenarioFault> {
        self.faults
            .get(&scenario)
            .filter(|f| f.point == point && attempt < f.fails_before)
    }

    /// Fires scenario-level faults ([`FaultMode::Panic`] panics right
    /// here — the supervisor's `catch_unwind` catches it —
    /// [`FaultMode::TransientError`] returns the retryable error).
    /// Called before the stage consults its shared slot, so injection
    /// is pool-invariant.
    // Panicking is this function's contract: it exists to exercise the
    // supervisor's catch_unwind isolation.
    #[allow(clippy::panic)]
    pub(crate) fn fire_at(
        &self,
        scenario: usize,
        attempt: usize,
        point: FaultPoint,
    ) -> Result<(), AttemptError> {
        match self.armed(scenario, attempt, point).map(|f| f.mode) {
            Some(FaultMode::Panic) => std::panic::panic_any(format!(
                "injected fault: scenario {scenario} panics at {point:?} (attempt {attempt})"
            )),
            Some(FaultMode::TransientError) => Err(AttemptError::Transient(format!(
                "injected fault: scenario {scenario} transient at {point:?} (attempt {attempt})"
            ))),
            Some(FaultMode::PanicInStage) | None => Ok(()),
        }
    }

    /// Fires [`FaultMode::PanicInStage`] faults from inside a shared
    /// stage computation (the [`Slot`] closure).
    // Panicking is this function's contract: it exercises the Slot's
    // panic-safety and the supervisor's catch_unwind isolation.
    #[allow(clippy::panic)]
    pub(crate) fn fire_in_stage(&self, scenario: usize, attempt: usize, point: FaultPoint) {
        if let Some(ScenarioFault { mode: FaultMode::PanicInStage, .. }) =
            self.armed(scenario, attempt, point)
        {
            std::panic::panic_any(format!(
                "injected fault: scenario {scenario} panics inside {point:?} (attempt {attempt})"
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Panic-safe compute slot
// ---------------------------------------------------------------------------

enum SlotState<T> {
    /// Nothing computed yet; the next caller claims the computation.
    Empty,
    /// A thread is computing; callers wait on the condvar.
    Busy,
    /// The computed value; cloned out to every caller.
    Ready(T),
}

/// A compute-once cell that survives panicking initializers.
///
/// Like `OnceLock::get_or_init`, except: when the initializer panics,
/// the slot resets to `Empty` (instead of wedging forever), wakes every
/// waiter, and reports the panic message to the computing caller only.
/// Woken waiters *re-claim the computation themselves*, so one
/// scenario's panic never manifests as a sibling failure — and a panic
/// can never store a partial value, which is what keeps the shared
/// [`crate::StageMemo`] poison-free (values are published to the memo
/// only from `Ready` slots).
pub(crate) struct Slot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

impl<T: Clone> Slot<T> {
    pub(crate) fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Empty),
            ready: Condvar::new(),
        }
    }

    /// A slot pre-filled with a memoized value.
    pub(crate) fn seeded(value: T) -> Self {
        Slot {
            state: Mutex::new(SlotState::Ready(value)),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SlotState<T>> {
        // A poisoned mutex is unreachable: every state transition
        // happens with the value moved in/out before unlocking, and
        // the computing closure runs outside the lock.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The value, if computed.
    pub(crate) fn peek(&self) -> Option<T> {
        match &*self.lock() {
            SlotState::Ready(value) => Some(value.clone()),
            _ => None,
        }
    }

    /// Returns the value, computing it (outside the lock) if this
    /// caller wins the claim; waits for — or takes over from — other
    /// computers otherwise.
    ///
    /// # Errors
    ///
    /// The panic message, when *this caller's own* `compute` panicked.
    /// A sibling's panic is invisible here: the waiter is woken, finds
    /// the slot `Empty` again, and computes with its own closure.
    pub(crate) fn get_or_compute(&self, compute: impl FnOnce() -> T) -> Result<T, String> {
        let mut guard = self.lock();
        loop {
            match &*guard {
                SlotState::Ready(value) => return Ok(value.clone()),
                SlotState::Busy => {
                    guard = self
                        .ready
                        .wait(guard)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                SlotState::Empty => {
                    *guard = SlotState::Busy;
                    break;
                }
            }
        }
        drop(guard);
        match catch_unwind(AssertUnwindSafe(compute)) {
            Ok(value) => {
                *self.lock() = SlotState::Ready(value.clone());
                self.ready.notify_all();
                Ok(value)
            }
            Err(payload) => {
                *self.lock() = SlotState::Empty;
                self.ready.notify_all();
                Err(panic_message(payload.as_ref()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn slot_computes_once_and_clones_out() {
        let slot = Slot::new();
        let calls = AtomicUsize::new(0);
        let compute = || {
            calls.fetch_add(1, Ordering::SeqCst);
            7usize
        };
        assert_eq!(slot.get_or_compute(compute).unwrap(), 7);
        assert_eq!(slot.get_or_compute(|| 9usize).unwrap(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(slot.peek(), Some(7));
    }

    #[test]
    fn seeded_slot_never_computes() {
        let slot = Slot::seeded(3usize);
        assert_eq!(slot.get_or_compute(|| 5usize).unwrap(), 3);
    }

    #[test]
    fn panicking_initializer_resets_the_slot() {
        let slot: Slot<usize> = Slot::new();
        let err = slot
            .get_or_compute(|| std::panic::panic_any("stage exploded".to_string()))
            .unwrap_err();
        assert!(err.contains("stage exploded"), "{err}");
        // The slot is Empty again, not wedged and not poisoned:
        assert_eq!(slot.peek(), None);
        assert_eq!(slot.get_or_compute(|| 11usize).unwrap(), 11);
    }

    #[test]
    fn waiting_sibling_takes_over_after_a_panic() {
        // One thread panics while computing; concurrent siblings must
        // all end up with the (their own) computed value.
        for _ in 0..16 {
            let slot: Slot<usize> = Slot::new();
            std::thread::scope(|scope| {
                let panicker = scope.spawn(|| {
                    slot.get_or_compute(|| std::panic::panic_any("boom".to_string()))
                });
                let siblings: Vec<_> = (0..4)
                    .map(|_| scope.spawn(|| slot.get_or_compute(|| 42usize)))
                    .collect();
                let err = panicker.join().expect("panicker thread caught its panic");
                assert!(err.is_err() || err == Ok(42), "{err:?}");
                for s in siblings {
                    assert_eq!(s.join().expect("sibling"), Ok(42));
                }
            });
            assert_eq!(slot.peek(), Some(42));
        }
    }

    #[test]
    fn supervise_recovers_from_transient_failures() {
        let (result, attempts) = supervise_attempts(3, 2, |attempt| {
            if attempt < 2 {
                Err(AttemptError::Transient("flaky".into()))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result, Ok(2));
        assert_eq!(attempts, 3);
    }

    #[test]
    fn supervise_quarantines_on_exhaustion() {
        let (result, attempts) =
            supervise_attempts(0, 1, |_| Err::<(), _>(AttemptError::Panic("boom".into())));
        assert_eq!(attempts, 2);
        let failure = result.unwrap_err();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert_eq!(failure.attempts, 2);
        assert!(failure.to_string().contains("after 2 attempts"));
    }

    #[test]
    fn supervise_fails_fast_on_pipeline_errors() {
        let mut calls = 0;
        let (result, attempts) = supervise_attempts(0, 5, |_| {
            calls += 1;
            Err::<(), _>(AttemptError::Error("mu must be positive".into()))
        });
        assert_eq!(calls, 1, "deterministic errors must not retry");
        assert_eq!(attempts, 1);
        let failure = result.unwrap_err();
        assert_eq!(failure.kind, FailureKind::Error);
        assert_eq!(failure.to_string(), "mu must be positive");
    }

    #[test]
    fn budget_exhaustion_is_terminal_and_descriptive() {
        let mut budget = WorkBudget::new(Some(100));
        assert!(budget.charge("detect", 60).is_ok());
        let err = budget.charge("solve", 50).unwrap_err();
        match &err {
            AttemptError::Budget { needed, budget, stage } => {
                assert_eq!((*needed, *budget, *stage), (110, 100, "solve"));
            }
            other => panic!("expected Budget, got {other:?}"),
        }
        assert!(!AttemptError::retryable(&err));
        let failure = err.into_failure(1);
        assert_eq!(failure.kind, FailureKind::BudgetExhausted);
        assert!(failure.message.contains("before solve"), "{}", failure.message);
        assert!(WorkBudget::new(None).charge("solve", u64::MAX).is_ok());
    }

    #[test]
    fn fault_plan_fires_only_at_armed_attempts() {
        let plan = BatchFaultPlan::new().with_fault(
            2,
            ScenarioFault {
                point: FaultPoint::Solve,
                mode: FaultMode::TransientError,
                fails_before: 2,
            },
        );
        assert!(plan.fire_at(2, 0, FaultPoint::Solve).is_err());
        assert!(plan.fire_at(2, 1, FaultPoint::Solve).is_err());
        assert!(plan.fire_at(2, 2, FaultPoint::Solve).is_ok(), "recovers at attempt 2");
        assert!(plan.fire_at(2, 0, FaultPoint::Fit).is_ok(), "wrong point");
        assert!(plan.fire_at(1, 0, FaultPoint::Solve).is_ok(), "wrong scenario");
    }

    #[test]
    fn injected_panics_are_catchable() {
        let plan = BatchFaultPlan::new().with_fault(
            0,
            ScenarioFault {
                point: FaultPoint::Detect,
                mode: FaultMode::Panic,
                fails_before: usize::MAX,
            },
        );
        let caught = catch_unwind(AssertUnwindSafe(|| plan.fire_at(0, 0, FaultPoint::Detect)));
        let payload = caught.unwrap_err();
        assert!(panic_message(payload.as_ref()).contains("injected fault"));
    }
}
