//! The `dcc-batch-ckpt/1` checkpoint: a periodic partial-results
//! snapshot of a supervised batch run, keyed by the grid fingerprint.
//!
//! A checkpoint stores, per completed scenario, either a
//! [`ScenarioSummary`] (the canonical deterministic outputs of a
//! successful scenario) or the terminal [`ScenarioFailure`] — plus the
//! attempt count either way. Floats round-trip bit-exactly through
//! [`dcc_faults::Json`]'s shortest-round-trip rendering, which is what
//! makes a resumed run's output byte-identical to an uninterrupted one.
//!
//! The file is written atomically (temp file + rename) every
//! [`crate::CheckpointConfig::every`] fresh completions, and validated
//! on load against the schema string, the grid fingerprint, and the
//! scenario count — a checkpoint from a different grid (or a different
//! trace seed) is rejected instead of silently mixing results.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use dcc_faults::Json;

use crate::runner::ScenarioOutcome;
use crate::supervisor::{FailureKind, ScenarioFailure};

/// Schema tag of the batch checkpoint format.
pub const CKPT_SCHEMA: &str = "dcc-batch-ckpt/1";

/// The canonical per-agent outputs of a designed scenario — everything
/// the batch CLI and the differential suites derive per agent.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentSummary {
    /// Worker index within the trace.
    pub worker: usize,
    /// Subproblem the worker was assigned to.
    pub subproblem: usize,
    /// Designed per-round compensation.
    pub compensation: f64,
    /// Effort level the contract induces.
    pub induced_effort: f64,
}

/// The canonical outputs of a simulated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// Rounds simulated.
    pub rounds: usize,
    /// Cumulative requester utility over the run.
    pub cumulative_requester_utility: f64,
    /// Mean per-round requester utility.
    pub mean_round_utility: f64,
}

/// The deterministic, checkpoint-serializable outputs of one
/// successful scenario. This is the *canonical output surface* of a
/// batch scenario: everything `dcc batch` renders and everything the
/// byte-identity differential tests compare is derivable from it,
/// whether the scenario was computed this run or restored from a
/// `dcc-batch-ckpt/1` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// The designed `Σ (w q − μ c)` requester utility.
    pub total_requester_utility: f64,
    /// Per-agent design outputs, in design order.
    pub agents: Vec<AgentSummary>,
    /// Subproblems the failure policy degraded.
    pub degraded: usize,
    /// Funded subproblem ids, in funding order.
    pub funded: Vec<usize>,
    /// Total compensation committed within budget.
    pub spend: f64,
    /// The budget that was available.
    pub budget: f64,
    /// Requester utility of the funded set.
    pub budget_utility: f64,
    /// Unbudgeted total spend of the full design.
    pub full_spend: f64,
    /// Simulation outputs, when the grid simulates.
    pub sim: Option<SimSummary>,
}

impl ScenarioSummary {
    /// Derives the canonical summary of a computed outcome.
    pub fn of(outcome: &ScenarioOutcome) -> Self {
        ScenarioSummary {
            total_requester_utility: outcome.design.total_requester_utility,
            agents: outcome
                .design
                .agents
                .iter()
                .map(|a| AgentSummary {
                    worker: a.worker.index(),
                    subproblem: a.subproblem,
                    compensation: a.compensation,
                    induced_effort: a.induced_effort,
                })
                .collect(),
            degraded: outcome.design.degradation.len(),
            funded: outcome.budget.funded.clone(),
            spend: outcome.budget.spend,
            budget: outcome.budget.budget,
            budget_utility: outcome.budget.utility,
            full_spend: outcome.full_spend,
            sim: outcome.sim.as_ref().map(|sim| SimSummary {
                rounds: sim.rounds.len(),
                cumulative_requester_utility: sim.cumulative_requester_utility,
                mean_round_utility: sim.mean_round_utility,
            }),
        }
    }
}

/// One checkpointed scenario result.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CkptEntry {
    /// Attempts the supervisor performed.
    pub attempts: usize,
    /// Success summary or terminal failure.
    pub payload: CkptPayload,
}

/// Success or failure payload of a checkpoint entry.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CkptPayload {
    Summary(ScenarioSummary),
    Failure(ScenarioFailure),
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn summary_to_json(s: &ScenarioSummary) -> Json {
    let mut fields = vec![
        ("utility", Json::num(s.total_requester_utility)),
        (
            "agents",
            Json::Arr(
                s.agents
                    .iter()
                    .map(|a| {
                        obj(vec![
                            ("worker", Json::idx(a.worker)),
                            ("subproblem", Json::idx(a.subproblem)),
                            ("compensation", Json::num(a.compensation)),
                            ("induced_effort", Json::num(a.induced_effort)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("degraded", Json::idx(s.degraded)),
        ("funded", Json::Arr(s.funded.iter().map(|&f| Json::idx(f)).collect())),
        ("spend", Json::num(s.spend)),
        ("budget", Json::num(s.budget)),
        ("budget_utility", Json::num(s.budget_utility)),
        ("full_spend", Json::num(s.full_spend)),
    ];
    if let Some(sim) = &s.sim {
        fields.push((
            "sim",
            obj(vec![
                ("rounds", Json::idx(sim.rounds)),
                ("cumulative_utility", Json::num(sim.cumulative_requester_utility)),
                ("mean_round_utility", Json::num(sim.mean_round_utility)),
            ]),
        ));
    }
    obj(fields)
}

fn field<'a>(json: &'a Json, name: &str) -> Result<&'a Json, String> {
    json.get(name).ok_or_else(|| format!("missing field {name}"))
}

fn as_f64(json: &Json, name: &str) -> Result<f64, String> {
    field(json, name)?
        .as_f64()
        .ok_or_else(|| format!("field {name} is not a number"))
}

fn as_idx(json: &Json, name: &str) -> Result<usize, String> {
    field(json, name)?
        .as_idx()
        .ok_or_else(|| format!("field {name} is not an index"))
}

fn as_str<'a>(json: &'a Json, name: &str) -> Result<&'a str, String> {
    field(json, name)?
        .as_str()
        .ok_or_else(|| format!("field {name} is not a string"))
}

fn as_arr<'a>(json: &'a Json, name: &str) -> Result<&'a [Json], String> {
    field(json, name)?
        .as_arr()
        .ok_or_else(|| format!("field {name} is not an array"))
}

fn summary_from_json(json: &Json) -> Result<ScenarioSummary, String> {
    let agents = as_arr(json, "agents")?
        .iter()
        .map(|a| {
            Ok(AgentSummary {
                worker: as_idx(a, "worker")?,
                subproblem: as_idx(a, "subproblem")?,
                compensation: as_f64(a, "compensation")?,
                induced_effort: as_f64(a, "induced_effort")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let funded = as_arr(json, "funded")?
        .iter()
        .map(|f| f.as_idx().ok_or_else(|| "funded entry is not an index".to_string()))
        .collect::<Result<Vec<_>, String>>()?;
    let sim = match json.get("sim") {
        None => None,
        Some(sim) => Some(SimSummary {
            rounds: as_idx(sim, "rounds")?,
            cumulative_requester_utility: as_f64(sim, "cumulative_utility")?,
            mean_round_utility: as_f64(sim, "mean_round_utility")?,
        }),
    };
    Ok(ScenarioSummary {
        total_requester_utility: as_f64(json, "utility")?,
        agents,
        degraded: as_idx(json, "degraded")?,
        funded,
        spend: as_f64(json, "spend")?,
        budget: as_f64(json, "budget")?,
        budget_utility: as_f64(json, "budget_utility")?,
        full_spend: as_f64(json, "full_spend")?,
        sim,
    })
}

fn entry_to_json(id: usize, entry: &CkptEntry) -> Json {
    let mut fields = vec![("id", Json::idx(id)), ("attempts", Json::idx(entry.attempts))];
    match &entry.payload {
        CkptPayload::Summary(summary) => fields.push(("summary", summary_to_json(summary))),
        CkptPayload::Failure(failure) => fields.push((
            "failure",
            obj(vec![
                ("kind", Json::Str(failure.kind.label().to_string())),
                ("message", Json::Str(failure.message.clone())),
            ]),
        )),
    }
    obj(fields)
}

fn entry_from_json(json: &Json, total: usize) -> Result<(usize, CkptEntry), String> {
    let id = as_idx(json, "id")?;
    if id >= total {
        return Err(format!("scenario id {id} out of range (grid has {total})"));
    }
    let attempts = as_idx(json, "attempts")?;
    let payload = match (json.get("summary"), json.get("failure")) {
        (Some(summary), None) => CkptPayload::Summary(summary_from_json(summary)?),
        (None, Some(failure)) => {
            let kind_label = as_str(failure, "kind")?;
            let kind = FailureKind::parse(kind_label)
                .ok_or_else(|| format!("unknown failure kind {kind_label:?}"))?;
            CkptPayload::Failure(ScenarioFailure {
                kind,
                message: as_str(failure, "message")?.to_string(),
                attempts,
            })
        }
        _ => return Err(format!("record {id} needs exactly one of summary/failure")),
    };
    Ok((id, CkptEntry { attempts, payload }))
}

/// Renders a checkpoint document. Entries are keyed (and rendered) in
/// scenario-id order, so the bytes are a pure function of the results.
pub(crate) fn render_checkpoint(
    grid_fp: u64,
    total: usize,
    entries: &BTreeMap<usize, CkptEntry>,
) -> String {
    let doc = obj(vec![
        ("schema", Json::Str(CKPT_SCHEMA.to_string())),
        ("grid_fingerprint", Json::Str(format!("{grid_fp:016x}"))),
        ("scenarios", Json::idx(total)),
        (
            "records",
            Json::Arr(entries.iter().map(|(&id, e)| entry_to_json(id, e)).collect()),
        ),
    ]);
    doc.to_string()
}

/// Parses and validates a checkpoint document against the running
/// grid's fingerprint and scenario count.
///
/// # Errors
///
/// A diagnostic string on malformed JSON, schema mismatch, fingerprint
/// mismatch (the checkpoint belongs to a different grid), scenario
/// count mismatch, or out-of-range ids.
pub(crate) fn parse_checkpoint(
    text: &str,
    grid_fp: u64,
    total: usize,
) -> Result<BTreeMap<usize, CkptEntry>, String> {
    let doc = Json::parse(text).map_err(|e| format!("malformed checkpoint: {e}"))?;
    let schema = as_str(&doc, "schema")?;
    if schema != CKPT_SCHEMA {
        return Err(format!("checkpoint schema {schema:?} is not {CKPT_SCHEMA:?}"));
    }
    let fp = as_str(&doc, "grid_fingerprint")?;
    let expected = format!("{grid_fp:016x}");
    if fp != expected {
        return Err(format!(
            "checkpoint grid fingerprint {fp} does not match this grid ({expected}); \
             refusing to mix results across grids"
        ));
    }
    let count = as_idx(&doc, "scenarios")?;
    if count != total {
        return Err(format!(
            "checkpoint covers {count} scenarios but the grid has {total}"
        ));
    }
    let mut entries = BTreeMap::new();
    for record in as_arr(&doc, "records")? {
        let (id, entry) = entry_from_json(record, total)?;
        if entries.insert(id, entry).is_some() {
            return Err(format!("duplicate checkpoint record for scenario {id}"));
        }
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct WriterState {
    entries: BTreeMap<usize, CkptEntry>,
    /// Fresh completions since the last flush.
    pending: usize,
    /// First I/O error, surfaced after the run (worker threads must
    /// not abort mid-scenario on a full disk).
    error: Option<String>,
}

/// Thread-safe periodic checkpoint writer. `record` is called from
/// worker threads as scenarios complete; the file is rewritten (whole,
/// atomically) every `every` fresh completions and on [`CkptWriter::flush`].
pub(crate) struct CkptWriter {
    path: PathBuf,
    every: usize,
    grid_fp: u64,
    total: usize,
    state: Mutex<WriterState>,
}

impl CkptWriter {
    pub(crate) fn new(
        path: &Path,
        every: usize,
        grid_fp: u64,
        total: usize,
        restored: BTreeMap<usize, CkptEntry>,
    ) -> Self {
        CkptWriter {
            path: path.to_path_buf(),
            every: every.max(1),
            grid_fp,
            total,
            state: Mutex::new(WriterState {
                entries: restored,
                pending: 0,
                error: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WriterState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one fresh completion; flushes when `every` accumulate.
    pub(crate) fn record(&self, id: usize, entry: CkptEntry) {
        let mut state = self.lock();
        state.entries.insert(id, entry);
        state.pending += 1;
        if state.pending >= self.every {
            Self::write(&self.path, self.grid_fp, self.total, &mut state);
        }
    }

    /// Forces a write of the current entries.
    pub(crate) fn flush(&self) {
        let mut state = self.lock();
        Self::write(&self.path, self.grid_fp, self.total, &mut state);
    }

    /// Scenarios with checkpointed results.
    pub(crate) fn completed(&self) -> usize {
        self.lock().entries.len()
    }

    /// The first I/O error hit while writing, if any.
    pub(crate) fn take_error(&self) -> Option<String> {
        self.lock().error.take()
    }

    fn write(path: &Path, grid_fp: u64, total: usize, state: &mut WriterState) {
        state.pending = 0;
        let text = render_checkpoint(grid_fp, total, &state.entries);
        let tmp = path.with_extension("tmp");
        let result = std::fs::write(&tmp, text.as_bytes())
            .and_then(|()| std::fs::rename(&tmp, path));
        if let (Err(e), None) = (result, &state.error) {
            state.error = Some(format!("cannot write checkpoint {}: {e}", path.display()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary(sim: bool) -> ScenarioSummary {
        ScenarioSummary {
            total_requester_utility: 12.345_678_901_234_567,
            agents: vec![
                AgentSummary {
                    worker: 0,
                    subproblem: 1,
                    compensation: 0.1 + 0.2, // deliberately non-representable
                    induced_effort: 1e-17,
                },
                AgentSummary {
                    worker: 7,
                    subproblem: 0,
                    compensation: f64::MIN_POSITIVE,
                    induced_effort: 0.0,
                },
            ],
            degraded: 1,
            funded: vec![1, 0],
            spend: 2.5,
            budget: 3.0,
            budget_utility: 1.75,
            full_spend: 4.0,
            sim: sim.then(|| SimSummary {
                rounds: 16,
                cumulative_requester_utility: -3.25,
                mean_round_utility: -0.203_125,
            }),
        }
    }

    #[test]
    fn summaries_round_trip_bit_exactly() {
        for sim in [false, true] {
            let summary = sample_summary(sim);
            let json = summary_to_json(&summary);
            let reparsed = Json::parse(&json.to_string()).unwrap();
            let back = summary_from_json(&reparsed).unwrap();
            assert_eq!(back, summary);
            // PartialEq on f64 treats -0.0 == 0.0; check bits too.
            assert_eq!(
                back.total_requester_utility.to_bits(),
                summary.total_requester_utility.to_bits()
            );
            for (a, b) in back.agents.iter().zip(&summary.agents) {
                assert_eq!(a.compensation.to_bits(), b.compensation.to_bits());
                assert_eq!(a.induced_effort.to_bits(), b.induced_effort.to_bits());
            }
        }
    }

    #[test]
    fn documents_round_trip_and_validate() {
        let mut entries = BTreeMap::new();
        entries.insert(
            0,
            CkptEntry { attempts: 1, payload: CkptPayload::Summary(sample_summary(true)) },
        );
        entries.insert(
            3,
            CkptEntry {
                attempts: 2,
                payload: CkptPayload::Failure(ScenarioFailure {
                    kind: FailureKind::Panic,
                    message: "injected fault: scenario 3 panics at Solve (attempt 1)".into(),
                    attempts: 2,
                }),
            },
        );
        let text = render_checkpoint(0xdead_beef, 6, &entries);
        let back = parse_checkpoint(&text, 0xdead_beef, 6).unwrap();
        assert_eq!(back, entries);
        // Rendering is canonical: a round-trip reproduces the bytes.
        assert_eq!(render_checkpoint(0xdead_beef, 6, &back), text);

        let fp_err = parse_checkpoint(&text, 0xdead_beee, 6).unwrap_err();
        assert!(fp_err.contains("fingerprint"), "{fp_err}");
        let count_err = parse_checkpoint(&text, 0xdead_beef, 5).unwrap_err();
        assert!(count_err.contains("5"), "{count_err}");
        let schema_err =
            parse_checkpoint(&text.replace("dcc-batch-ckpt/1", "bogus/9"), 0xdead_beef, 6)
                .unwrap_err();
        assert!(schema_err.contains("schema"), "{schema_err}");
    }

    #[test]
    fn out_of_range_and_duplicate_ids_are_rejected() {
        let mut entries = BTreeMap::new();
        entries.insert(
            5,
            CkptEntry { attempts: 1, payload: CkptPayload::Summary(sample_summary(false)) },
        );
        let text = render_checkpoint(1, 6, &entries);
        assert!(parse_checkpoint(&text, 1, 6).is_ok());
        // Same document declared over a 5-scenario grid: id 5 overflows
        // (count check fires first, so patch the count too).
        let shrunk = text.replace("\"scenarios\":6", "\"scenarios\":5");
        let err = parse_checkpoint(&shrunk, 1, 5).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn writer_batches_flushes_and_renames_atomically() {
        let dir =
            std::env::temp_dir().join(format!("dcc-ckpt-writer-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("batch.ckpt");
        let writer = CkptWriter::new(&path, 2, 9, 4, BTreeMap::new());
        writer.record(
            1,
            CkptEntry { attempts: 1, payload: CkptPayload::Summary(sample_summary(false)) },
        );
        assert!(!path.exists(), "below the flush threshold");
        writer.record(
            0,
            CkptEntry { attempts: 3, payload: CkptPayload::Summary(sample_summary(true)) },
        );
        assert!(path.exists(), "threshold reached");
        assert_eq!(writer.completed(), 2);
        let loaded =
            parse_checkpoint(&std::fs::read_to_string(&path).unwrap(), 9, 4).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(writer.take_error().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
