//! The content-addressed stage memo: cross-scenario (and cross-run)
//! reuse of the Detect, Fit, and Solve/Construct stage outputs.
//!
//! Keys are FNV-1a 64 fingerprints:
//!
//! - a **trace fingerprint** covers every field of every product,
//!   reviewer, review, and campaign in the dataset, so two traces share
//!   detection results only if they are content-identical;
//! - a **pipeline fingerprint** covers the full `PipelineConfig`
//!   (via its `Debug` form — the config is a flat `Copy` struct, so the
//!   form is total);
//! - a **fit fingerprint** covers exactly the design fields the
//!   engine's own fit-stage invalidation key tracks (ω, intervals,
//!   effort quantile, per-worker fit threshold) — deliberately *not*
//!   μ, which only the solve stage consumes;
//! - a **solve fingerprint** covers the full `DesignConfig` including
//!   μ and the failure policy, but *not* `parallel` (the pool is
//!   bit-identity-neutral by the engine's own contract) — so a grid
//!   that varies only the budget fraction or the strategy solves each
//!   distinct design exactly once, and a warm rerun solves nothing.
//!
//! Memoized values are stored behind `Arc`, so cache hits clone a
//! pointer, not a detection result. The memo never evicts: a batch
//! sweep touches a handful of (trace, config) pairs, and the caller
//! controls lifetime by dropping the [`StageMemo`].

use dcc_detect::{DetectionResult, PipelineConfig};
use dcc_trace::TraceDataset;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Hit/miss counts for one memoized stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo (or from a lower-id scenario in
    /// the same run).
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
}

impl CacheStats {
    /// Records `hit` into the appropriate counter.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }
}

/// Per-stage cache statistics for one batch run.
///
/// Trace stats count distinct trace *specs* resolved; detect and fit
/// stats count *scenarios* (hits + misses = scenario count), mirroring
/// what a serial engine sweep would recompute per scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Trace materialization (synthetic generation / CSV ingest).
    pub trace: CacheStats,
    /// Detection-pipeline runs.
    pub detect: CacheStats,
    /// Effort-fit / subproblem-decomposition runs.
    pub fit: CacheStats,
    /// Subproblem-solve + contract-construction runs (per distinct
    /// design configuration, μ included).
    pub solve: CacheStats,
}

/// Key of a memoized detection result: (trace, pipeline) fingerprints.
pub(crate) type DetectKey = (u64, u64);
/// Key of a memoized fit: (trace, pipeline, fit-config) fingerprints.
pub(crate) type FitKey = (u64, u64, u64);
/// Key of a memoized solved design: (trace, pipeline, fit-config,
/// solve-config) fingerprints.
pub(crate) type SolveKey = (u64, u64, u64, u64);

#[derive(Debug, Default)]
struct Inner {
    /// Source key → materialized trace + its content fingerprint.
    traces: BTreeMap<String, (Arc<TraceDataset>, u64)>,
    detect: BTreeMap<DetectKey, Arc<DetectionResult>>,
    /// Fit outcomes are memoized *including* deterministic failures, so
    /// a warm rerun replays the same error without re-fitting.
    fit: BTreeMap<FitKey, Result<Arc<dcc_core::DesignPrep>, String>>,
    /// Solved designs, memoized including deterministic failures for
    /// the same reason as fits.
    solve: BTreeMap<SolveKey, Result<Arc<dcc_core::ContractDesign>, String>>,
}

/// Shared, thread-safe memo for Detect, Fit, and Solve stage outputs.
///
/// Clone the surrounding `Arc<StageMemo>` into several
/// [`crate::BatchRunner`]s to share warm caches across runs; a fresh
/// memo reproduces cold-start behavior.
#[derive(Debug, Default)]
pub struct StageMemo {
    inner: Mutex<Inner>,
}

impl StageMemo {
    /// An empty (cold) memo.
    pub fn new() -> Self {
        StageMemo::default()
    }

    /// Number of memoized (trace, detection, fit, solve) entries.
    pub fn len(&self) -> (usize, usize, usize, usize) {
        let inner = self.lock();
        (inner.traces.len(), inner.detect.len(), inner.fit.len(), inner.solve.len())
    }

    /// `true` when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        let (t, d, f, s) = self.len();
        t == 0 && d == 0 && f == 0 && s == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn get_trace(&self, key: &str) -> Option<(Arc<TraceDataset>, u64)> {
        self.lock().traces.get(key).cloned()
    }

    pub(crate) fn insert_trace(&self, key: String, trace: Arc<TraceDataset>, fingerprint: u64) {
        self.lock().traces.insert(key, (trace, fingerprint));
    }

    pub(crate) fn get_detect(&self, key: &DetectKey) -> Option<Arc<DetectionResult>> {
        self.lock().detect.get(key).cloned()
    }

    pub(crate) fn insert_detect(&self, key: DetectKey, value: Arc<DetectionResult>) {
        self.lock().detect.insert(key, value);
    }

    pub(crate) fn get_fit(&self, key: &FitKey) -> Option<Result<Arc<dcc_core::DesignPrep>, String>> {
        self.lock().fit.get(key).cloned()
    }

    pub(crate) fn insert_fit(&self, key: FitKey, value: Result<Arc<dcc_core::DesignPrep>, String>) {
        self.lock().fit.insert(key, value);
    }

    pub(crate) fn get_solve(
        &self,
        key: &SolveKey,
    ) -> Option<Result<Arc<dcc_core::ContractDesign>, String>> {
        self.lock().solve.get(key).cloned()
    }

    pub(crate) fn insert_solve(
        &self,
        key: SolveKey,
        value: Result<Arc<dcc_core::ContractDesign>, String>,
    ) {
        self.lock().solve.insert(key, value);
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, deterministic across runs
/// and platforms (unlike `DefaultHasher`, whose seed is randomized).
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    pub(crate) fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    pub(crate) fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Content fingerprint of a trace: every field of every product,
/// reviewer, review, and campaign, plus section lengths (so e.g. an
/// empty-reviews trace cannot collide with an empty-products one).
pub(crate) fn trace_fingerprint(trace: &TraceDataset) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(trace.products().len());
    for p in trace.products() {
        h.write_usize(p.id.0);
        h.write_f64(p.true_quality);
    }
    h.write_usize(trace.reviewers().len());
    for r in trace.reviewers() {
        h.write_usize(r.id.0);
        h.write_bytes(r.class.code().as_bytes());
        match r.campaign {
            Some(c) => {
                h.write_u64(1);
                h.write_usize(c);
            }
            None => h.write_u64(0),
        }
        h.write_u64(u64::from(r.is_expert));
    }
    h.write_usize(trace.reviews().len());
    for r in trace.reviews() {
        h.write_usize(r.reviewer.0);
        h.write_usize(r.product.0);
        h.write_usize(r.round);
        h.write_f64(r.stars);
        h.write_usize(r.length_chars);
        h.write_f64(r.upvotes);
    }
    h.write_usize(trace.campaigns().len());
    for c in trace.campaigns() {
        h.write_usize(c.id);
        h.write_usize(c.members.len());
        for m in &c.members {
            h.write_usize(m.0);
        }
        h.write_usize(c.targets.len());
        for t in &c.targets {
            h.write_usize(t.0);
        }
    }
    h.finish()
}

/// Fingerprint of the detection-pipeline configuration.
///
/// `PipelineConfig` is a flat `Copy` struct of enums and floats, so its
/// `Debug` form is a total, deterministic encoding.
pub(crate) fn pipeline_fingerprint(pipeline: &PipelineConfig) -> u64 {
    let mut h = Fnv::new();
    h.write_bytes(format!("{pipeline:?}").as_bytes());
    h.finish()
}

/// Fingerprint of the fit-relevant design fields — the same set as the
/// engine's internal fit-stage invalidation key (see
/// `RoundContext::set_mu`, which re-solves without re-fitting): ω,
/// intervals, effort quantile, and the per-worker fit threshold. μ and
/// the failure policy are deliberately excluded; they only affect the
/// solve stage.
pub(crate) fn fit_fingerprint(design: &dcc_core::DesignConfig) -> u64 {
    let mut h = Fnv::new();
    h.write_f64(design.params.omega);
    h.write_usize(design.intervals);
    h.write_f64(design.effort_quantile);
    match design.per_worker_fit_min_reviews {
        Some(n) => {
            h.write_u64(1);
            h.write_usize(n);
        }
        None => h.write_u64(0),
    }
    h.finish()
}

/// Fingerprint of the solve-relevant design fields: the whole
/// `DesignConfig` (a flat `Copy` struct, so its `Debug` form is total)
/// with `parallel` normalized away — the engine guarantees the solve is
/// bit-identical across pool sizes, so a pool toggle must not evict
/// warm designs. μ and the failure policy *are* covered: they change
/// the solved contracts.
pub(crate) fn solve_fingerprint(design: &dcc_core::DesignConfig) -> u64 {
    let mut normalized = *design;
    normalized.parallel = false;
    let mut h = Fnv::new();
    h.write_bytes(format!("{normalized:?}").as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

    use super::*;
    use dcc_trace::SyntheticConfig;

    fn tiny(seed: u64) -> TraceDataset {
        let mut cfg = SyntheticConfig::small(seed);
        cfg.n_honest = 10;
        cfg.n_ncm = 3;
        cfg.n_cm_target = 4;
        cfg.n_products = 60;
        cfg.n_rounds = 2;
        cfg.generate()
    }

    #[test]
    fn trace_fingerprint_is_content_addressed() {
        let a = tiny(1);
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&tiny(1)));
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&tiny(2)));
    }

    #[test]
    fn fit_fingerprint_ignores_mu_and_policy() {
        let base = dcc_core::DesignConfig::default();
        let mut mu = base;
        mu.params.mu = 0.25;
        let mut policy = base;
        policy.failure_policy = dcc_core::FailurePolicy::Skip;
        assert_eq!(fit_fingerprint(&base), fit_fingerprint(&mu));
        assert_eq!(fit_fingerprint(&base), fit_fingerprint(&policy));
        let mut intervals = base;
        intervals.intervals += 1;
        assert_ne!(fit_fingerprint(&base), fit_fingerprint(&intervals));
    }

    #[test]
    fn solve_fingerprint_tracks_mu_but_not_parallelism() {
        let base = dcc_core::DesignConfig::default();
        let mut mu = base;
        mu.params.mu = 0.25;
        assert_ne!(solve_fingerprint(&base), solve_fingerprint(&mu));
        let mut policy = base;
        policy.failure_policy = dcc_core::FailurePolicy::Skip;
        assert_ne!(solve_fingerprint(&base), solve_fingerprint(&policy));
        let mut parallel = base;
        parallel.parallel = !base.parallel;
        assert_eq!(solve_fingerprint(&base), solve_fingerprint(&parallel));
    }

    #[test]
    fn memo_roundtrips_entries() {
        let memo = StageMemo::new();
        assert!(memo.is_empty());
        let trace = Arc::new(tiny(1));
        let fp = trace_fingerprint(&trace);
        memo.insert_trace("synthetic:x".to_string(), Arc::clone(&trace), fp);
        let (got, got_fp) = memo.get_trace("synthetic:x").expect("trace entry");
        assert_eq!(got_fp, fp);
        assert_eq!(got.reviews().len(), trace.reviews().len());
        assert_eq!(memo.len(), (1, 0, 0, 0));
    }
}
