//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter`, range
//! and tuple strategies, [`collection::vec`], [`arbitrary::any`], the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case panics with the sampled inputs in
//!   the regular assertion message; there is no minimization pass.
//! - **Deterministic.** Each test's case sequence is derived from the
//!   test's module path and name, so runs are reproducible without a
//!   `proptest-regressions` directory.
//! - The default case count is 64 (override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`, or globally
//!   with the `PROPTEST_CASES` environment variable). Unlike upstream,
//!   `PROPTEST_CASES` acts as a *floor* even over explicit
//!   `with_cases(n)`, so a chaos run elevates every property test in
//!   the workspace, not only those using the default config.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of type [`Strategy::Value`].
    ///
    /// Upstream proptest's `Strategy` produces shrinkable value trees;
    /// this shim produces plain values.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Samples one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`, resampling until one passes
        /// (up to an internal retry bound).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 10000 consecutive samples", self.whence);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            rng.rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample_value(&self, rng: &mut TestRng) -> f32 {
            rng.rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// `any::<T>()` and the [`arbitrary::Arbitrary`] trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples one arbitrary value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            // Finite, wide-range doubles (upstream's any::<f64>() default
            // also excludes NaN/inf unless asked for them).
            (rng.rng.gen::<f64>() - 0.5) * 2e9
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A vector-length specification: an exact length or a range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size` (an exact `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test configuration and the per-test RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// A failed (or rejected) test case.
    ///
    /// Upstream distinguishes `Fail` from `Reject`; the shim only needs
    /// failure, which the runner converts into a panic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }

        /// Upstream-compatible alias of [`TestCaseError::fail`].
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    // Upstream-compatible: any error converts into a failed case, so
    // property bodies can use `?` on fallible library calls. (Like
    // upstream, `TestCaseError` itself therefore does NOT implement
    // `std::error::Error` — that would collide with the reflexive
    // `From` impl.)
    impl<E: std::error::Error> From<E> for TestCaseError {
        fn from(cause: E) -> Self {
            TestCaseError::fail(cause.to_string())
        }
    }

    /// The result type of a fallible property body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-block configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Config {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test; `PROPTEST_CASES`
        /// acts as a floor so chaos runs elevate every test.
        pub fn with_cases(cases: u32) -> Self {
            let floor = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            Config {
                cases: cases.max(floor),
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        /// The underlying generator (shim-public so strategies can draw).
        pub rng: StdRng,
    }

    impl TestRng {
        /// Deterministic RNG for case `case` of the test named `name`
        /// (callers pass `module_path!()::test_name`).
        pub fn for_case(name: &str, case: u32) -> TestRng {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5bd1_e995)),
            }
        }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
// The `#[test]` in the doctest is the macro's real call syntax; the
// doctest only checks that the expansion compiles.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample_value(
                        &($strat),
                        &mut __rng,
                    );
                )+
                // The closure gives `?` and `prop_assert!` an early
                // return target; calling it in place is the point.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at deterministic case {}: {}",
                        stringify!($name),
                        __case,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test (or any function
/// returning `Result<_, TestCaseError>`): on failure it *returns*
/// `Err(TestCaseError)` rather than panicking, exactly like upstream.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Callers assert float comparisons; `!(a > b)` is the intended
        // NaN-rejecting semantics here, as in upstream proptest.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Skips the current case when the assumption fails (the shim treats a
/// rejected case like a passed one — no global rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn positive() -> impl Strategy<Value = f64> {
        (-10.0f64..10.0).prop_filter("positive", |v| *v > 0.0)
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3.0f64..7.0, n in 1usize..5) {
            prop_assert!((3.0..7.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn filters_apply(p in positive()) {
            prop_assert!(p > 0.0);
        }

        #[test]
        fn maps_and_tuples(
            (a, b) in (0u64..10, 0u64..10),
            doubled in (0i64..50).prop_map(|v| v * 2),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn vecs_have_requested_sizes(
            exact in crate::collection::vec(0u8..=255, 4),
            ranged in crate::collection::vec(any::<bool>(), 2..6),
        ) {
            prop_assert_eq!(exact.len(), 4);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_caps_cases(_x in 0u64..10) {
            // Runs exactly 5 times; nothing to assert beyond termination.
        }
    }
}
