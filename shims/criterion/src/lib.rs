//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `bench_function` /
//! `bench_with_input` / `sample_size`, the [`criterion_group!`] /
//! [`criterion_main!`] macros, and [`black_box`].
//!
//! Instead of criterion's statistical engine this shim runs a short
//! warm-up, then measures `sample_size` timed iterations (auto-scaled so
//! each sample takes ≳1 ms) and prints median / mean / min wall-clock
//! times per iteration. Good enough to compare runs by eye; not a
//! replacement for real criterion when it is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id for `function_name` at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// The timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample for stable
    /// wall-clock readings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration count: aim for >= 1 ms/sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let iters = if once >= Duration::from_millis(1) {
            1
        } else {
            let target = Duration::from_millis(1).as_nanos();
            ((target / once.as_nanos().max(1)) as usize).clamp(1, 1_000_000)
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<48} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}  ({} samples)",
            sorted.len()
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a [`BenchmarkGroup`] named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = id.to_string();
        self.run_one(&label, f);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(label);
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, bench_addition);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
