//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng`], and the [`Rng`] extension trait with `gen`,
//! `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — high-quality, fast, and *deterministic across platforms
//! and releases*, which the checkpoint/resume machinery in `dcc-faults`
//! relies on (see [`rngs::StdRng::state`]).
//!
//! The value streams differ from upstream `rand`'s ChaCha12-based
//! `StdRng`; nothing in this workspace depends on upstream streams, only
//! on same-seed reproducibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level random number generator: the subset of `rand_core`'s
/// `RngCore` the workspace needs.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion (the
    /// same construction upstream `rand` documents for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers, fair coin for `bool`) — the
/// shim's stand-in for `rand`'s `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly — the shim's stand-in for `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, matching upstream `gen_range`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Uniform draw from `[0, bound)` by rejection sampling (`bound > 0`).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The shim's generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Unlike upstream `rand`, the full 256-bit state is exposed via
    /// [`StdRng::state`] / [`StdRng::from_state`] so simulations can be
    /// checkpointed and resumed bit-exactly (`dcc-faults`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw 256-bit generator state.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`] output. The
        /// rebuilt generator continues the original stream exactly.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 1, 2];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let r = rng.gen_range(3.0f64..5.0);
            assert!((3.0..5.0).contains(&r));
            let i = rng.gen_range(2usize..=10);
            assert!((2..=10).contains(&i));
            let j = rng.gen_range(0usize..17);
            assert!(j < 17);
            let k = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&k));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..37 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
