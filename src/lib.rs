//! # dyncontract
//!
//! A complete Rust implementation of *Dynamic Contract Design for
//! Heterogenous Workers in Crowdsourcing for Quality Control*
//! (Qiu, Squicciarini, Rajtmajer, Caverlee — ICDCS 2017).
//!
//! This meta-crate re-exports the whole workspace under stable paths:
//!
//! - [`numerics`] — dense linear algebra, polynomial least squares,
//!   piecewise-linear functions, statistics.
//! - [`graph`] — undirected graphs, connected components, union-find,
//!   bipartite projection.
//! - [`trace`] — synthetic Amazon-like review traces with honest,
//!   non-collusive malicious, and collusive malicious workers.
//! - [`detect`] — expert consensus, malicious-probability estimation,
//!   collusive community clustering, feedback weights (Eq. 5).
//! - [`core`] — the paper's contribution: the Stackelberg/bilevel contract
//!   design problem, the candidate-contract algorithm (§IV-C) with its
//!   theoretical bounds (Lemmas 4.2/4.3, Theorem 4.1), problem
//!   decomposition (§IV-B), baselines, and the multi-round simulation.
//! - [`label`] — the classification-task extension of §VII: binary
//!   labeling workers, majority-vote aggregation, and contract design on
//!   agreement feedback.
//! - [`experiments`] — runners that regenerate every table and figure of
//!   the paper's evaluation (§V).
//! - [`faults`] — deterministic fault injection (dropouts, lost and
//!   corrupted feedback, payment delays), checkpoint/resume of the
//!   simulation loops, and bounded retries for transient numeric
//!   failures.
//! - [`engine`] — the staged `Ingest → Detect → FitEffort →
//!   SolveSubproblems → ConstructContracts → Simulate` pipeline with
//!   cached stage outputs, swappable stages, and a deterministic
//!   parallel solve.
//! - [`obs`] — the dependency-free observability layer: span stack,
//!   typed counters/gauges/histograms, and the `Noop`/`Json` recorders
//!   the engine publishes its stage spans and solve/sim metrics
//!   through.
//! - [`batch`] — the deterministic multi-scenario batch scheduler:
//!   scenario grids (μ × budget × strategy × trace), a shared
//!   content-addressed detect/fit/solve memo, and an in-order merge
//!   that keeps batched output bit-identical to serial runs.
//! - [`serve`] — the incremental streaming contract service: event
//!   ingestion (`dcc serve`), per-round delta recompute bit-identical
//!   to the batch pipeline, and checkpointed crash recovery.
//!
//! ## Quickstart
//!
//! ```
//! use dyncontract::core::{ContractBuilder, Discretization, ModelParams};
//! use dyncontract::numerics::Quadratic;
//!
//! # fn main() -> Result<(), dyncontract::core::CoreError> {
//! // A concave increasing effort->feedback response fitted from data.
//! let psi = Quadratic::new(-0.05, 2.0, 0.5);
//! let params = ModelParams::default();
//! let disc = Discretization::new(20, 0.5)?;
//!
//! // Build the near-optimal contract for an honest worker (omega = 0).
//! let built = ContractBuilder::new(params, disc, psi)
//!     .honest()
//!     .weight(1.0)
//!     .build()?;
//!
//! println!(
//!     "induced effort {:.3}, compensation {:.3}, requester utility {:.3}",
//!     built.induced_effort(),
//!     built.compensation(),
//!     built.requester_utility()
//! );
//! # Ok(())
//! # }
//! ```

pub use dcc_batch as batch;
pub use dcc_core as core;
pub use dcc_detect as detect;
pub use dcc_engine as engine;
pub use dcc_experiments as experiments;
pub use dcc_faults as faults;
pub use dcc_graph as graph;
pub use dcc_label as label;
pub use dcc_numerics as numerics;
pub use dcc_obs as obs;
pub use dcc_serve as serve;
pub use dcc_trace as trace;
