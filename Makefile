# Developer entry points. Everything here is plain cargo; the Makefile
# only fixes the flags so CI and local runs agree.

CHAOS_CASES ?= 512

.PHONY: build test clippy chaos experiments engine-bench ci

build:
	cargo build --release

test:
	cargo test -q

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Chaos pass: the whole workspace with elevated property-test iterations,
# then the fault-tolerance integration suite on its own (kill/resume,
# determinism, degraded design). See docs/robustness.md.
chaos:
	PROPTEST_CASES=$(CHAOS_CASES) cargo test -q --workspace
	PROPTEST_CASES=$(CHAOS_CASES) cargo test -q --test fault_tolerance

experiments:
	cargo run --release -p dcc-experiments --bin all -- --scale paper

# Sequential vs pooled solve timings plus a printed speedup report
# (bit-identity is asserted separately by dcc-engine's property tests).
engine-bench:
	cargo bench -p dcc-bench --bench engine

ci: build test clippy
