# Developer entry points. Everything here is plain cargo; the Makefile
# only fixes the flags so CI and local runs agree.

CHAOS_CASES ?= 512
SCALE_BENCH_SCALES ?= 10,100

.PHONY: build test lint lint-baseline clippy chaos chaos-batch chaos-serve experiments engine-bench batch-bench scale-bench metrics-check slow-tests ci

build:
	cargo build --release

test:
	cargo test -q

# Semantic source analysis (docs/static-analysis.md): token rules
# (float-eq, unwrap-in-lib, nondet-iter, wall-clock, hot-loop-alloc),
# the metric-registry cross-check, and the interprocedural
# determinism-taint pass over the workspace call graph — ratcheted
# against the committed dcc-lint.baseline (fails on fresh findings AND
# stale entries) and emitting SARIF 2.1.0 for code scanning. Exits
# nonzero on any fresh finding, stale baseline entry, or stale
# suppression.
lint:
	cargo run -q -p dcc-cli --bin dcc -- lint --root . --baseline dcc-lint.baseline --sarif target/dcc-lint.sarif

# Absorb the current findings into dcc-lint.baseline (fresh entries get
# a TODO justification to fill in; fixed entries are dropped).
lint-baseline:
	cargo run -q -p dcc-cli --bin dcc -- lint --root . --baseline dcc-lint.baseline --update-baseline

# `indexing_slicing` is advisory (workspace lint level "warn"): the
# numeric kernels index tight loops on purpose, so it is surfaced in
# editors but not promoted to deny here.
clippy:
	cargo clippy --workspace --all-targets -- -D warnings -A clippy::indexing_slicing

# Chaos pass: the whole workspace with elevated property-test iterations,
# then the fault-tolerance integration suite on its own (kill/resume,
# determinism, degraded design), then the CLI-level batch kill/resume
# matrix. See docs/robustness.md.
chaos: chaos-batch chaos-serve
	PROPTEST_CASES=$(CHAOS_CASES) cargo test -q --workspace
	PROPTEST_CASES=$(CHAOS_CASES) cargo test -q --test fault_tolerance

# CLI-level crash-recovery matrix for the supervised batch scheduler:
# run an 8-scenario grid to completion, kill checkpointed runs at
# 25/50/75% (--kill-at 2/4/6), resume each, and require the resumed
# report to be byte-identical to the uninterrupted one.
chaos-batch:
	rm -rf target/chaos-batch && mkdir -p target/chaos-batch
	cargo run --release -q -p dcc-cli --bin dcc -- gen --seed 11 --scale small --out target/chaos-batch/trace
	printf '%s\n' \
	  '{"schema": "dcc-batch/1",' \
	  ' "traces": [{"csv": "target/chaos-batch/trace", "label": "chaos"}],' \
	  ' "mus": [1.8, 1.5, 1.2, 1.0],' \
	  ' "budget_fractions": [0.5, 1.0],' \
	  ' "sim": {"rounds": 4, "noise": 0.25, "seed": 7}}' \
	  > target/chaos-batch/grid.json
	cargo run --release -q -p dcc-cli --bin dcc -- batch target/chaos-batch/grid.json --serial --policy skip > target/chaos-batch/full.txt
	for k in 2 4 6; do \
	  rm -f target/chaos-batch/batch.ckpt; \
	  cargo run --release -q -p dcc-cli --bin dcc -- batch target/chaos-batch/grid.json --serial --policy skip \
	    --checkpoint target/chaos-batch/batch.ckpt --kill-at $$k || exit 1; \
	  cargo run --release -q -p dcc-cli --bin dcc -- batch target/chaos-batch/grid.json --serial --policy skip \
	    --checkpoint target/chaos-batch/batch.ckpt --resume > target/chaos-batch/resumed-$$k.txt || exit 1; \
	  cmp target/chaos-batch/full.txt target/chaos-batch/resumed-$$k.txt || \
	    { echo "chaos-batch: resume at kill-at=$$k diverged from the uninterrupted run"; exit 1; }; \
	  echo "chaos-batch: kill-at=$$k resume is byte-identical"; \
	done

# CLI-level crash-recovery matrix for the streaming service: replay the
# seeded small trace (~11k events) to completion, kill checkpointed
# runs at roughly 25/50/75% of the event stream, resume each, and
# require the resumed run's full output — restored rounds re-emitted,
# remaining rounds, summary — to be byte-identical to the uninterrupted
# run.
chaos-serve:
	rm -rf target/chaos-serve && mkdir -p target/chaos-serve
	cargo run --release -q -p dcc-cli --bin dcc -- gen --seed 11 --scale small --out target/chaos-serve/trace
	cargo run --release -q -p dcc-cli --bin dcc -- serve --replay target/chaos-serve/trace --pool 2 > target/chaos-serve/full.txt
	for k in 3000 6000 9000; do \
	  rm -f target/chaos-serve/serve.ckpt; \
	  cargo run --release -q -p dcc-cli --bin dcc -- serve --replay target/chaos-serve/trace --pool 2 \
	    --checkpoint target/chaos-serve/serve.ckpt --kill-at $$k > /dev/null || exit 1; \
	  cargo run --release -q -p dcc-cli --bin dcc -- serve --replay target/chaos-serve/trace --pool 2 \
	    --checkpoint target/chaos-serve/serve.ckpt --resume > target/chaos-serve/resumed-$$k.txt || exit 1; \
	  cmp target/chaos-serve/full.txt target/chaos-serve/resumed-$$k.txt || \
	    { echo "chaos-serve: resume at kill-at=$$k diverged from the uninterrupted run"; exit 1; }; \
	  echo "chaos-serve: kill-at=$$k resume is byte-identical"; \
	done

experiments:
	cargo run --release -p dcc-experiments --bin all -- --scale paper

# Sequential vs pooled solve timings plus a printed speedup report
# (bit-identity is asserted separately by dcc-engine's property tests)
# and the observability overhead gate (noop recorder within 2% of the
# uninstrumented solve).
engine-bench:
	cargo bench -p dcc-bench --bench engine

# Cold vs warm batch-grid throughput on a 16-scenario μ-sweep, with the
# printed report gating warm-cache throughput at >= 2x the naive
# per-scenario loop (bit-identity is asserted separately by dcc-batch's
# property tests).
batch-bench:
	cargo bench -p dcc-bench --bench batch

# Million-worker throughput of the columnar trace path: stream a
# synthetic trace into a dcc-trace-col/1 buffer, solve one subproblem
# per worker through the struct-of-arrays kernel in flat-memory chunks,
# and report workers/sec + peak RSS per scale (multiples of the paper's
# ~19.7k-worker workload; 100x ~= 2M workers). Override the scales with
# SCALE_BENCH_SCALES=10,100,500; set DCC_SCALE_BENCH_MIN_WPS to gate on
# a throughput floor (CI does, at 10x).
scale-bench:
	DCC_SCALE_BENCH_SCALES=$(SCALE_BENCH_SCALES) cargo bench -p dcc-bench --bench scale

# End-to-end observability check: run a small pipeline with the JSON
# recorder, then validate the emitted document against the dcc-obs/1
# schema (docs/observability.md) and render its per-stage latency table.
metrics-check:
	rm -rf target/metrics-check && mkdir -p target/metrics-check
	cargo run --release -p dcc-cli --bin dcc -- gen --seed 42 --scale small --out target/metrics-check/trace
	cargo run --release -p dcc-cli --bin dcc -- run target/metrics-check/trace --rounds 5 --metrics target/metrics-check/metrics.json
	cargo run --release -p dcc-cli --bin dcc -- metrics summarize target/metrics-check/metrics.json

# Paper-scale stress test (see tests/stress.rs); also run nightly by
# .github/workflows/scheduled.yml.
slow-tests:
	DCC_SLOW_TESTS=1 cargo test --release --test stress

ci: build test lint clippy metrics-check
