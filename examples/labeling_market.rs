//! Classification extension (§VII): incentivize binary-labeling workers
//! with the §IV-C contract machinery and measure what the incentives buy
//! in majority-vote accuracy.
//!
//! ```sh
//! cargo run --release --example labeling_market
//! ```

// Examples are demonstration scripts, not library surface; aborting
// with a message on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::label::{LabelMarket, MarketConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MarketConfig::default();
    println!(
        "labeling market: {} workers × {} items/round; {} calibration + {} eval rounds\n",
        config.n_workers, config.n_items, config.calibration_rounds, config.eval_rounds
    );

    let report = LabelMarket::new(config).run()?;
    println!("fitted effort->agreement response: {}", report.fitted_psi);
    println!("({} calibration points)", report.fit_points);
    println!();
    println!(
        "dynamic contract: induced effort {:.2}, spend {:.2}/round, majority accuracy {:.1}%",
        report.mean_effort,
        report.contract_spend,
        100.0 * report.contract_accuracy
    );
    println!(
        "fixed payment:    induced effort 0.00, same spend,      majority accuracy {:.1}%",
        100.0 * report.fixed_accuracy
    );
    println!(
        "\nthe contract converts the same budget into {:.0} accuracy points",
        100.0 * (report.contract_accuracy - report.fixed_accuracy)
    );

    // Sensitivity: a stingier requester (higher mu) buys less accuracy.
    println!("\nmu sweep:");
    for mu in [0.6, 1.0, 1.6, 2.4] {
        let mut cfg = MarketConfig::default();
        cfg.params.mu = mu;
        let r = LabelMarket::new(cfg).run()?;
        println!(
            "  mu {mu:>4.1}: effort {:>5.2}, spend {:>7.2}, accuracy {:>5.1}%",
            r.mean_effort,
            r.contract_spend,
            100.0 * r.contract_accuracy
        );
    }
    Ok(())
}
