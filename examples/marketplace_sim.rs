//! Repeated-game marketplace simulation: run the T-round Stackelberg game
//! (§II) under three pricing strategies and compare the requester's
//! cumulative utility — the Fig. 8(c) experiment as a runnable scenario.
//!
//! ```sh
//! cargo run --release --example marketplace_sim
//! ```

// Examples are demonstration scripts, not library surface; aborting
// with a message on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{
    design_contracts, BaselineStrategy, CollusionProofParams, DesignConfig, Simulation,
    SimulationConfig, StrategyKind,
};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::trace::SyntheticConfig;
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SyntheticConfig::small(7);
    cfg.n_honest = 1_000;
    cfg.n_products = 2_500;
    let trace = cfg.generate();

    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config)?;
    let suspected: BTreeSet<_> = detection.suspected.iter().copied().collect();

    let sim = Simulation::new(
        config.params,
        SimulationConfig {
            rounds: 50,
            feedback_noise_sd: 0.8,
            seed: 99,
        },
    );

    let strategies = [
        ("dynamic contract (ours)", StrategyKind::DynamicContract),
        ("exclude all malicious", StrategyKind::ExcludeMalicious),
        ("fixed payment 2.0", StrategyKind::FixedPayment { amount: 2.0 }),
        (
            "collusion-proof (LWCH)",
            StrategyKind::CollusionProof {
                params: CollusionProofParams::default(),
            },
        ),
    ];

    println!("50-round repeated game, noisy feedback (sd 0.8):\n");
    let mut ours = 0.0;
    for (name, kind) in strategies {
        let agents =
            BaselineStrategy::new(kind).assemble(&design, config.params.omega, &suspected, &trace)?;
        let outcome = sim.run(&agents)?;
        if matches!(kind, StrategyKind::DynamicContract) {
            ours = outcome.mean_round_utility;
        }
        println!(
            "{name:<26} mean round utility {:>12.2}   cumulative {:>14.2}",
            outcome.mean_round_utility, outcome.cumulative_requester_utility
        );
        // Per-round trajectory (first five rounds) shows the payment lag.
        let head: Vec<String> = outcome
            .rounds
            .iter()
            .take(5)
            .map(|r| format!("{:.0}", r.requester_utility))
            .collect();
        println!("{:<26} first rounds: {}", "", head.join(", "));
    }
    println!(
        "\nshape check (Fig. 8c): the dynamic contract dominates — ours = {ours:.2}"
    );
    Ok(())
}
