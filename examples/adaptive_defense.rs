//! Adaptive defense: a requester that re-fits worker behaviour and
//! re-designs contracts every few rounds, facing deceptive workers that
//! farm reputation and then attack (the paper's §VII future-work
//! scenario).
//!
//! ```sh
//! cargo run --release --example adaptive_defense
//! ```

// Examples are demonstration scripts, not library surface; aborting
// with a message on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{
    AdaptiveAgent, AdaptiveConfig, AdaptiveSimulation, ConductModel, ModelParams,
};
use dyncontract::numerics::Quadratic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let psi = Quadratic::new(-0.15, 2.5, 1.0);
    let params = ModelParams {
        mu: 1.0,
        ..ModelParams::default()
    };

    // 30 honest workers and 10 deceivers that attack at round 15.
    let mut agents: Vec<AdaptiveAgent> = (0..30)
        .map(|id| AdaptiveAgent {
            id,
            group: 0,
            base_omega: 0.0,
            base_weight: 1.5,
            true_psi: psi,
            conduct: ConductModel::Stationary,
        })
        .collect();
    for id in 30..40 {
        agents.push(AdaptiveAgent {
            id,
            group: 0,
            base_omega: 0.0,
            base_weight: 1.5,
            true_psi: psi,
            conduct: ConductModel::Deceptive {
                honest_rounds: 15,
                attack_omega: 0.5,
                attack_weight: -0.5,
            },
        });
    }

    let config = AdaptiveConfig {
        rounds: 60,
        recontract_every: 5,
        window: 10,
        feedback_noise_sd: 0.3,
        audit_noise_sd: 0.15,
        intervals: 20,
        margin: 0.1,
        seed: 99,
    };

    for (label, recontract) in [("adaptive (every 5 rounds)", 5usize), ("static", 0)] {
        let cfg = AdaptiveConfig {
            recontract_every: recontract,
            ..config
        };
        let outcome = AdaptiveSimulation::new(params, cfg).run(&agents)?;
        println!("{label}:");
        println!(
            "  mean round utility {:.2}; post-attack steady state {:.2}",
            outcome.mean_round_utility, outcome.late_mean_utility
        );
        // Utility trajectory around the attack round.
        let window: Vec<String> = outcome.rounds[12..24]
            .iter()
            .map(|r| format!("{:.0}", r.requester_utility))
            .collect();
        println!("  rounds 12..24: {}", window.join(", "));
        if recontract > 0 {
            let demoted = outcome.final_estimated_weights[30..]
                .iter()
                .filter(|&&w| w < 0.5)
                .count();
            println!(
                "  deceivers demoted by audits: {demoted}/10 (estimated weights fell below 0.5)"
            );
        }
        println!();
    }
    println!("the adaptive requester cuts the deceivers' contracts after the attack;");
    println!("the static requester keeps paying for harmful feedback forever.");
    Ok(())
}
