//! Full pipeline on a review-campaign trace: generate a synthetic Amazon-
//! like trace with collusion campaigns, detect and cluster malicious
//! workers (§IV-A), compute Eq. 5 weights, and design every contract.
//!
//! ```sh
//! cargo run --release --example review_campaign
//! ```

// Examples are demonstration scripts, not library surface; aborting
// with a message on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{design_contracts, DesignConfig};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::trace::{SyntheticConfig, TraceSummary, WorkerClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized trace: 2,000 honest workers, 150 lone malicious
    // workers, ~25 collusion campaigns.
    let mut cfg = SyntheticConfig::small(2024);
    cfg.n_honest = 2_000;
    cfg.n_ncm = 150;
    cfg.n_cm_target = 80;
    cfg.n_products = 4_000;
    let trace = cfg.generate();
    println!("{}", TraceSummary::of(&trace));

    // Detection: consensus, e_mal, community clustering, Eq. 5 weights.
    let detection = run_pipeline(&trace, PipelineConfig::default());
    println!(
        "clustering found {} communities covering {} workers (+{} lone suspects)",
        detection.collusion.communities.len(),
        detection.collusion.collusive_worker_count(),
        detection.collusion.singletons.len()
    );
    for (label, pct) in detection.collusion.size_percentages() {
        println!("  community size {label:>4}: {pct:5.1}%");
    }

    // Contract design for the whole population (parallel subproblems).
    let design = design_contracts(&trace, &detection, &DesignConfig::default())?;
    println!(
        "\ndesigned {} contracts; requester per-round utility {:.2}",
        design.agents.len(),
        design.total_requester_utility
    );

    for class in WorkerClass::ALL {
        let ids = trace.workers_of_class(class);
        let comps = design.compensations_of(&ids);
        let mean = comps.iter().sum::<f64>() / comps.len().max(1) as f64;
        let paid = comps.iter().filter(|&&c| c > 1e-9).count();
        println!(
            "  {class:<24} mean pay {mean:7.4}  ({paid}/{} paid at all)",
            comps.len()
        );
    }

    // Inspect one collusive community's shared contract.
    if let Some(campaign) = trace.campaigns().first() {
        let member = campaign.members[0];
        if let Some(agent) = design.for_worker(member) {
            println!(
                "\ncampaign #{} ({} members): shared contract with {} pieces, member pay {:.4}",
                campaign.id,
                campaign.members.len(),
                agent.contract.pieces(),
                agent.compensation
            );
        }
    }
    Ok(())
}
