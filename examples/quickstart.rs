//! Quickstart: design a near-optimal dynamic contract for one worker.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

// Examples are demonstration scripts, not library surface; aborting
// with a message on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{
    best_response, bounds, ContractBuilder, Discretization, ModelParams,
};
use dyncontract::numerics::Quadratic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A worker's effort->feedback response, as fitted from data in the
    //    full pipeline (here: a concave quadratic, Eq. 19 of the paper).
    let psi = Quadratic::new(-0.15, 2.5, 1.0);

    // 2. The requester's model parameters: how much it values feedback
    //    (weight w), dislikes spending (mu), and the worker's effort cost
    //    (beta).
    let params = ModelParams {
        mu: 1.0,
        ..ModelParams::default()
    };

    // 3. Discretize the effort region [0, 7) into 20 intervals (§III-A)
    //    and run the §IV-C candidate-contract algorithm.
    let disc = Discretization::covering(20, 7.0)?;
    let built = ContractBuilder::new(params, disc, psi)
        .honest()
        .weight(1.5)
        .build()?;

    println!("designed contract: {}", built.contract());
    println!(
        "selected target interval k_opt = {:?} of {} (delta = {:.3})",
        built.k_opt(),
        disc.intervals(),
        disc.delta()
    );
    println!(
        "induced effort {:.3} -> feedback {:.3} -> compensation {:.3}",
        built.induced_effort(),
        built.response().feedback,
        built.compensation()
    );
    println!(
        "requester utility {:.4} (worker keeps {:.4})",
        built.requester_utility(),
        built.worker_utility()
    );

    // 4. The Theorem 4.1 bracket certifies near-optimality.
    if let Some((lo, hi)) = built.utility_bounds() {
        println!("Theorem 4.1 bracket: [{lo:.4}, {hi:.4}]");
    }
    let k = built.k_opt().expect("non-zero contract");
    println!(
        "Lemma 4.2/4.3 compensation bracket: [{:.4}, {:.4}]",
        bounds::compensation_lower_bound(&params, &disc, k),
        bounds::compensation_upper_bound(&params, &disc, &psi, k),
    );

    // 5. Verify the incentive directly: the worker's exact best response
    //    to the posted contract lands in the designed interval.
    let response = best_response(&params.for_honest(), &psi, built.contract())?;
    assert_eq!(
        disc.interval_of(response.effort),
        Some(k),
        "the worker's best response must fall in the designed interval"
    );
    println!("verified: best response {:.3} lies in interval {k}", response.effort);
    Ok(())
}
