//! Budget planning: design contracts for a whole worker pool, then
//! decide which workers to fund under a hard per-round budget
//! (the §VI budget-feasibility connection), and check what a
//! risk-averse pool would do to the plan.
//!
//! ```sh
//! cargo run --release --example budget_planner
//! ```

// Examples are demonstration scripts, not library surface; aborting
// with a message on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{
    best_response_risk_averse, design_contracts, select_within_budget, DesignConfig,
    RiskProfile,
};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::trace::SyntheticConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SyntheticConfig::small(555);
    cfg.n_honest = 800;
    cfg.n_products = 2_000;
    let trace = cfg.generate();

    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config)?;
    let full_spend: f64 = design
        .solution
        .solutions
        .iter()
        .map(|s| s.built.compensation())
        .sum();
    println!(
        "unconstrained design: {} contracts, spend {:.2}/round, utility {:.2}",
        design.agents.len(),
        full_spend,
        design.total_requester_utility
    );

    println!("\nbudget plan (greedy utility-per-cost):");
    println!("{:>10} {:>8} {:>12} {:>12}", "budget", "funded", "spend", "utility");
    for fraction in [0.02, 0.05, 0.1, 0.2, 0.5, 1.0] {
        let budget = fraction * full_spend;
        let plan = select_within_budget(&design.solution, budget)?;
        println!(
            "{budget:>10.2} {:>8} {:>12.2} {:>12.2}",
            plan.funded.len(),
            plan.spend,
            plan.utility
        );
    }

    // Risk check: if the funded pool is risk-averse, how much effort does
    // the plan actually buy? (Pick an honest worker's contract and use the
    // honest parameters — ω = 0.)
    println!("\nrisk check on one funded honest contract:");
    let honest_agent = design
        .agents
        .iter()
        .find(|a| !a.suspected && a.k_opt.is_some())
        .expect("an honest funded worker exists");
    let sol = design
        .solution
        .solutions
        .iter()
        .find(|s| s.id == honest_agent.subproblem)
        .expect("subproblem exists");
    let psi = design.class_psis.0;
    let honest_params = config.params.for_honest();
    for exponent in [1.0, 0.8, 0.6] {
        let risk = RiskProfile::new(exponent)?;
        let response =
            best_response_risk_averse(&honest_params, &psi, sol.built.contract(), &risk)?;
        println!(
            "  rho {exponent:.1}: effort {:.3} (designed for {:.3})",
            response.effort,
            sol.built.induced_effort()
        );
    }
    println!("\nconcave money-utility erodes knife-edge incentives — budget for a margin.");
    Ok(())
}
