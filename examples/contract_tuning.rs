//! Parameter sensitivity exploration: how the designed contract, the
//! induced effort and the requester's utility move with the compensation
//! weight μ, the malicious feedback weight ω, and the discretization m.
//!
//! ```sh
//! cargo run --example contract_tuning
//! ```

// Examples are demonstration scripts, not library surface; aborting
// with a message on a broken setup is the correct failure mode here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{first_best_utility, ContractBuilder, Discretization, ModelParams};
use dyncontract::numerics::Quadratic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let psi = Quadratic::new(-0.15, 2.5, 1.0);
    let y_max = 7.0;

    println!("— μ sweep (honest worker, w = 1.5, m = 40) —");
    println!("{:>6} {:>8} {:>10} {:>10} {:>12}", "mu", "k_opt", "effort", "pay", "requester u");
    for mu in [0.5, 0.8, 1.0, 1.5, 2.0, 3.0] {
        let params = ModelParams { mu, ..ModelParams::default() };
        let built = ContractBuilder::new(params, Discretization::covering(40, y_max)?, psi)
            .honest()
            .weight(1.5)
            .build()?;
        println!(
            "{mu:>6.1} {:>8} {:>10.3} {:>10.3} {:>12.4}",
            built.k_opt().map(|k| k.to_string()).unwrap_or_else(|| "zero".into()),
            built.induced_effort(),
            built.compensation(),
            built.requester_utility()
        );
    }

    println!("\n— ω sweep (malicious worker, w = 1.0, μ = 1.0, m = 40) —");
    println!("{:>6} {:>8} {:>10} {:>10} {:>12}", "omega", "k_opt", "effort", "pay", "requester u");
    for omega in [0.0, 0.2, 0.4, 0.6, 0.8, 1.2] {
        let params = ModelParams { mu: 1.0, omega, ..ModelParams::default() };
        let built = ContractBuilder::new(params, Discretization::covering(40, y_max)?, psi)
            .malicious(omega)
            .weight(1.0)
            .build()?;
        println!(
            "{omega:>6.1} {:>8} {:>10.3} {:>10.3} {:>12.4}",
            built.k_opt().map(|k| k.to_string()).unwrap_or_else(|| "zero".into()),
            built.induced_effort(),
            built.compensation(),
            built.requester_utility()
        );
    }

    println!("\n— m sweep (honest worker, w = 1.5, μ = 1.0): convergence to first best —");
    let params = ModelParams { mu: 1.0, omega: 0.0, ..ModelParams::default() };
    let fb = first_best_utility(1.5, &params, &psi, y_max, 20_000)?;
    println!("{:>6} {:>12} {:>14}", "m", "requester u", "gap to optimum");
    for m in [2, 4, 8, 16, 32, 64, 128, 256] {
        let built = ContractBuilder::new(params, Discretization::covering(m, y_max)?, psi)
            .honest()
            .weight(1.5)
            .build()?;
        println!(
            "{m:>6} {:>12.5} {:>14.5}",
            built.requester_utility(),
            fb - built.requester_utility()
        );
    }
    println!("first-best reference: {fb:.5}");
    Ok(())
}
